//! # limitless — software-extended coherent shared memory
//!
//! A faithful, from-scratch reproduction of the system evaluated in
//! *Chaiken & Agarwal, "Software-Extended Coherent Shared Memory:
//! Performance and Cost", ISCA 1994*: the MIT Alewife machine's
//! LimitLESS directory spectrum, from a software-only directory
//! (`Dir_nH_0S_{NB,ACK}`) through limited hardware-pointer protocols to
//! a full-map directory (`Dir_nH_{NB}S_-`), running on a deterministic
//! event-driven machine simulator.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable module names. See the README for a tour and the
//! `examples/` directory for runnable programs.
//!
//! # Quickstart
//!
//! ```
//! use limitless::machine::{Machine, MachineConfig};
//! use limitless::core::ProtocolSpec;
//!
//! // A 16-node machine with a five-pointer LimitLESS protocol
//! // (Alewife's default boot configuration).
//! let cfg = MachineConfig::builder()
//!     .nodes(16)
//!     .protocol(ProtocolSpec::limitless(5))
//!     .build();
//! let machine = Machine::new(cfg);
//! assert_eq!(machine.nodes(), 16);
//! ```

/// Deterministic discrete-event engine, time and vocabulary types.
pub use limitless_sim as sim;

/// 2-D mesh network model with endpoint-queue contention.
pub use limitless_net as net;

/// Direct-mapped combined cache, victim cache and instruction-fetch
/// model.
pub use limitless_cache as cache;

/// Hardware directory entries and the software-extended store.
pub use limitless_dir as dir;

/// The protocol spectrum: notation, coherence FSM, flexible coherence
/// interface and handler cost models — the paper's primary
/// contribution.
pub use limitless_core as core;

/// Full machine model: processors, CMMUs, traps, watchdog and the
/// coherence checker.
pub use limitless_machine as machine;

/// Benchmark applications: WORKER, TSP, AQ, SMGRID, EVOLVE, MP3D and
/// WATER.
pub use limitless_apps as apps;

/// Statistics: histograms, worker-set tracking, tables and JSON export.
pub use limitless_stats as stats;
