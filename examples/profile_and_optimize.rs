//! §7's "profile, detect, and optimize" workflow end-to-end:
//!
//! 1. run the application once under a [`ProfilingHandler`] to
//!    classify the blocks that trouble the extension software;
//! 2. re-run with the [`MigratoryHandler`] (dynamic detection) and
//!    compare.
//!
//! ```text
//! cargo run --release --example profile_and_optimize
//! ```

use std::sync::{Arc, Mutex};

use limitless::apps::{App, Mp3d, Scale};
use limitless::core::enhancements::{BlockClass, MigratoryHandler, ProfilingHandler};
use limitless::core::{LimitlessHandler, ProtocolSpec};
use limitless::machine::{Machine, MachineConfig};

fn main() {
    let app = Mp3d::new(Scale::Quick);
    let nodes = 16;
    let cfg = || {
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(ProtocolSpec::limitless(2))
            .victim_cache(true)
            .build()
    };

    // ---- development run: profile ----
    // Collect the classification reports from every node's handler.
    let reports: Arc<Mutex<Vec<(u64, BlockClass)>>> = Arc::default();
    let mut m = Machine::new(cfg());
    {
        let reports = Arc::clone(&reports);
        m.set_extension_handler(move |_node| {
            Box::new(ReportingProfiler {
                inner: ProfilingHandler::new(LimitlessHandler),
                sink: Arc::clone(&reports),
            })
        });
    }
    for (a, v) in app.init_memory() {
        m.poke(a, v);
    }
    m.load(app.programs(nodes));
    let profiled = m.run();
    // Handlers drop with the machine; reports were flushed eagerly.
    let classes = reports.lock().expect("sink");
    let migratory = classes
        .iter()
        .filter(|(_, c)| *c == BlockClass::Migratory)
        .count();
    let wide_rw = classes
        .iter()
        .filter(|(_, c)| *c == BlockClass::WidelySharedReadWrite)
        .count();
    let read_only = classes
        .iter()
        .filter(|(_, c)| *c == BlockClass::WidelySharedReadOnly)
        .count();
    println!("MP3D profile on {nodes} nodes (DirnH2SNB):");
    println!("  {migratory:>5} blocks classified migratory");
    println!("  {wide_rw:>5} blocks classified widely-shared read-write");
    println!("  {read_only:>5} blocks classified widely-shared read-only");
    println!("  run time: {} cycles\n", profiled.cycles.as_u64());

    // ---- production run: optimize ----
    let mut opt = Machine::new(cfg());
    opt.set_extension_handler(|_node| Box::new(MigratoryHandler::new()));
    for (a, v) in app.init_memory() {
        opt.poke(a, v);
    }
    opt.load(app.programs(nodes));
    let optimized = opt.run();
    println!(
        "with dynamic migratory detection: {} cycles ({:+.1}%)",
        optimized.cycles.as_u64(),
        (optimized.cycles.as_u64() as f64 / profiled.cycles.as_u64() as f64 - 1.0) * 100.0
    );
}

/// A profiler that streams classifications into a shared sink each
/// time a block's class changes (so the report survives the machine).
#[derive(Debug)]
struct ReportingProfiler {
    inner: ProfilingHandler<LimitlessHandler>,
    sink: Arc<Mutex<Vec<(u64, BlockClass)>>>,
}

impl limitless::core::ExtensionHandler for ReportingProfiler {
    fn read_overflow(
        &mut self,
        ctx: &mut limitless::core::HandlerCtx<'_>,
        from: limitless::sim::NodeId,
    ) {
        self.inner.read_overflow(ctx, from);
        self.flush(ctx.block().0);
    }

    fn write_overflow(
        &mut self,
        ctx: &mut limitless::core::HandlerCtx<'_>,
        from: limitless::sim::NodeId,
        sharers: &[limitless::sim::NodeId],
    ) -> u32 {
        let acks = self.inner.write_overflow(ctx, from, sharers);
        self.flush(ctx.block().0);
        acks
    }
}

impl ReportingProfiler {
    fn flush(&mut self, block: u64) {
        if let Some(class) = self
            .inner
            .profile(limitless::sim::BlockAddr(block))
            .and_then(|p| p.classify())
        {
            let mut sink = self.sink.lock().expect("sink");
            sink.retain(|&(b, _)| b != block);
            sink.push((block, class));
        }
    }
}
