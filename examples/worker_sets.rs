//! Observe an application's worker sets — the quantity the whole
//! software-extension bet rests on (paper §5): "for a large class of
//! applications, most worker sets are relatively small."
//!
//! ```text
//! cargo run --release --example worker_sets
//! ```

use limitless::apps::{App, Evolve, Scale, Water};
use limitless::core::ProtocolSpec;
use limitless::machine::{Machine, MachineConfig};

fn histogram_of(app: &dyn App, nodes: usize) {
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(ProtocolSpec::full_map())
            .victim_cache(true)
            .track_worker_sets(true)
            .build(),
    );
    for (a, v) in app.init_memory() {
        m.poke(a, v);
    }
    m.load(app.programs(nodes));
    let report = m.run();
    let h = report.stats.worker_sets.expect("tracking enabled");

    println!("{} worker sets on {nodes} nodes:", app.name());
    for (size, count) in h.iter() {
        let bar = "#".repeat(((count as f64).log2().max(0.0) as usize) + 1);
        println!("  size {size:>3}: {count:>6} {bar}");
    }
    let small: u64 = h.iter().filter(|&(s, _)| s <= 5).map(|(_, c)| c).sum();
    println!(
        "  -> {:.1}% of worker sets fit in five hardware pointers\n",
        100.0 * small as f64 / h.total() as f64
    );
}

fn main() {
    // EVOLVE: the paper's Figure 6 workload — heavy-tailed sharing.
    histogram_of(&Evolve::new(Scale::Quick), 16);
    // WATER: all-to-all read sharing between writes.
    histogram_of(&Water::new(Scale::Quick), 16);
}
