//! The five-pointer cliff, isolated with the synthetic generator
//! (DESIGN.md §11): sweep a wide-shared synth workload's worker-set
//! size from 4 to 8 across the protocol spectrum. Hardware with p
//! pointers handles worker sets up to p for free; the first read
//! beyond p traps into the software extension, so each protocol's
//! slowdown versus full-map jumps exactly where ws crosses its
//! pointer count — the knee the paper's Figure 4 curves bend around,
//! and the reason `LimitLESS4` costs so little on real programs
//! (paper §5: most worker sets are small).
//!
//! ```text
//! cargo run --release --example pointer_cliff
//! ```

use limitless::apps::{run_app, Scale, SharingPattern, Synth};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

const NODES: usize = 16;

fn spectrum() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("ptr=2", ProtocolSpec::limitless(2)),
        ("ptr=3", ProtocolSpec::limitless(3)),
        ("ptr=4", ProtocolSpec::limitless(4)),
        ("ptr=5", ProtocolSpec::limitless(5)),
        ("full-map", ProtocolSpec::full_map()),
    ]
}

fn workload(ws: usize) -> Synth {
    Synth {
        pattern: SharingPattern::WideShared,
        ws,
        sync: 0.0, // pure sharing: keep lock traffic out of the ratios
        ..Synth::new(Scale::Quick)
    }
}

fn main() {
    println!("wide-shared synth, {NODES} nodes: cycles relative to full-map");
    println!("(traps = software-extension invocations under DirnH5SNB)\n");
    let mut header = format!("{:>4}", "ws");
    for (label, _) in spectrum() {
        header.push_str(&format!(" {label:>9}"));
    }
    println!("{header} {:>9}", "traps@5");
    for ws in 4..=8 {
        let synth = workload(ws);
        let full_map = run_app(
            &synth,
            MachineConfig::builder()
                .nodes(NODES)
                .protocol(ProtocolSpec::full_map())
                .victim_cache(true)
                .build(),
        )
        .cycles
        .as_u64();
        let mut row = format!("{ws:>4}");
        let mut traps_at_5 = 0;
        for (_, p) in spectrum() {
            let report = run_app(
                &synth,
                MachineConfig::builder()
                    .nodes(NODES)
                    .protocol(p)
                    .victim_cache(true)
                    .build(),
            );
            if p == ProtocolSpec::limitless(5) {
                traps_at_5 =
                    report.stats.read_trap_bills.count() + report.stats.write_trap_bills.count();
            }
            row.push_str(&format!(
                " {:>9.3}",
                report.cycles.as_u64() as f64 / full_map as f64
            ));
        }
        println!("{row} {traps_at_5:>9}");
    }
    println!(
        "\nEach column's ratio stays ~1.0 while ws fits its hardware pointers\n\
         and jumps past its pointer count; DirnH5SNB first traps at ws=6 —\n\
         the five-pointer cliff."
    );
}
