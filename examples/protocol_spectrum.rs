//! Sweep one application across the whole `Dir_iH_XS_{Y,A}` spectrum —
//! a miniature Figure 4 column, printed with cost (directory storage)
//! next to performance.
//!
//! ```text
//! cargo run --release --example protocol_spectrum [-- <app>]
//! ```
//!
//! where `<app>` is one of `tsp aq smgrid evolve mp3d water`
//! (default `tsp`).

use limitless::apps::{
    run_app, sequential_cycles, App, Aq, Evolve, Mp3d, Scale, Smgrid, Tsp, Water,
};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;
use limitless::stats::Table;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tsp".into());
    let app: Box<dyn App> = match which.as_str() {
        "aq" => Box::new(Aq::new(Scale::Quick)),
        "smgrid" => Box::new(Smgrid::new(Scale::Quick)),
        "evolve" => Box::new(Evolve::new(Scale::Quick)),
        "mp3d" => Box::new(Mp3d::new(Scale::Quick)),
        "water" => Box::new(Water::new(Scale::Quick)),
        _ => Box::new(Tsp::new(Scale::Quick)),
    };
    let nodes = 16;
    let seq = sequential_cycles(app.as_ref());
    println!(
        "{} ({}) on {nodes} nodes — sequential: {seq} cycles\n",
        app.name(),
        app.size_description()
    );

    let mut table = Table::new(&["protocol", "dir storage (ptrs/block)", "cycles", "speedup"]);
    for spec in [
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_ack(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::one_ptr_hw(),
        ProtocolSpec::limitless(2),
        ProtocolSpec::limitless(5),
        ProtocolSpec::dir1_sw(),
        ProtocolSpec::full_map(),
    ] {
        let cfg = MachineConfig::builder()
            .nodes(nodes)
            .protocol(spec)
            .victim_cache(true)
            .build();
        let report = run_app(app.as_ref(), cfg);
        table.row_owned(vec![
            spec.to_string(),
            spec.storage_pointers(nodes).to_string(),
            report.cycles.as_u64().to_string(),
            format!("{:.1}", seq as f64 / report.cycles.as_u64() as f64),
        ]);
    }
    println!("{}", table.render());
    println!("Cost rises down the column; the paper's question is how little\nof it performance actually needs.");
}
