//! Quickstart: build an Alewife-style machine, run the WORKER
//! benchmark under two protocols, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use limitless::apps::{run_app, App, Worker};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

fn main() {
    // A 16-node machine, 64 KB direct-mapped caches with victim
    // caching, Alewife's default five-pointer LimitLESS protocol.
    let app = Worker::fig2(8); // worker sets of 8 readers per block

    println!("WORKER with worker sets of 8 on 16 nodes\n");
    for spec in [
        ProtocolSpec::full_map(),
        ProtocolSpec::limitless(5),
        ProtocolSpec::limitless(2),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::zero_ptr(),
    ] {
        let cfg = MachineConfig::builder()
            .nodes(16)
            .protocol(spec)
            .victim_cache(true)
            .build();
        let report = run_app(&app, cfg);
        println!(
            "{:>16}: {:>9} cycles | {:>5} traps ({} read-extend, {} write-extend) | {} invalidations",
            spec.to_string(),
            report.cycles.as_u64(),
            report.stats.engine.traps,
            report.stats.engine.read_extend_traps,
            report.stats.engine.write_extend_traps,
            report.stats.engine.invs_sent,
        );
    }
    println!(
        "\nThe hardware pointers absorb small worker sets; beyond them, the\n\
         protocol extension software keeps memory coherent at the cost of\n\
         home-processor cycles — the LimitLESS tradeoff. ({})",
        app.size_description()
    );
}
