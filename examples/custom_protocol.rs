//! Writing an application-specific protocol under the flexible
//! coherence interface — the paper's §7 "data specific" enhancement.
//!
//! This example implements an *adaptive invalidation* handler: blocks
//! whose worker sets repeatedly overflow are treated as widely-shared
//! synchronization-style data, and the handler broadcasts
//! invalidations to the whole machine instead of walking the software
//! directory one pointer at a time (the §7 "dynamic detection"
//! research direction). Everything else falls back to the stock
//! LimitLESS behaviour.
//!
//! ```text
//! cargo run --release --example custom_protocol
//! ```

use std::collections::HashMap;

use limitless::apps::{App, Worker};
use limitless::core::{ExtensionHandler, HandlerCtx, LimitlessHandler, ProtocolSpec};
use limitless::machine::{Machine, MachineConfig};
use limitless::sim::{BlockAddr, NodeId};

/// After this many write overflows, a block is declared widely shared
/// and handled by broadcast.
const HOT_THRESHOLD: u32 = 3;

#[derive(Debug, Default)]
struct AdaptiveHandler {
    base: LimitlessHandler,
    write_overflows: HashMap<BlockAddr, u32>,
    broadcasts: u32,
}

impl ExtensionHandler for AdaptiveHandler {
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId) {
        self.base.read_overflow(ctx, from);
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        from: NodeId,
        sharers: &[NodeId],
    ) -> u32 {
        let hits = self.write_overflows.entry(ctx.block()).or_insert(0);
        *hits += 1;
        if *hits < HOT_THRESHOLD {
            return self.base.write_overflow(ctx, from, sharers);
        }
        // Hot block: skip the per-pointer directory walk and blast
        // invalidations at everyone (cheap lookup, more network
        // traffic — exactly the tradeoff a protocol designer can now
        // explore in a few lines of code).
        self.broadcasts += 1;
        ctx.decode_directory();
        ctx.store_write_state();
        let mut acks = 0;
        for i in 0..ctx.nodes() {
            let dst = NodeId::from_index(i);
            if dst == from {
                continue;
            }
            if dst == ctx.home() {
                ctx.invalidate_local();
                continue;
            }
            ctx.send_inv(dst);
            acks += 1;
        }
        ctx.release_to_hardware();
        ctx.arm_ack_counter(acks);
        acks
    }
}

fn main() {
    let app = Worker::fig2(12); // large worker sets: overflow city
    let nodes = 16;

    let run = |custom: bool| {
        let mut m = Machine::new(
            MachineConfig::builder()
                .nodes(nodes)
                .protocol(ProtocolSpec::limitless(2))
                .victim_cache(true)
                .build(),
        );
        if custom {
            m.set_extension_handler(|_node| Box::<AdaptiveHandler>::default());
        }
        m.load(app.programs(nodes));
        let report = m.run();
        (report.cycles.as_u64(), report.stats.engine.invs_sent)
    };

    let (stock_cycles, stock_invs) = run(false);
    let (adaptive_cycles, adaptive_invs) = run(true);

    println!("WORKER (12-reader sets) on 16 nodes, DirnH2SNB:\n");
    println!("  stock LimitLESS handler : {stock_cycles:>8} cycles, {stock_invs} invalidations");
    println!(
        "  adaptive broadcast      : {adaptive_cycles:>8} cycles, {adaptive_invs} invalidations"
    );
    println!(
        "\nThe adaptive handler trades {} extra invalidations for cheaper\n\
         directory handling of hot blocks — a protocol variant built\n\
         entirely against the flexible coherence interface, with no\n\
         changes to the machine or the hardware model.",
        adaptive_invs.saturating_sub(stock_invs)
    );
}
