//! Single-run wallclock: serial vs sharded engine on the 64-node
//! paper-scale configuration — the headline measurement for the
//! conservative parallel engine (DESIGN.md §9).
//!
//! For each paper application this runs the identical simulation once
//! on the serial reference engine and once on the sharded engine,
//! prints both wall times and the speedup, and asserts that every
//! simulated observable (cycles, events, full statistics) is
//! bit-identical — the sharded engine is a wallclock optimization
//! only.
//!
//! ```text
//! cargo run --release --example sharded_wallclock [SHARDS] [APP]
//! ```
//!
//! Defaults: 4 shards, all six applications. The sharded engine can
//! only beat serial when the host has at least SHARDS idle cores; on
//! fewer cores the lanes are multiplexed onto the available threads
//! and pay a bounded overhead (replica writes and floor publishing)
//! with no parallel payback.
//!
//! Setting `LIMITLESS_SMOKE_RATIO` (e.g. `1.5`) turns the run into a
//! CI smoke: after the table, the run asserts that the *total* sharded
//! wall clock stayed within that factor of serial — catching a
//! regression back to the barrier-per-window engine (which was >5×
//! serial on one core) on any host, with or without spare cores.

use std::time::Instant;

use limitless::apps::{run_app, App, Aq, Evolve, Mp3d, Scale, Smgrid, Tsp, Water};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

fn cfg(shards: usize) -> MachineConfig {
    MachineConfig::builder()
        .nodes(64)
        .protocol(ProtocolSpec::limitless(4))
        .victim_cache(true)
        .shards(shards)
        .build()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 2)
        .unwrap_or(4);
    let only: Option<String> = args.next().map(|s| s.to_uppercase());

    let apps: Vec<Box<dyn App>> = vec![
        Box::new(Tsp::new(Scale::Paper)),
        Box::new(Aq::new(Scale::Paper)),
        Box::new(Smgrid::new(Scale::Paper)),
        Box::new(Evolve::new(Scale::Paper)),
        Box::new(Mp3d::new(Scale::Paper)),
        Box::new(Water::new(Scale::Paper)),
    ];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("64 nodes, paper scale, DirnH4SNB, {shards} shards, {cores} host cores");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>8}",
        "app", "events", "serial s", "sharded s", "speedup"
    );
    let mut serial_total = 0.0f64;
    let mut sharded_total = 0.0f64;
    for app in &apps {
        if only.as_deref().is_some_and(|o| o != app.name()) {
            continue;
        }
        let t0 = Instant::now();
        let serial = run_app(app.as_ref(), cfg(1));
        let serial_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let sharded = run_app(app.as_ref(), cfg(shards));
        let sharded_s = t1.elapsed().as_secs_f64();
        assert_eq!(serial.cycles, sharded.cycles, "{} cycles", app.name());
        assert_eq!(serial.events, sharded.events, "{} events", app.name());
        assert_eq!(serial.stats, sharded.stats, "{} stats", app.name());
        serial_total += serial_s;
        sharded_total += sharded_s;
        println!(
            "{:<8} {:>12} {:>12.3} {:>12.3} {:>7.2}x",
            app.name(),
            serial.events,
            serial_s,
            sharded_s,
            serial_s / sharded_s
        );
    }
    println!(
        "{:<8} {:>12} {:>12.3} {:>12.3} {:>7.2}x",
        "total",
        "",
        serial_total,
        sharded_total,
        serial_total / sharded_total
    );
    if let Some(max_ratio) = std::env::var("LIMITLESS_SMOKE_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let ratio = sharded_total / serial_total;
        assert!(
            ratio <= max_ratio,
            "sharded engine took {ratio:.2}x serial wall clock \
             ({sharded_total:.3}s vs {serial_total:.3}s), above the \
             LIMITLESS_SMOKE_RATIO={max_ratio} budget"
        );
        println!("smoke: {ratio:.2}x <= {max_ratio}x budget");
    }
}
