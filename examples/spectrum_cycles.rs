//! Prints the final cycle count for every protocol in the spectrum on
//! the quick-scale WORKER and TSP workloads, plus simulator
//! throughput. Used to (re)capture the golden values asserted in
//! `tests/spectrum.rs` and to benchmark the simulator hot path.

use std::time::Instant;

use limitless::apps::{run_app, App, Tsp, Worker};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

fn spectrum() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_ack(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::one_ptr_hw(),
        ProtocolSpec::limitless(2),
        ProtocolSpec::limitless(5),
        ProtocolSpec::dir1_sw(),
        ProtocolSpec::full_map(),
    ]
}

fn main() {
    let apps: Vec<(&str, Box<dyn App>)> = vec![
        (
            "WORKER",
            Box::new(Worker {
                set_size: 5,
                blocks_per_node: 1,
                iterations: 3,
            }),
        ),
        (
            "TSP",
            Box::new(Tsp {
                cities: 7,
                seed: 0x7591,
                code_blocks: 48,
            }),
        ),
    ];
    let mut total_events = 0u64;
    let start = Instant::now();
    for (name, app) in &apps {
        for p in spectrum() {
            let cfg = MachineConfig::builder()
                .nodes(8)
                .protocol(p)
                .victim_cache(true)
                .check_coherence(true)
                .build();
            let report = run_app(app.as_ref(), cfg);
            total_events += report.events;
            println!(
                "{name:<7} {p:<16} cycles={} events={}",
                report.cycles.as_u64(),
                report.events
            );
        }
    }
    let wall = start.elapsed().as_secs_f64();
    println!(
        "total: {total_events} events in {wall:.3}s = {:.0} events/sec",
        total_events as f64 / wall
    );
}
