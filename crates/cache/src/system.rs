//! The per-node cache system: direct-mapped array + victim buffer.

use limitless_sim::BlockAddr;

use crate::direct::DirectCache;
use crate::victim::VictimCache;
use crate::LineState;

/// Cache geometry and feature switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (default 64 KB, the Alewife cache).
    pub capacity_bytes: u64,
    /// Line size in bytes (default 16, the Alewife block).
    pub line_bytes: u64,
    /// Victim-cache capacity in lines (0 disables it). The paper's
    /// victim-caching configuration uses a handful of transaction-store
    /// buffers; we default to 4 when enabled.
    pub victim_lines: usize,
}

impl CacheConfig {
    /// The Alewife base configuration: 64 KB direct-mapped, 16-byte
    /// lines, no victim cache.
    pub fn alewife() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 16,
            victim_lines: 0,
        }
    }

    /// Alewife with victim caching enabled (Figure 3's black bars and
    /// the default for all Figure 4 runs).
    pub fn alewife_with_victim() -> Self {
        CacheConfig {
            victim_lines: 4,
            ..Self::alewife()
        }
    }

    /// Number of sets in the direct-mapped array.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::alewife()
    }
}

/// Outcome of a read or write probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Present with sufficient permission.
    Hit,
    /// Found in the victim buffer and swapped back into the main array
    /// (slightly slower than a primary hit).
    VictimHit,
    /// Present `Shared` but the access is a write: the protocol must
    /// obtain write permission, but no line needs to be evicted.
    UpgradeMiss,
    /// Not present: the protocol must fetch the block. If filling it
    /// displaced a dirty line that fell out of the victim path,
    /// `writeback` names the block that must be flushed to its home.
    Miss {
        /// Dirty block displaced by this access, to be written back.
        writeback: Option<BlockAddr>,
    },
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Primary-array data hits.
    pub hits: u64,
    /// Victim-buffer data hits.
    pub victim_hits: u64,
    /// Data misses requiring a protocol fetch.
    pub misses: u64,
    /// Write probes that found the line `Shared` (upgrade needed).
    pub upgrade_misses: u64,
    /// Lines displaced from the primary array by conflicting fills.
    pub evictions: u64,
    /// Dirty lines that had to be written back to their home.
    pub writebacks: u64,
    /// Instruction-fetch probes.
    pub ifetches: u64,
    /// Instruction-fetch misses.
    pub ifetch_misses: u64,
    /// External invalidations that found the line present.
    pub invalidations: u64,
}

impl CacheStats {
    /// Data-access miss ratio (misses / (hits + victim + misses)).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.victim_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A node's cache system: the direct-mapped combined cache plus an
/// optional victim buffer, with the bookkeeping the CMMU needs.
///
/// Probes (`read`/`write`) answer *can this access proceed and what
/// fell out*; fills (`fill_shared`/`fill_dirty`) install a block after
/// the protocol delivers it.
#[derive(Clone, Debug)]
pub struct CacheSystem {
    cfg: CacheConfig,
    main: DirectCache,
    victim: VictimCache,
    stats: CacheStats,
    /// When set, clean lines that fall out of the victim path without
    /// a writeback are queued in `dropped` instead of vanishing —
    /// the coherence sanitizer drains them to keep its copy-set mirror
    /// exact. Off by default (zero cost).
    mirror_drops: bool,
    dropped: Vec<BlockAddr>,
}

impl CacheSystem {
    /// Creates an empty cache system.
    pub fn new(cfg: CacheConfig) -> Self {
        CacheSystem {
            main: DirectCache::new(cfg.sets()),
            victim: VictimCache::new(cfg.victim_lines),
            cfg,
            stats: CacheStats::default(),
            mirror_drops: false,
            dropped: Vec::new(),
        }
    }

    /// Makes silent drops observable (see the `mirror_drops` field).
    pub fn set_eviction_mirror(&mut self, on: bool) {
        self.mirror_drops = on;
    }

    /// Reinitializes the system in place for a fresh run: every line
    /// is evicted, the statistics restart at zero and any queued
    /// silent drops are discarded, while the tag arrays keep their
    /// allocation and the eviction-mirror switch keeps its setting
    /// (it mirrors the machine's check level, a configuration choice).
    pub fn reset(&mut self) {
        self.main.clear();
        self.victim.clear();
        self.stats = CacheStats::default();
        self.dropped.clear();
    }

    /// The next silently dropped clean block, if any (populated only
    /// while the eviction mirror is on).
    pub fn pop_dropped(&mut self) -> Option<BlockAddr> {
        self.dropped.pop()
    }

    /// Every resident `(block, state)` pair — main array plus victim
    /// buffer (instruction blocks included).
    pub fn resident_blocks(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.main.iter().chain(self.victim.iter())
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probes for a read of `block`.
    pub fn read(&mut self, block: BlockAddr) -> Access {
        if self.main.lookup(block).is_some() {
            self.stats.hits += 1;
            return Access::Hit;
        }
        if let Some(state) = self.victim.take(block) {
            self.stats.victim_hits += 1;
            self.install(block, state);
            return Access::VictimHit;
        }
        self.stats.misses += 1;
        Access::Miss { writeback: None }
    }

    /// Probes for a write of `block`.
    pub fn write(&mut self, block: BlockAddr) -> Access {
        match self.main.lookup(block) {
            Some(LineState::Dirty) => {
                self.stats.hits += 1;
                return Access::Hit;
            }
            Some(LineState::Shared) => {
                self.stats.upgrade_misses += 1;
                return Access::UpgradeMiss;
            }
            None => {}
        }
        if let Some(state) = self.victim.take(block) {
            self.install(block, state);
            return match state {
                LineState::Dirty => {
                    self.stats.victim_hits += 1;
                    Access::VictimHit
                }
                LineState::Shared => {
                    self.stats.upgrade_misses += 1;
                    Access::UpgradeMiss
                }
            };
        }
        self.stats.misses += 1;
        Access::Miss { writeback: None }
    }

    /// Installs `block` with read-only permission, returning any dirty
    /// block displaced out of the victim path (which must be written
    /// back to its home).
    pub fn fill_shared(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.install(block, LineState::Shared)
    }

    /// Installs `block` with write permission, returning any dirty
    /// block displaced out of the victim path.
    pub fn fill_dirty(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.install(block, LineState::Dirty)
    }

    /// Grants write permission to an already-resident `Shared` line
    /// (completion of an upgrade transaction).
    ///
    /// Returns `false` if the line is no longer resident (it may have
    /// been evicted or invalidated while the upgrade was in flight; the
    /// caller should fill instead).
    pub fn upgrade(&mut self, block: BlockAddr) -> bool {
        self.main.upgrade(block)
    }

    /// External invalidation from the home node. Returns the state the
    /// line was in, if present (a `Dirty` result means the protocol
    /// must carry the data back with the acknowledgment).
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        // Check both structures: defensive against a copy in each.
        let main = self.main.invalidate(block);
        let victim = self.victim.invalidate(block);
        let s = match (main, victim) {
            (Some(LineState::Dirty), _) | (_, Some(LineState::Dirty)) => Some(LineState::Dirty),
            (Some(s), _) | (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        if s.is_some() {
            self.stats.invalidations += 1;
        }
        s
    }

    /// Downgrades a dirty line to shared (home pulled the data for a
    /// remote reader). Returns `true` if the line was present. A line
    /// sitting in the victim buffer is swapped back shared — otherwise
    /// a `Downgrade` could miss a still-held dirty copy and hang the
    /// home's read transaction.
    pub fn downgrade(&mut self, block: BlockAddr) -> bool {
        if self.main.downgrade(block) {
            return true;
        }
        if self.victim.take(block).is_some() {
            self.install(block, LineState::Shared);
            return true;
        }
        false
    }

    /// Whether `block` is resident anywhere in the cache system.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.main.lookup(block).is_some() || self.victim.contains(block)
    }

    /// The permission state of `block`, if resident in the main array
    /// or victim buffer.
    pub fn state_of(&self, block: BlockAddr) -> Option<LineState> {
        self.main.lookup(block)
    }

    /// The permission state of `block` wherever it is resident — main
    /// array or victim buffer (the quiesce audit must see both).
    pub fn state_anywhere(&self, block: BlockAddr) -> Option<LineState> {
        self.main.lookup(block).or_else(|| self.victim.peek(block))
    }

    /// Instruction-fetch probe: instructions travel through the same
    /// combined cache and can displace data lines. Returns `(miss,
    /// writeback)`: `miss` is `true` when the machine must charge the
    /// ifetch miss penalty, and `writeback` names a dirty *data* block
    /// the code fill displaced out of the victim path (the thrashing
    /// mechanism of Figure 3). Instruction lines are always `Shared`
    /// (code is read-only and node-local).
    pub fn ifetch(&mut self, block: BlockAddr) -> (bool, Option<BlockAddr>) {
        self.stats.ifetches += 1;
        if self.main.lookup(block).is_some() {
            return (false, None);
        }
        if self.victim.take(block).is_some() {
            // Victim hit on code: swap back, modest cost treated as a
            // hit for miss accounting.
            let wb = self.install(block, LineState::Shared);
            return (false, wb);
        }
        self.stats.ifetch_misses += 1;
        let wb = self.install(block, LineState::Shared);
        (true, wb)
    }

    fn install(&mut self, block: BlockAddr, state: LineState) -> Option<BlockAddr> {
        // A re-fill of a block still sitting in the victim buffer must
        // not leave a duplicate behind.
        self.victim.take(block);
        let evicted = self.main.insert(block, state)?;
        self.stats.evictions += 1;
        let overflow = self.victim.insert(evicted.0, evicted.1)?;
        match overflow.1 {
            LineState::Dirty => {
                self.stats.writebacks += 1;
                Some(overflow.0)
            }
            LineState::Shared => {
                if self.mirror_drops {
                    self.dropped.push(overflow.0);
                }
                None // silent drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(victim: usize) -> CacheSystem {
        CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: victim,
        })
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny(0);
        assert_eq!(c.read(BlockAddr(1)), Access::Miss { writeback: None });
        c.fill_shared(BlockAddr(1));
        assert_eq!(c.read(BlockAddr(1)), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_to_shared_is_upgrade_miss() {
        let mut c = tiny(0);
        c.fill_shared(BlockAddr(1));
        assert_eq!(c.write(BlockAddr(1)), Access::UpgradeMiss);
        assert!(c.upgrade(BlockAddr(1)));
        assert_eq!(c.write(BlockAddr(1)), Access::Hit);
    }

    #[test]
    fn dirty_eviction_without_victim_cache_writes_back() {
        let mut c = tiny(0);
        c.fill_dirty(BlockAddr(1));
        // Block 9 conflicts with block 1 in an 8-set cache.
        let wb = c.fill_shared(BlockAddr(9));
        assert_eq!(wb, Some(BlockAddr(1)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn shared_eviction_is_silent() {
        let mut c = tiny(0);
        c.fill_shared(BlockAddr(1));
        let wb = c.fill_shared(BlockAddr(9));
        assert_eq!(wb, None);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn victim_cache_absorbs_conflicts() {
        let mut c = tiny(2);
        c.fill_shared(BlockAddr(1));
        assert_eq!(c.fill_shared(BlockAddr(9)), None); // 1 goes to victim
        assert_eq!(c.read(BlockAddr(1)), Access::VictimHit); // swapped back
        assert_eq!(c.read(BlockAddr(1)), Access::Hit);
    }

    #[test]
    fn victim_overflow_of_dirty_line_writes_back() {
        let mut c = tiny(1);
        c.fill_dirty(BlockAddr(1));
        assert_eq!(c.fill_shared(BlockAddr(9)), None); // dirty 1 -> victim (room)
                                                       // Filling a third conflicting line pushes 9 into the full
                                                       // victim buffer, which evicts the oldest entry — dirty block 1,
                                                       // which must be written back.
        assert_eq!(c.fill_shared(BlockAddr(17)), Some(BlockAddr(1)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_probe_victim_hit_dirty_line_proceeds() {
        let mut c = tiny(2);
        c.fill_dirty(BlockAddr(1));
        c.fill_shared(BlockAddr(9)); // dirty 1 -> victim
        assert_eq!(c.write(BlockAddr(1)), Access::VictimHit);
        assert_eq!(c.state_of(BlockAddr(1)), Some(LineState::Dirty));
    }

    #[test]
    fn write_probe_victim_hit_shared_line_needs_upgrade() {
        let mut c = tiny(2);
        c.fill_shared(BlockAddr(1));
        c.fill_shared(BlockAddr(9)); // shared 1 -> victim
        assert_eq!(c.write(BlockAddr(1)), Access::UpgradeMiss);
        assert_eq!(c.state_of(BlockAddr(1)), Some(LineState::Shared));
    }

    #[test]
    fn invalidate_hits_main_and_victim() {
        let mut c = tiny(2);
        c.fill_dirty(BlockAddr(1));
        c.fill_shared(BlockAddr(9)); // 1 -> victim
        assert_eq!(c.invalidate(BlockAddr(1)), Some(LineState::Dirty));
        assert_eq!(c.invalidate(BlockAddr(9)), Some(LineState::Shared));
        assert_eq!(c.invalidate(BlockAddr(42)), None);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn ifetch_misses_fill_and_can_thrash_data() {
        let mut c = tiny(0);
        c.fill_shared(BlockAddr(1));
        // Code block 9 conflicts with data block 1.
        assert_eq!(c.ifetch(BlockAddr(9)), (true, None));
        assert_eq!(c.ifetch(BlockAddr(9)), (false, None));
        assert_eq!(c.read(BlockAddr(1)), Access::Miss { writeback: None });
        assert_eq!(c.stats().ifetches, 2);
        assert_eq!(c.stats().ifetch_misses, 1);
    }

    #[test]
    fn downgrade_keeps_line_shared() {
        let mut c = tiny(0);
        c.fill_dirty(BlockAddr(3));
        assert!(c.downgrade(BlockAddr(3)));
        assert_eq!(c.state_of(BlockAddr(3)), Some(LineState::Shared));
        assert_eq!(c.write(BlockAddr(3)), Access::UpgradeMiss);
    }

    #[test]
    fn eviction_mirror_queues_silent_drops() {
        let mut c = tiny(0);
        c.set_eviction_mirror(true);
        c.fill_shared(BlockAddr(1));
        c.fill_shared(BlockAddr(9)); // silently drops block 1
        assert_eq!(c.pop_dropped(), Some(BlockAddr(1)));
        assert_eq!(c.pop_dropped(), None);
        // Filling dirty 17 silently drops shared 9 …
        c.fill_dirty(BlockAddr(17));
        assert_eq!(c.pop_dropped(), Some(BlockAddr(9)));
        // … but evicting dirty 17 produces a writeback — not silent.
        assert_eq!(c.fill_shared(BlockAddr(25)), Some(BlockAddr(17)));
        assert_eq!(c.pop_dropped(), None);
    }

    #[test]
    fn mirror_off_by_default_queues_nothing() {
        let mut c = tiny(0);
        c.fill_shared(BlockAddr(1));
        c.fill_shared(BlockAddr(9));
        assert_eq!(c.pop_dropped(), None);
    }

    #[test]
    fn resident_blocks_cover_main_and_victim() {
        let mut c = tiny(2);
        c.fill_dirty(BlockAddr(1));
        c.fill_shared(BlockAddr(9)); // dirty 1 -> victim
        let mut blocks: Vec<_> = c.resident_blocks().collect();
        blocks.sort_unstable_by_key(|&(b, _)| b.0);
        assert_eq!(
            blocks,
            vec![
                (BlockAddr(1), LineState::Dirty),
                (BlockAddr(9), LineState::Shared)
            ]
        );
        assert_eq!(c.state_anywhere(BlockAddr(1)), Some(LineState::Dirty));
        assert_eq!(c.state_of(BlockAddr(1)), None); // main array only
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = tiny(0);
        c.read(BlockAddr(1));
        c.fill_shared(BlockAddr(1));
        c.read(BlockAddr(1));
        c.read(BlockAddr(1));
        let r = c.stats().miss_ratio();
        assert!((r - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn alewife_geometry() {
        let cfg = CacheConfig::alewife();
        assert_eq!(cfg.sets(), 4096);
        assert_eq!(CacheConfig::alewife_with_victim().victim_lines, 4);
    }
}
