//! Processor cache model for the `limitless` simulator.
//!
//! Each Alewife node has 64 KB of direct-mapped, *combined*
//! instruction + data cache with 16-byte lines (paper §3.1). Because
//! the cache is combined and direct-mapped, hot instruction blocks can
//! conflict with hot data blocks — the instruction/data thrashing that
//! cripples TSP in Figure 3. The paper's remedies are both modelled
//! here:
//!
//! * **perfect ifetch** — a simulator option giving one-cycle access to
//!   every instruction without touching the cache (Figure 3's hashed
//!   bars);
//! * **victim caching** — a small fully-associative buffer for blocks
//!   evicted from the direct-mapped cache (Jouppi 1990), Alewife's
//!   actual mechanism via the transaction store (Figure 3's black
//!   bars).
//!
//! The cache is a *permission* model: it tracks which blocks are
//! present and whether they may be read or written. Data values live in
//! the machine layer's shadow memory (the coherence checker).
//!
//! # Examples
//!
//! ```
//! use limitless_cache::{CacheConfig, CacheSystem, Access};
//! use limitless_sim::BlockAddr;
//!
//! let mut c = CacheSystem::new(CacheConfig::default());
//! assert_eq!(c.read(BlockAddr(100)), Access::Miss { writeback: None });
//! c.fill_shared(BlockAddr(100));
//! assert_eq!(c.read(BlockAddr(100)), Access::Hit);
//! ```

pub mod direct;
pub mod ifetch;
pub mod system;
pub mod victim;

pub use direct::DirectCache;
pub use ifetch::{InstrFootprint, INSTR_BLOCK_BASE};
pub use system::{Access, CacheConfig, CacheStats, CacheSystem};
pub use victim::VictimCache;

/// Permission state of a cached line (matching the hardware protocol's
/// view: invalid, read-only shared, or read-write dirty).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Present with read permission only.
    Shared,
    /// Present with read/write permission; memory copy is stale.
    Dirty,
}

impl LineState {
    /// Whether this state grants write permission.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Dirty)
    }
}

/// Packed line-state storage: two [`LineState`] nibbles per byte.
///
/// Both tag arrays ([`DirectCache`], [`VictimCache`]) keep their tags
/// in a dense `Vec<BlockAddr>` and their states here, so a lookup
/// touches one 8-byte tag plus half a byte of state instead of a
/// 16-byte `Option<(BlockAddr, LineState)>` slot.
pub(crate) mod packed {
    use super::LineState;

    /// Bytes needed to hold `lines` nibbles.
    pub fn bytes_for(lines: usize) -> usize {
        lines.div_ceil(2)
    }

    #[inline]
    pub fn get(states: &[u8], i: usize) -> LineState {
        if states[i >> 1] >> ((i & 1) * 4) & 0xF == 1 {
            LineState::Dirty
        } else {
            LineState::Shared
        }
    }

    #[inline]
    pub fn set(states: &mut [u8], i: usize, s: LineState) {
        let nib = match s {
            LineState::Shared => 0u8,
            LineState::Dirty => 1u8,
        };
        let shift = (i & 1) * 4;
        let b = &mut states[i >> 1];
        *b = (*b & !(0xF << shift)) | (nib << shift);
    }

    /// Shifts nibbles `[i + 1, len)` down one slot (entry `i` removed
    /// from an ordered buffer of `len` live entries).
    pub fn remove(states: &mut [u8], len: usize, i: usize) {
        for j in i..len.saturating_sub(1) {
            let next = get(states, j + 1);
            set(states, j, next);
        }
    }
}
