//! Processor cache model for the `limitless` simulator.
//!
//! Each Alewife node has 64 KB of direct-mapped, *combined*
//! instruction + data cache with 16-byte lines (paper §3.1). Because
//! the cache is combined and direct-mapped, hot instruction blocks can
//! conflict with hot data blocks — the instruction/data thrashing that
//! cripples TSP in Figure 3. The paper's remedies are both modelled
//! here:
//!
//! * **perfect ifetch** — a simulator option giving one-cycle access to
//!   every instruction without touching the cache (Figure 3's hashed
//!   bars);
//! * **victim caching** — a small fully-associative buffer for blocks
//!   evicted from the direct-mapped cache (Jouppi 1990), Alewife's
//!   actual mechanism via the transaction store (Figure 3's black
//!   bars).
//!
//! The cache is a *permission* model: it tracks which blocks are
//! present and whether they may be read or written. Data values live in
//! the machine layer's shadow memory (the coherence checker).
//!
//! # Examples
//!
//! ```
//! use limitless_cache::{CacheConfig, CacheSystem, Access};
//! use limitless_sim::BlockAddr;
//!
//! let mut c = CacheSystem::new(CacheConfig::default());
//! assert_eq!(c.read(BlockAddr(100)), Access::Miss { writeback: None });
//! c.fill_shared(BlockAddr(100));
//! assert_eq!(c.read(BlockAddr(100)), Access::Hit);
//! ```

pub mod direct;
pub mod ifetch;
pub mod system;
pub mod victim;

pub use direct::DirectCache;
pub use ifetch::{InstrFootprint, INSTR_BLOCK_BASE};
pub use system::{Access, CacheConfig, CacheStats, CacheSystem};
pub use victim::VictimCache;

/// Permission state of a cached line (matching the hardware protocol's
/// view: invalid, read-only shared, or read-write dirty).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Present with read permission only.
    Shared,
    /// Present with read/write permission; memory copy is stale.
    Dirty,
}

impl LineState {
    /// Whether this state grants write permission.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Dirty)
    }
}
