//! Instruction-stream modelling.
//!
//! NWO does not model the Sparcle pipeline, but instructions *do* pass
//! through the combined direct-mapped cache, and that interaction is
//! the root cause of TSP's poor base performance in Figure 3 ("two
//! memory blocks that were shared by every node in the system were
//! constantly replaced in the cache by commonly run instructions").
//!
//! [`InstrFootprint`] models the code working set of a program phase:
//! a contiguous run of instruction blocks that the processor streams
//! through while executing. Each simulated operation advances the
//! stream; the cache decides which fetches miss. Instruction addresses
//! live in a reserved high region of the block-address space so they
//! can never alias *tags* with data, while still contending for the
//! same cache *sets*.

use limitless_sim::BlockAddr;

/// Base of the instruction block-address region. Data allocators must
/// stay below this (the machine's address-space layout enforces it).
pub const INSTR_BLOCK_BASE: u64 = 1 << 40;

/// The instruction working set of one program phase.
///
/// A footprint of `blocks` code blocks starting at a chosen set
/// alignment. Calling [`InstrFootprint::next_block`] returns the
/// instruction blocks touched as execution sweeps the loop body.
///
/// # Examples
///
/// ```
/// use limitless_cache::InstrFootprint;
///
/// let mut f = InstrFootprint::new(0, 8);
/// let a = f.next_block();
/// let b = f.next_block();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrFootprint {
    base: u64,
    blocks: u64,
    cursor: u64,
}

impl InstrFootprint {
    /// Creates a footprint of `blocks` instruction blocks whose first
    /// block maps to cache set `set_offset` (mod the cache's set
    /// count). Choosing `set_offset` lets a workload place its hot
    /// code on top of specific data sets — exactly the accidental
    /// layout that bites TSP.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(set_offset: u64, blocks: u64) -> Self {
        assert!(blocks > 0, "footprint must contain at least one block");
        InstrFootprint {
            base: INSTR_BLOCK_BASE + set_offset,
            blocks,
            cursor: 0,
        }
    }

    /// Number of code blocks in the footprint.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// The next instruction block in the execution sweep (wraps around
    /// the loop body).
    pub fn next_block(&mut self) -> BlockAddr {
        let b = BlockAddr(self.base + self.cursor);
        // Compare-and-reset instead of `%`: this advances once per
        // simulated operation, and the divisor is a runtime value.
        self.cursor += 1;
        if self.cursor == self.blocks {
            self.cursor = 0;
        }
        b
    }

    /// Restarts the sweep from the top of the loop (e.g. at a phase
    /// boundary).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_and_wraps() {
        let mut f = InstrFootprint::new(100, 3);
        let a = f.next_block();
        let b = f.next_block();
        let c = f.next_block();
        let a2 = f.next_block();
        assert_eq!(a, BlockAddr(INSTR_BLOCK_BASE + 100));
        assert_eq!(b, BlockAddr(INSTR_BLOCK_BASE + 101));
        assert_eq!(c, BlockAddr(INSTR_BLOCK_BASE + 102));
        assert_eq!(a, a2);
    }

    #[test]
    fn rewind_restarts_sweep() {
        let mut f = InstrFootprint::new(0, 4);
        f.next_block();
        f.next_block();
        f.rewind();
        assert_eq!(f.next_block(), BlockAddr(INSTR_BLOCK_BASE));
    }

    #[test]
    fn instruction_blocks_are_outside_data_space() {
        let mut f = InstrFootprint::new(0, 2);
        assert!(f.next_block().0 >= INSTR_BLOCK_BASE);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_footprint_panics() {
        InstrFootprint::new(0, 0);
    }
}
