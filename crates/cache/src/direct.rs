//! The direct-mapped tag array.

use limitless_sim::BlockAddr;

use crate::LineState;

/// Sentinel word marking an empty set. No packed word reaches this
/// value: the largest legal tag is `INSTR_BLOCK_BASE >> log2(sets)`
/// plus a small footprint offset (< 2^29 even for a single-set
/// cache would overflow, but set counts are >= 1 and block addresses
/// stay far below 2^40 + 2^31 — see the `insert` debug assertion).
const EMPTY: u32 = u32::MAX;

/// A direct-mapped cache of block tags.
///
/// Each block maps to exactly one set (`block mod sets`); inserting a
/// block evicts whatever occupied its set. Storage is one packed
/// `u32` word per set: the block's tag (its address with the set
/// index shifted off) in the high bits and the line state (the dirty
/// bit) in bit 0. The hit path therefore reads a single 4-byte word —
/// a 4096-set cache spans 16 KiB, so a 64-node machine's tag arrays
/// fit comfortably in a host L2 where the previous
/// 8-byte-tag-plus-state-nibble layout did not.
///
/// # Examples
///
/// ```
/// use limitless_cache::{DirectCache, LineState};
/// use limitless_sim::BlockAddr;
///
/// let mut c = DirectCache::new(4);
/// assert_eq!(c.insert(BlockAddr(1), LineState::Shared), None);
/// // Block 5 maps to the same set as block 1 in a 4-set cache:
/// let evicted = c.insert(BlockAddr(5), LineState::Shared);
/// assert_eq!(evicted, Some((BlockAddr(1), LineState::Shared)));
/// ```
#[derive(Clone, Debug)]
pub struct DirectCache {
    words: Vec<u32>,
    /// log2(sets): the tag is `block >> shift`, the set `block & mask`.
    shift: u32,
}

#[inline]
fn pack(tag: u64, state: LineState) -> u32 {
    ((tag as u32) << 1) | (state as u32)
}

#[inline]
fn state_of(word: u32) -> LineState {
    if word & 1 == 0 {
        LineState::Shared
    } else {
        LineState::Dirty
    }
}

impl DirectCache {
    /// Creates an empty cache with `sets` sets (one line per set).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two.
    pub fn new(sets: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        DirectCache {
            words: vec![EMPTY; sets],
            shift: sets.trailing_zeros(),
        }
    }

    /// Empties every set in place (the machine-reuse reset path); the
    /// geometry and the tag-array allocation are untouched.
    pub fn clear(&mut self) {
        self.words.fill(EMPTY);
    }

    /// Number of sets (= lines) in the cache.
    pub fn sets(&self) -> usize {
        self.words.len()
    }

    /// The set index a block maps to.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.words.len() - 1)
    }

    /// The tag stored for a block: its address above the set bits.
    #[inline]
    fn tag_of(&self, block: BlockAddr) -> u64 {
        block.0 >> self.shift
    }

    /// Reassembles a block address from a set's packed word.
    #[inline]
    fn block_at(&self, set: usize) -> BlockAddr {
        BlockAddr((u64::from(self.words[set] >> 1) << self.shift) | set as u64)
    }

    /// Looks up a block, returning its state if present.
    #[inline]
    pub fn lookup(&self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_of(block);
        let word = self.words[set];
        // The sentinel's tag bits (2^31 - 1) exceed every legal tag,
        // so a single tag comparison also rejects empty sets.
        if u64::from(word >> 1) == self.tag_of(block) {
            Some(state_of(word))
        } else {
            None
        }
    }

    /// Inserts a block, returning the evicted occupant of its set (if
    /// any, and if it is a different block).
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        let tag = self.tag_of(block);
        debug_assert!(
            tag < u64::from(u32::MAX >> 1),
            "block {block:?} tag overflows the packed word"
        );
        let set = self.set_of(block);
        let old = self.words[set];
        self.words[set] = pack(tag, state);
        if old == EMPTY || u64::from(old >> 1) == tag {
            None
        } else {
            let old_block = BlockAddr((u64::from(old >> 1) << self.shift) | set as u64);
            Some((old_block, state_of(old)))
        }
    }

    /// Removes a block if present, returning its state.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_of(block);
        let word = self.words[set];
        if u64::from(word >> 1) == self.tag_of(block) {
            self.words[set] = EMPTY;
            Some(state_of(word))
        } else {
            None
        }
    }

    /// Downgrades a block from `Dirty` to `Shared` (after the home
    /// pulls a writeback). Returns `true` if the block was present.
    pub fn downgrade(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if u64::from(self.words[set] >> 1) == self.tag_of(block) {
            self.words[set] &= !1;
            true
        } else {
            false
        }
    }

    /// Upgrades a block from `Shared` to `Dirty` (write permission
    /// granted). Returns `true` if the block was present.
    pub fn upgrade(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if u64::from(self.words[set] >> 1) == self.tag_of(block) {
            self.words[set] |= 1;
            true
        } else {
            false
        }
    }

    /// Number of occupied lines (O(sets); for tests and stats only).
    pub fn occupancy(&self) -> usize {
        self.words.iter().filter(|&&w| w != EMPTY).count()
    }

    /// Iterates over resident `(block, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != EMPTY)
            .map(|(set, &w)| (self.block_at(set), state_of(w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_insert() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Shared));
        assert_eq!(c.lookup(BlockAddr(11)), None); // same set, different tag
    }

    #[test]
    fn conflicting_blocks_evict_each_other() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Dirty);
        let ev = c.insert(BlockAddr(11), LineState::Shared);
        assert_eq!(ev, Some((BlockAddr(3), LineState::Dirty)));
        assert_eq!(c.lookup(BlockAddr(3)), None);
        assert_eq!(c.lookup(BlockAddr(11)), Some(LineState::Shared));
    }

    #[test]
    fn reinserting_same_block_is_not_an_eviction() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.insert(BlockAddr(3), LineState::Dirty), None);
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Dirty));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(5), LineState::Dirty);
        assert_eq!(c.invalidate(BlockAddr(5)), Some(LineState::Dirty));
        assert_eq!(c.invalidate(BlockAddr(5)), None);
        assert_eq!(c.lookup(BlockAddr(5)), None);
    }

    #[test]
    fn upgrade_and_downgrade() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(5), LineState::Shared);
        assert!(c.upgrade(BlockAddr(5)));
        assert_eq!(c.lookup(BlockAddr(5)), Some(LineState::Dirty));
        assert!(c.downgrade(BlockAddr(5)));
        assert_eq!(c.lookup(BlockAddr(5)), Some(LineState::Shared));
        assert!(!c.upgrade(BlockAddr(99)));
        assert!(!c.downgrade(BlockAddr(99)));
    }

    #[test]
    fn occupancy_counts_resident_lines() {
        let mut c = DirectCache::new(16);
        assert_eq!(c.occupancy(), 0);
        for b in 0..5 {
            c.insert(BlockAddr(b), LineState::Shared);
        }
        assert_eq!(c.occupancy(), 5);
    }

    #[test]
    fn neighbouring_sets_pack_states_independently() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(2), LineState::Dirty);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.lookup(BlockAddr(2)), Some(LineState::Dirty));
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Shared));
        assert!(c.upgrade(BlockAddr(3)));
        assert_eq!(c.lookup(BlockAddr(2)), Some(LineState::Dirty));
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Dirty));
    }

    #[test]
    fn instruction_blocks_round_trip_through_the_packed_tag() {
        // Instruction blocks live at 2^40 + offset: the largest tags
        // the packed word ever has to carry.
        let base = 1u64 << 40;
        let mut c = DirectCache::new(4096);
        c.insert(BlockAddr(base + 7), LineState::Shared);
        assert_eq!(c.lookup(BlockAddr(base + 7)), Some(LineState::Shared));
        // A data block in the same set must not alias the tag.
        assert_eq!(c.lookup(BlockAddr(7)), None);
        let ev = c.insert(BlockAddr(7), LineState::Dirty);
        assert_eq!(ev, Some((BlockAddr(base + 7), LineState::Shared)));
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![(BlockAddr(7), LineState::Dirty)]
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        DirectCache::new(3);
    }
}
