//! The direct-mapped tag array.

use limitless_sim::BlockAddr;

use crate::{packed, LineState};

/// Sentinel tag marking an empty set (no real block address reaches
/// `u64::MAX`: addresses are block numbers a few orders of magnitude
/// smaller).
const EMPTY: BlockAddr = BlockAddr(u64::MAX);

/// A direct-mapped cache of block tags.
///
/// Each block maps to exactly one set (`block mod sets`); inserting a
/// block evicts whatever occupied its set. Storage is
/// struct-of-arrays: a dense tag vector (sentinel-encoded empties)
/// beside a packed nibble vector of line states, so the hit path reads
/// one 8-byte tag instead of a padded 16-byte `Option` slot.
///
/// # Examples
///
/// ```
/// use limitless_cache::{DirectCache, LineState};
/// use limitless_sim::BlockAddr;
///
/// let mut c = DirectCache::new(4);
/// assert_eq!(c.insert(BlockAddr(1), LineState::Shared), None);
/// // Block 5 maps to the same set as block 1 in a 4-set cache:
/// let evicted = c.insert(BlockAddr(5), LineState::Shared);
/// assert_eq!(evicted, Some((BlockAddr(1), LineState::Shared)));
/// ```
#[derive(Clone, Debug)]
pub struct DirectCache {
    tags: Vec<BlockAddr>,
    states: Vec<u8>,
}

impl DirectCache {
    /// Creates an empty cache with `sets` sets (one line per set).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two.
    pub fn new(sets: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        DirectCache {
            tags: vec![EMPTY; sets],
            states: vec![0; packed::bytes_for(sets)],
        }
    }

    /// Number of sets (= lines) in the cache.
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// The set index a block maps to.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.tags.len() - 1)
    }

    /// Looks up a block, returning its state if present.
    #[inline]
    pub fn lookup(&self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_of(block);
        if self.tags[set] == block {
            Some(packed::get(&self.states, set))
        } else {
            None
        }
    }

    /// Inserts a block, returning the evicted occupant of its set (if
    /// any, and if it is a different block).
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        debug_assert_ne!(block, EMPTY, "the sentinel address is not cacheable");
        let set = self.set_of(block);
        let old_tag = self.tags[set];
        let old_state = packed::get(&self.states, set);
        self.tags[set] = block;
        packed::set(&mut self.states, set, state);
        if old_tag == EMPTY || old_tag == block {
            None
        } else {
            Some((old_tag, old_state))
        }
    }

    /// Removes a block if present, returning its state.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_of(block);
        if self.tags[set] == block {
            self.tags[set] = EMPTY;
            Some(packed::get(&self.states, set))
        } else {
            None
        }
    }

    /// Downgrades a block from `Dirty` to `Shared` (after the home
    /// pulls a writeback). Returns `true` if the block was present.
    pub fn downgrade(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if self.tags[set] == block {
            packed::set(&mut self.states, set, LineState::Shared);
            true
        } else {
            false
        }
    }

    /// Upgrades a block from `Shared` to `Dirty` (write permission
    /// granted). Returns `true` if the block was present.
    pub fn upgrade(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if self.tags[set] == block {
            packed::set(&mut self.states, set, LineState::Dirty);
            true
        } else {
            false
        }
    }

    /// Number of occupied lines (O(sets); for tests and stats only).
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Iterates over resident `(block, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != EMPTY)
            .map(|(i, &t)| (t, packed::get(&self.states, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_insert() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Shared));
        assert_eq!(c.lookup(BlockAddr(11)), None); // same set, different tag
    }

    #[test]
    fn conflicting_blocks_evict_each_other() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Dirty);
        let ev = c.insert(BlockAddr(11), LineState::Shared);
        assert_eq!(ev, Some((BlockAddr(3), LineState::Dirty)));
        assert_eq!(c.lookup(BlockAddr(3)), None);
        assert_eq!(c.lookup(BlockAddr(11)), Some(LineState::Shared));
    }

    #[test]
    fn reinserting_same_block_is_not_an_eviction() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.insert(BlockAddr(3), LineState::Dirty), None);
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Dirty));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(5), LineState::Dirty);
        assert_eq!(c.invalidate(BlockAddr(5)), Some(LineState::Dirty));
        assert_eq!(c.invalidate(BlockAddr(5)), None);
        assert_eq!(c.lookup(BlockAddr(5)), None);
    }

    #[test]
    fn upgrade_and_downgrade() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(5), LineState::Shared);
        assert!(c.upgrade(BlockAddr(5)));
        assert_eq!(c.lookup(BlockAddr(5)), Some(LineState::Dirty));
        assert!(c.downgrade(BlockAddr(5)));
        assert_eq!(c.lookup(BlockAddr(5)), Some(LineState::Shared));
        assert!(!c.upgrade(BlockAddr(99)));
        assert!(!c.downgrade(BlockAddr(99)));
    }

    #[test]
    fn occupancy_counts_resident_lines() {
        let mut c = DirectCache::new(16);
        assert_eq!(c.occupancy(), 0);
        for b in 0..5 {
            c.insert(BlockAddr(b), LineState::Shared);
        }
        assert_eq!(c.occupancy(), 5);
    }

    #[test]
    fn neighbouring_sets_share_a_state_byte_independently() {
        let mut c = DirectCache::new(8);
        c.insert(BlockAddr(2), LineState::Dirty);
        c.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(c.lookup(BlockAddr(2)), Some(LineState::Dirty));
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Shared));
        assert!(c.upgrade(BlockAddr(3)));
        assert_eq!(c.lookup(BlockAddr(2)), Some(LineState::Dirty));
        assert_eq!(c.lookup(BlockAddr(3)), Some(LineState::Dirty));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        DirectCache::new(3);
    }
}
