//! The victim cache: a small fully-associative buffer for evicted
//! lines.
//!
//! Alewife implements victim caching with spare transaction-store
//! buffers (Kubiatowicz et al., ASPLOS V); the paper's Figure 3 shows
//! it recovering essentially all of the performance lost to
//! instruction/data thrashing in TSP. The model is Jouppi's: lines
//! evicted from the direct-mapped cache land here; a subsequent miss
//! that hits in the victim cache swaps the line back at small cost.

use limitless_sim::BlockAddr;

use crate::{packed, LineState};

/// A fully-associative FIFO victim buffer.
///
/// Like [`crate::DirectCache`], storage is struct-of-arrays: the
/// associative probe scans a dense tag vector while the states sit in
/// packed nibbles, and both arrays are allocated once at construction.
///
/// # Examples
///
/// ```
/// use limitless_cache::{VictimCache, LineState};
/// use limitless_sim::BlockAddr;
///
/// let mut v = VictimCache::new(2);
/// v.insert(BlockAddr(1), LineState::Shared);
/// assert_eq!(v.take(BlockAddr(1)), Some(LineState::Shared));
/// assert_eq!(v.take(BlockAddr(1)), None); // removed on hit
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    /// Resident tags, oldest first.
    tags: Vec<BlockAddr>,
    /// Packed line states, parallel to `tags`; sized for `capacity`
    /// lines up front.
    states: Vec<u8>,
    capacity: usize,
}

impl VictimCache {
    /// Creates an empty victim cache holding up to `capacity` lines.
    /// A capacity of zero disables the buffer (every insert
    /// immediately overflows).
    pub fn new(capacity: usize) -> Self {
        VictimCache {
            tags: Vec::with_capacity(capacity),
            states: vec![0; packed::bytes_for(capacity)],
            capacity,
        }
    }

    /// Buffer capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Empties the buffer in place (the machine-reuse reset path); the
    /// capacity and both backing allocations are untouched.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.states.fill(0);
    }

    /// Inserts an evicted line. If the buffer is full the oldest entry
    /// is pushed out and returned (the caller must write it back if
    /// dirty).
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        debug_assert!(
            !self.tags.contains(&block),
            "victim cache already holds {block}"
        );
        if self.capacity == 0 {
            return Some((block, state));
        }
        let overflow = if self.tags.len() == self.capacity {
            let oldest = (self.tags[0], packed::get(&self.states, 0));
            self.tags.remove(0);
            packed::remove(&mut self.states, self.capacity, 0);
            Some(oldest)
        } else {
            None
        };
        packed::set(&mut self.states, self.tags.len(), state);
        self.tags.push(block);
        overflow
    }

    /// Looks up `block` and, if present, removes and returns it (the
    /// line moves back into the main cache on a victim hit).
    pub fn take(&mut self, block: BlockAddr) -> Option<LineState> {
        let pos = self.tags.iter().position(|&b| b == block)?;
        let state = packed::get(&self.states, pos);
        let len = self.tags.len();
        self.tags.remove(pos);
        packed::remove(&mut self.states, len, pos);
        Some(state)
    }

    /// Removes `block` if present (external invalidation), returning
    /// its state.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        self.take(block)
    }

    /// Whether `block` is resident (without removing it).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.tags.contains(&block)
    }

    /// The state of `block` without removing it (the coherence
    /// sanitizer's quiesce audit inspects the buffer in place).
    pub fn peek(&self, block: BlockAddr) -> Option<LineState> {
        self.tags
            .iter()
            .position(|&b| b == block)
            .map(|i| packed::get(&self.states, i))
    }

    /// Iterates resident entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, packed::get(&self.states, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_overflow_returns_oldest() {
        let mut v = VictimCache::new(2);
        assert_eq!(v.insert(BlockAddr(1), LineState::Shared), None);
        assert_eq!(v.insert(BlockAddr(2), LineState::Dirty), None);
        let out = v.insert(BlockAddr(3), LineState::Shared);
        assert_eq!(out, Some((BlockAddr(1), LineState::Shared)));
        assert!(v.contains(BlockAddr(2)));
        assert!(v.contains(BlockAddr(3)));
    }

    #[test]
    fn take_removes_entry() {
        let mut v = VictimCache::new(4);
        v.insert(BlockAddr(7), LineState::Dirty);
        assert_eq!(v.take(BlockAddr(7)), Some(LineState::Dirty));
        assert!(!v.contains(BlockAddr(7)));
        assert!(v.is_empty());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut v = VictimCache::new(0);
        assert_eq!(
            v.insert(BlockAddr(1), LineState::Dirty),
            Some((BlockAddr(1), LineState::Dirty))
        );
        assert!(v.is_empty());
    }

    #[test]
    fn invalidate_is_take() {
        let mut v = VictimCache::new(2);
        v.insert(BlockAddr(9), LineState::Shared);
        assert_eq!(v.invalidate(BlockAddr(9)), Some(LineState::Shared));
        assert_eq!(v.invalidate(BlockAddr(9)), None);
    }

    #[test]
    fn states_stay_aligned_through_removals() {
        let mut v = VictimCache::new(4);
        v.insert(BlockAddr(1), LineState::Shared);
        v.insert(BlockAddr(2), LineState::Dirty);
        v.insert(BlockAddr(3), LineState::Shared);
        v.insert(BlockAddr(4), LineState::Dirty);
        // Removing from the middle must shift the packed states too.
        assert_eq!(v.take(BlockAddr(2)), Some(LineState::Dirty));
        assert_eq!(v.peek(BlockAddr(3)), Some(LineState::Shared));
        assert_eq!(v.peek(BlockAddr(4)), Some(LineState::Dirty));
        let order: Vec<_> = v.iter().collect();
        assert_eq!(
            order,
            vec![
                (BlockAddr(1), LineState::Shared),
                (BlockAddr(3), LineState::Shared),
                (BlockAddr(4), LineState::Dirty),
            ]
        );
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(VictimCache::new(4).capacity(), 4);
        assert_eq!(VictimCache::new(4).len(), 0);
    }
}
