//! Model-based property tests: the cache system (direct-mapped array +
//! victim buffer) must behave like a bounded permission map.

use std::collections::HashMap;

use limitless_cache::{Access, CacheConfig, CacheSystem, LineState};
use limitless_sim::BlockAddr;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum CacheOp {
    Read(u64),
    Write(u64),
    FillShared(u64),
    FillDirty(u64),
    Invalidate(u64),
    Downgrade(u64),
}

fn op_strategy() -> impl Strategy<Value = CacheOp> {
    let blk = 0u64..24; // force conflicts in an 8-set cache
    prop_oneof![
        blk.clone().prop_map(CacheOp::Read),
        blk.clone().prop_map(CacheOp::Write),
        blk.clone().prop_map(CacheOp::FillShared),
        blk.clone().prop_map(CacheOp::FillDirty),
        blk.clone().prop_map(CacheOp::Invalidate),
        blk.prop_map(CacheOp::Downgrade),
    ]
}

proptest! {
    /// A shadow map tracks which blocks *may* be resident with which
    /// permission. The cache must never report more permission than
    /// the shadow grants, and hits must be shadow-resident.
    #[test]
    fn cache_never_exceeds_granted_permissions(
        ops in prop::collection::vec(op_strategy(), 1..400),
        victim in 0usize..4,
    ) {
        let mut cache = CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: victim,
        });
        // Shadow: permission ever granted and not yet revoked.
        let mut granted: HashMap<u64, LineState> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::FillShared(b) => {
                    cache.fill_shared(BlockAddr(b));
                    granted.entry(b).or_insert(LineState::Shared);
                }
                CacheOp::FillDirty(b) => {
                    cache.fill_dirty(BlockAddr(b));
                    granted.insert(b, LineState::Dirty);
                }
                CacheOp::Invalidate(b) => {
                    cache.invalidate(BlockAddr(b));
                    granted.remove(&b);
                }
                CacheOp::Downgrade(b) => {
                    cache.downgrade(BlockAddr(b));
                    if granted.get(&b) == Some(&LineState::Dirty) {
                        granted.insert(b, LineState::Shared);
                    }
                }
                CacheOp::Read(b) => {
                    match cache.read(BlockAddr(b)) {
                        Access::Hit | Access::VictimHit => {
                            prop_assert!(
                                granted.contains_key(&b),
                                "read hit on never-granted block {b}"
                            );
                        }
                        Access::Miss { .. } | Access::UpgradeMiss => {}
                    }
                }
                CacheOp::Write(b) => {
                    match cache.write(BlockAddr(b)) {
                        Access::Hit => {
                            prop_assert_eq!(
                                granted.get(&b).copied(),
                                Some(LineState::Dirty),
                                "write hit without dirty grant on {}", b
                            );
                        }
                        Access::VictimHit => {
                            prop_assert!(granted.contains_key(&b));
                        }
                        Access::Miss { .. } | Access::UpgradeMiss => {}
                    }
                }
            }
        }
    }

    /// A block is never resident in both the main array and the victim
    /// buffer, and a fill makes the block immediately readable.
    #[test]
    fn fills_are_immediately_visible(
        blocks in prop::collection::vec(0u64..24, 1..100),
    ) {
        let mut cache = CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: 2,
        });
        for b in blocks {
            cache.fill_shared(BlockAddr(b));
            prop_assert_eq!(cache.read(BlockAddr(b)), Access::Hit);
        }
    }

    /// Invalidate is idempotent and final: after it, reads miss until
    /// the next fill.
    #[test]
    fn invalidate_is_final(b in 0u64..32, refill in any::<bool>()) {
        let mut cache = CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: 2,
        });
        cache.fill_dirty(BlockAddr(b));
        assert_eq!(cache.invalidate(BlockAddr(b)), Some(LineState::Dirty));
        assert_eq!(cache.invalidate(BlockAddr(b)), None);
        let miss = matches!(cache.read(BlockAddr(b)), Access::Miss { .. });
        prop_assert!(miss);
        if refill {
            cache.fill_shared(BlockAddr(b));
            prop_assert_eq!(cache.read(BlockAddr(b)), Access::Hit);
        }
    }
}
