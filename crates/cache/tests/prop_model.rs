//! Model-based randomized tests: the cache system (direct-mapped
//! array plus victim buffer) must behave like a bounded permission
//! map. Cases come from the deterministic `SplitMix64` generator.

use std::collections::HashMap;

use limitless_cache::{Access, CacheConfig, CacheSystem, LineState};
use limitless_sim::{BlockAddr, SplitMix64};

const CASES: u64 = 64;

#[derive(Clone, Debug)]
enum CacheOp {
    Read(u64),
    Write(u64),
    FillShared(u64),
    FillDirty(u64),
    Invalidate(u64),
    Downgrade(u64),
}

fn random_op(rng: &mut SplitMix64) -> CacheOp {
    let b = rng.next_below(24); // force conflicts in an 8-set cache
    match rng.next_below(6) {
        0 => CacheOp::Read(b),
        1 => CacheOp::Write(b),
        2 => CacheOp::FillShared(b),
        3 => CacheOp::FillDirty(b),
        4 => CacheOp::Invalidate(b),
        _ => CacheOp::Downgrade(b),
    }
}

#[test]
fn cache_never_exceeds_granted_permissions() {
    // A shadow map tracks which blocks *may* be resident with which
    // permission. The cache must never report more permission than
    // the shadow grants, and hits must be shadow-resident.
    let mut rng = SplitMix64::new(0x3001);
    for case in 0..CASES {
        let len = 1 + rng.next_below(399) as usize;
        let victim = rng.next_below(4) as usize;
        let mut cache = CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: victim,
        });
        // Shadow: permission ever granted and not yet revoked.
        let mut granted: HashMap<u64, LineState> = HashMap::new();
        for _ in 0..len {
            match random_op(&mut rng) {
                CacheOp::FillShared(b) => {
                    cache.fill_shared(BlockAddr(b));
                    granted.entry(b).or_insert(LineState::Shared);
                }
                CacheOp::FillDirty(b) => {
                    cache.fill_dirty(BlockAddr(b));
                    granted.insert(b, LineState::Dirty);
                }
                CacheOp::Invalidate(b) => {
                    cache.invalidate(BlockAddr(b));
                    granted.remove(&b);
                }
                CacheOp::Downgrade(b) => {
                    cache.downgrade(BlockAddr(b));
                    if granted.get(&b) == Some(&LineState::Dirty) {
                        granted.insert(b, LineState::Shared);
                    }
                }
                CacheOp::Read(b) => match cache.read(BlockAddr(b)) {
                    Access::Hit | Access::VictimHit => {
                        assert!(
                            granted.contains_key(&b),
                            "case {case}: read hit on never-granted block {b}"
                        );
                    }
                    Access::Miss { .. } | Access::UpgradeMiss => {}
                },
                CacheOp::Write(b) => match cache.write(BlockAddr(b)) {
                    Access::Hit => {
                        assert_eq!(
                            granted.get(&b).copied(),
                            Some(LineState::Dirty),
                            "case {case}: write hit without dirty grant on {b}"
                        );
                    }
                    Access::VictimHit => {
                        assert!(granted.contains_key(&b), "case {case}: victim hit on {b}");
                    }
                    Access::Miss { .. } | Access::UpgradeMiss => {}
                },
            }
        }
    }
}

#[test]
fn fills_are_immediately_visible() {
    // A fill makes the block immediately readable.
    let mut rng = SplitMix64::new(0x3002);
    for case in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let mut cache = CacheSystem::new(CacheConfig {
            capacity_bytes: 8 * 16,
            line_bytes: 16,
            victim_lines: 2,
        });
        for _ in 0..len {
            let b = rng.next_below(24);
            cache.fill_shared(BlockAddr(b));
            assert_eq!(
                cache.read(BlockAddr(b)),
                Access::Hit,
                "case {case}: fill of {b} not visible"
            );
        }
    }
}

#[test]
fn invalidate_is_final() {
    // Invalidate is idempotent and final: after it, reads miss until
    // the next fill.
    for b in 0u64..32 {
        for refill in [false, true] {
            let mut cache = CacheSystem::new(CacheConfig {
                capacity_bytes: 8 * 16,
                line_bytes: 16,
                victim_lines: 2,
            });
            cache.fill_dirty(BlockAddr(b));
            assert_eq!(cache.invalidate(BlockAddr(b)), Some(LineState::Dirty));
            assert_eq!(cache.invalidate(BlockAddr(b)), None);
            assert!(matches!(cache.read(BlockAddr(b)), Access::Miss { .. }));
            if refill {
                cache.fill_shared(BlockAddr(b));
                assert_eq!(cache.read(BlockAddr(b)), Access::Hit);
            }
        }
    }
}
