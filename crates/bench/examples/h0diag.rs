//! Diagnostic: cycle/trap breakdown of TSP under the software-only
//! directory vs full-map — the quickest way to see where
//! `Dir_nH_0S_{NB,ACK}` spends its time.
//!
//! ```text
//! cargo run --release -p limitless-bench --example h0diag
//! ```

use limitless_apps::{run_app, Scale, Tsp};
use limitless_core::ProtocolSpec;
use limitless_machine::MachineConfig;

fn main() {
    let app = Tsp::new(Scale::Quick);
    for (name, p) in [
        ("DirnH0SNB,ACK", ProtocolSpec::zero_ptr()),
        ("DirnHNBS-", ProtocolSpec::full_map()),
    ] {
        let r = run_app(
            &app,
            MachineConfig::builder()
                .nodes(16)
                .protocol(p)
                .victim_cache(true)
                .build(),
        );
        println!(
            "{name:>14}: {:>9} cycles | {} reads {} writes ({} hits, {} misses) | \
             {} busy retries | traps: {} read-extend, {} write-extend, {} ack, {} busy \
             ({} handler cycles) | {} local fast fills",
            r.cycles.as_u64(),
            r.stats.reads,
            r.stats.writes,
            r.stats.hits,
            r.stats.misses,
            r.stats.busy_retries,
            r.stats.engine.read_extend_traps,
            r.stats.engine.write_extend_traps,
            r.stats.engine.ack_traps,
            r.stats.engine.busy_traps,
            r.stats.engine.trap_cycles,
            r.stats.local_fast_fills,
        );
    }
}
