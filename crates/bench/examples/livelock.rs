//! Regression probe for the upgrade-race hang: TSP's hot-block layout
//! under the software-only directory once wedged a read transaction
//! forever (see `Machine`'s window-of-vulnerability handling). This
//! run must terminate.
//!
//! ```text
//! cargo run --release -p limitless-bench --example livelock
//! ```

use limitless_apps::{run_app, Scale, Tsp};
use limitless_core::ProtocolSpec;
use limitless_machine::MachineConfig;

fn main() {
    let app = Tsp::new(Scale::Quick);
    let r = run_app(
        &app,
        MachineConfig::builder()
            .nodes(16)
            .protocol(ProtocolSpec::zero_ptr())
            .build(),
    );
    println!(
        "terminated cleanly: {} cycles, {} events",
        r.cycles.as_u64(),
        r.events
    );
}
