//! The experiment implementations, one per table/figure. Bench
//! targets and the CLI both dispatch here; every function returns the
//! rendered table so tests can assert on its content.

use limitless_apps::{registry, run_app, sequential_cycles, App, Scale, Smgrid, Worker};
use limitless_core::cost::Activity;
use limitless_core::{HandlerImpl, ProtocolSpec};
use limitless_machine::MachineConfig;
use limitless_stats::{fmt_f64, Table};

use crate::{fig2_protocols, fig4_spectrum, handler_impls, Harness};

fn worker_cfg(nodes: usize, p: ProtocolSpec, imp: HandlerImpl) -> MachineConfig {
    MachineConfig::builder()
        .nodes(nodes)
        .protocol(p)
        .handler_impl(imp)
        .victim_cache(true)
        .build()
}

/// **Table 1** — average software-extension latencies (cycles) for the
/// C and assembly handlers, `Dir_nH_5S_{NB}`, measured on WORKER with
/// 8/12/16 readers per block on a 16-node machine.
pub fn table1(h: Harness) -> Table {
    let nodes = 16; // fixed by the experiment definition
    let mut t = Table::new(&[
        "Readers/Block",
        "C Read",
        "Asm Read",
        "C Write",
        "Asm Write",
    ]);
    let readers = [8usize, 12, 16];
    for &r in &readers {
        let mut row = vec![r.to_string()];
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for (_, imp) in handler_impls() {
            let app = Worker::table1(r);
            let report = run_app(&app, worker_cfg(nodes, ProtocolSpec::limitless(5), imp));
            reads.push(report.stats.read_trap_latency.mean().unwrap_or(0.0));
            writes.push(report.stats.write_trap_latency.mean().unwrap_or(0.0));
        }
        row.push(fmt_f64(reads[0], 0));
        row.push(fmt_f64(reads[1], 0));
        row.push(fmt_f64(writes[0], 0));
        row.push(fmt_f64(writes[1], 0));
        t.row_owned(row);
    }
    let _ = h;
    t
}

/// **Table 2** — per-activity cycle breakdown of the median-latency
/// read and write handlers (8 readers, 1 writer per block), C vs
/// assembly.
pub fn table2(_h: Harness) -> Table {
    let app = Worker::table1(8);
    let mut bills = Vec::new();
    for (_, imp) in handler_impls() {
        let report = run_app(&app, worker_cfg(16, ProtocolSpec::limitless(5), imp));
        // Median-latency representative of each kind, as the paper
        // selects ("we choose a median request of each type").
        let read_bill = report.stats.read_trap_bills.median_bill();
        let write_bill = report.stats.write_trap_bills.median_bill();
        bills.push((read_bill, write_bill));
    }
    let mut t = Table::new(&["Activity", "C Read", "Asm Read", "C Write", "Asm Write"]);
    let cell = |bill: &Option<limitless_core::TrapBill>, a: Activity| -> String {
        match bill {
            Some(b) => {
                let c = b.activity(a);
                if c == 0 {
                    "N/A".to_string()
                } else {
                    c.to_string()
                }
            }
            None => "-".to_string(),
        }
    };
    for a in Activity::ALL {
        if a == Activity::DataTransmit {
            continue; // not a Table 2 row
        }
        t.row_owned(vec![
            a.label().to_string(),
            cell(&bills[0].0, a),
            cell(&bills[1].0, a),
            cell(&bills[0].1, a),
            cell(&bills[1].1, a),
        ]);
    }
    let total = |bill: &Option<limitless_core::TrapBill>| -> String {
        bill.as_ref()
            .map(|b| b.total().to_string())
            .unwrap_or_else(|| "-".into())
    };
    t.row_owned(vec![
        "total (median latency)".to_string(),
        total(&bills[0].0),
        total(&bills[1].0),
        total(&bills[0].1),
        total(&bills[1].1),
    ]);
    t
}

/// Builds the six Figure 4 applications at a given scale, resolved
/// through the app registry — the same source of truth the oracle,
/// the sweep runner and the CLI `--app` filter use.
pub fn applications(scale: Scale) -> Vec<Box<dyn App>> {
    registry::paper_suite(scale)
}

/// **Table 3** — application characteristics: language, size,
/// sequential time at 33 MHz.
pub fn table3(h: Harness) -> Table {
    let mut t = Table::new(&["Name", "Language", "Size", "Sequential"]);
    for app in applications(h.scale) {
        let seq = sequential_cycles(app.as_ref());
        t.row_owned(vec![
            app.name().to_string(),
            app.language().to_string(),
            app.size_description(),
            format!("{:.2} sec", seq as f64 / 33.0e6),
        ]);
    }
    t
}

/// **Figure 2** — WORKER run-time ratio to full-map vs worker-set
/// size, 16 nodes, across the protocol spectrum including the three
/// one-pointer variants.
pub fn fig2(h: Harness) -> Table {
    let nodes = 16;
    let sizes: &[usize] = match h.scale {
        Scale::Quick => &[1, 2, 4, 8, 12, 16],
        Scale::Paper => &[1, 2, 4, 6, 8, 10, 12, 14, 16],
    };
    let mut headers = vec!["Protocol".to_string()];
    headers.extend(sizes.iter().map(|s| format!("ws={s}")));
    let mut t = Table::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    // Full-map baseline per size.
    let base: Vec<u64> = sizes
        .iter()
        .map(|&s| {
            run_app(
                &Worker::fig2(s),
                worker_cfg(nodes, ProtocolSpec::full_map(), HandlerImpl::FlexibleC),
            )
            .cycles
            .as_u64()
        })
        .collect();

    for (label, p) in fig2_protocols() {
        let mut row = vec![label.to_string()];
        for (i, &s) in sizes.iter().enumerate() {
            let cycles = run_app(
                &Worker::fig2(s),
                worker_cfg(nodes, p, HandlerImpl::FlexibleC),
            )
            .cycles
            .as_u64();
            row.push(fmt_f64(cycles as f64 / base[i] as f64, 2));
        }
        t.row_owned(row);
    }
    t
}

/// **Figure 3** — TSP detailed performance: base, perfect-ifetch and
/// victim-cache configurations across the spectrum (speedups over the
/// sequential baseline of the same cache configuration).
pub fn fig3(h: Harness) -> Table {
    let nodes = h.nodes(64);
    let app = registry::build_str("tsp", h.scale).expect("registry knows tsp");
    let mut t = Table::new(&["HW ptrs", "base", "perfect ifetch", "victim cache"]);
    let seq = sequential_cycles(app.as_ref());
    for (label, p) in fig4_spectrum() {
        let mut row = vec![label.to_string()];
        for mode in 0..3 {
            let mut b = MachineConfig::builder().nodes(nodes).protocol(p);
            b = match mode {
                0 => b,
                1 => b.perfect_ifetch(true),
                _ => b.victim_cache(true),
            };
            let cycles = run_app(app.as_ref(), b.build()).cycles.as_u64();
            row.push(fmt_f64(seq as f64 / cycles as f64, 1));
        }
        t.row_owned(row);
    }
    t
}

/// **Figure 4** — speedups over sequential for the six applications on
/// a 64-node machine (victim caching enabled), across the spectrum.
pub fn fig4(h: Harness) -> Table {
    let nodes = h.nodes(64);
    let apps = applications(h.scale);
    let mut headers = vec!["HW ptrs".to_string()];
    headers.extend(apps.iter().map(|a| a.name().to_string()));
    let mut t = Table::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let seq: Vec<u64> = apps.iter().map(|a| sequential_cycles(a.as_ref())).collect();
    for (label, p) in fig4_spectrum() {
        let mut row = vec![label.to_string()];
        for (i, app) in apps.iter().enumerate() {
            let cycles = run_app(app.as_ref(), crate::cfg(nodes, p)).cycles.as_u64();
            row.push(fmt_f64(seq[i] as f64 / cycles as f64, 1));
        }
        t.row_owned(row);
    }
    t
}

/// **Figure 5** — TSP on a 256-node machine with victim caching.
pub fn fig5(h: Harness) -> Table {
    let nodes = h.nodes(256);
    let app = registry::build_str("tsp", h.scale).expect("registry knows tsp");
    let seq = sequential_cycles(app.as_ref());
    let mut t = Table::new(&["HW ptrs", "speedup"]);
    for (label, p) in fig4_spectrum() {
        let cycles = run_app(app.as_ref(), crate::cfg(nodes, p)).cycles.as_u64();
        t.row_owned(vec![
            label.to_string(),
            fmt_f64(seq as f64 / cycles as f64, 1),
        ]);
    }
    t
}

/// **Figure 6** — histogram of EVOLVE worker-set sizes on a 64-node
/// machine.
pub fn fig6(h: Harness) -> Table {
    let nodes = h.nodes(64);
    let app = registry::build_str("evolve", h.scale).expect("registry knows evolve");
    let mut m = limitless_machine::Machine::new(
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(ProtocolSpec::full_map())
            .victim_cache(true)
            .track_worker_sets(true)
            .build(),
    );
    for (a, v) in app.init_memory() {
        m.poke(a, v);
    }
    m.load(app.programs(nodes));
    let report = m.run();
    let hist = report.stats.worker_sets.expect("tracking enabled");
    let mut t = Table::new(&["Worker-set size", "Count", "log10"]);
    for (size, count) in hist.iter() {
        t.row_owned(vec![
            size.to_string(),
            count.to_string(),
            fmt_f64((count as f64).log10(), 2),
        ]);
    }
    t
}

/// **Ablation** — the one-bit local pointer: the paper reports it buys
/// only ~2 % but simplifies the protocol. Measured on WORKER and
/// SMGRID.
pub fn ablation_localbit(h: Harness) -> Table {
    let nodes = 16;
    let mut t = Table::new(&["Workload", "with local bit", "without", "delta %"]);
    let apps: Vec<(String, Box<dyn App>)> = vec![
        ("WORKER ws=4".into(), Box::new(Worker::fig2(4))),
        ("SMGRID".into(), Box::new(Smgrid::new(h.scale))),
    ];
    for (name, app) in apps {
        let with = run_app(app.as_ref(), crate::cfg(nodes, ProtocolSpec::limitless(5)))
            .cycles
            .as_u64();
        let spec_off = ProtocolSpec {
            local_bit: false,
            ..ProtocolSpec::limitless(5)
        };
        let without = run_app(app.as_ref(), crate::cfg(nodes, spec_off))
            .cycles
            .as_u64();
        let delta = (without as f64 - with as f64) / with as f64 * 100.0;
        t.row_owned(vec![
            name,
            with.to_string(),
            without.to_string(),
            fmt_f64(delta, 2),
        ]);
    }
    t
}

/// **Ablation** — the flexibility cost: end-to-end run time of the C
/// (flexible-interface) vs assembly (hand-tuned) handlers (paper §4.2).
pub fn ablation_handlers(h: Harness) -> Table {
    let nodes = 16;
    let mut t = Table::new(&["Worker set", "C cycles", "Asm cycles", "C/Asm"]);
    let sizes: &[usize] = match h.scale {
        Scale::Quick => &[8, 16],
        Scale::Paper => &[4, 8, 12, 16],
    };
    for &s in sizes {
        let app = Worker::fig2(s);
        let c = run_app(
            &app,
            worker_cfg(nodes, ProtocolSpec::limitless(5), HandlerImpl::FlexibleC),
        )
        .cycles
        .as_u64();
        let asm = run_app(
            &app,
            worker_cfg(nodes, ProtocolSpec::limitless(5), HandlerImpl::TunedAsm),
        )
        .cycles
        .as_u64();
        t.row_owned(vec![
            s.to_string(),
            c.to_string(),
            asm.to_string(),
            fmt_f64(c as f64 / asm as f64, 2),
        ]);
    }
    t
}

/// Figure 6 rendered as the paper draws it: a log-scale histogram.
pub fn fig6_chart(h: Harness) -> String {
    let t = fig6(h);
    // Re-derive pairs from the table rows (size, count columns).
    let rendered = t.render();
    let pairs: Vec<(u64, u64)> = rendered
        .lines()
        .skip(2)
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some((it.next()?.parse().ok()?, it.next()?.parse().ok()?))
        })
        .collect();
    format!(
        "{rendered}\nlog-scale histogram (cf. the paper's Figure 6):\n{}",
        limitless_stats::log_histogram(&pairs, 48)
    )
}

/// **Ablation** — network-latency sensitivity: as the mesh slows down,
/// remote misses dominate and the software-extension penalty shrinks
/// relative to full-map (the "cost and mapping of DRAM become more
/// important factors than performance" observation of §8, seen from
/// the network side).
pub fn ablation_network(_h: Harness) -> Table {
    use limitless_net::NetConfig;
    let app = Worker::fig2(8);
    let mut t = Table::new(&["hop cycles", "DirnH1SNB,LACK / full", "DirnH5SNB / full"]);
    for hop in [1u64, 4, 16] {
        let run = |p: ProtocolSpec| {
            let cfg = MachineConfig::builder()
                .nodes(16)
                .protocol(p)
                .victim_cache(true)
                .net(NetConfig {
                    hop_cycles: hop,
                    ..NetConfig::default()
                })
                .build();
            run_app(&app, cfg).cycles.as_u64()
        };
        let full = run(ProtocolSpec::full_map());
        let one = run(ProtocolSpec::one_ptr_lack());
        let five = run(ProtocolSpec::limitless(5));
        t.row_owned(vec![
            hop.to_string(),
            fmt_f64(one as f64 / full as f64, 2),
            fmt_f64(five as f64 / full as f64, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Harness {
        Harness {
            scale: Scale::Quick,
            nodes_override: Some(8),
            shards: 1,
        }
    }

    #[test]
    fn table1_magnitudes_match_paper() {
        let t = table1(quick());
        let s = t.render();
        assert!(s.contains("8"), "{s}");
        // C read traps should land in the hundreds of cycles.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn table2_contains_every_activity_row() {
        let t = table2(quick());
        let s = t.render();
        assert!(s.contains("trap dispatch"));
        assert!(s.contains("invalidation lookup and transmit"));
        assert!(s.contains("total (median latency)"));
    }

    #[test]
    fn fig2_full_map_row_is_unity() {
        let t = fig2(Harness {
            scale: Scale::Quick,
            nodes_override: None,
            shards: 1,
        });
        let s = t.render();
        let full_map_line = s
            .lines()
            .find(|l| l.contains("DirnHNBS-"))
            .expect("full-map row");
        assert!(full_map_line.contains("1.00"), "{full_map_line}");
    }
}
