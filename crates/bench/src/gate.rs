//! The CI perf gate: compares a fresh micro-benchmark run against the
//! medians committed with the most recent ledger record.
//!
//! The gate is enforcing by default — the CLI exits 1 when any
//! benchmark's median drifts beyond the tolerance band — so "this PR
//! made the event queue 2× slower" turns the build red instead of
//! hiding three PRs deep in a log. Micro timings still move with the
//! host, so the ±tolerance is generous (15% by default) and the CLI's
//! `--warn-only` flag restores the advisory behaviour for noisy
//! runners.

use crate::micro::MicroResult;
use crate::record::{BenchLedger, SweepRecord};

/// Outcome of one benchmark's comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct GateLine {
    /// Benchmark name.
    pub name: String,
    /// Baseline median ns/iter from the ledger record.
    pub baseline_ns: u64,
    /// Median ns/iter measured just now.
    pub current_ns: u64,
    /// Whether the current median is outside the tolerance band.
    pub warn: bool,
}

impl GateLine {
    /// Renders the line the CI log shows.
    pub fn render(&self) -> String {
        let verdict = if self.warn { "WARN" } else { "ok  " };
        let delta = if self.baseline_ns == 0 {
            0.0
        } else {
            (self.current_ns as f64 - self.baseline_ns as f64) / self.baseline_ns as f64 * 100.0
        };
        format!(
            "{verdict} {:<32} baseline {:>8} ns  now {:>8} ns  ({delta:+.1}%)",
            self.name, self.baseline_ns, self.current_ns
        )
    }
}

/// The ledger record the gate compares against: the most recent one
/// that actually carries micro medians (older records predate them).
pub fn baseline(ledger: &BenchLedger) -> Option<&SweepRecord> {
    ledger
        .records
        .iter()
        .rev()
        .find(|r| !r.micro_median_ns.is_empty())
}

/// Compares fresh micro results against a baseline record's medians.
/// `tolerance` is fractional (0.15 = ±15%). Benchmarks missing on
/// either side are skipped — renamed or newly added benchmarks are
/// not regressions.
pub fn compare(base: &SweepRecord, current: &[MicroResult], tolerance: f64) -> Vec<GateLine> {
    current
        .iter()
        .filter_map(|r| {
            let (_, baseline_ns) = base
                .micro_median_ns
                .iter()
                .find(|(name, _)| *name == r.name)?;
            let current_ns = r.median_ns();
            let band = *baseline_ns as f64 * tolerance;
            let warn = (current_ns as f64 - *baseline_ns as f64).abs() > band;
            Some(GateLine {
                name: r.name.clone(),
                baseline_ns: *baseline_ns,
                current_ns,
                warn,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_record(medians: &[(&str, u64)]) -> SweepRecord {
        SweepRecord {
            label: "base".into(),
            min_of: 1,
            shards: 1,
            wall_seconds: 1.0,
            events: 1,
            events_per_sec: 1.0,
            sim_cycles_per_sec: 1.0,
            cells: Vec::new(),
            micro_median_ns: medians.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    fn result(name: &str, median: u64) -> MicroResult {
        MicroResult {
            name: name.into(),
            batch_ns: vec![median],
            allocs_per_iter: None,
        }
    }

    #[test]
    fn within_tolerance_passes_and_beyond_warns() {
        let base = base_record(&[("queue", 100), ("cache", 100)]);
        let lines = compare(&base, &[result("queue", 110), result("cache", 130)], 0.15);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].warn, "10% drift is inside a 15% band");
        assert!(lines[1].warn, "30% drift is outside a 15% band");
        assert!(
            lines[1].render().starts_with("WARN"),
            "{}",
            lines[1].render()
        );
    }

    #[test]
    fn improvements_beyond_tolerance_also_flagged() {
        // A large *improvement* is worth a look too — it often means
        // the benchmark stopped measuring what it used to.
        let base = base_record(&[("queue", 100)]);
        let lines = compare(&base, &[result("queue", 50)], 0.15);
        assert!(lines[0].warn);
    }

    #[test]
    fn unmatched_benchmarks_are_skipped() {
        let base = base_record(&[("old_name", 100)]);
        let lines = compare(&base, &[result("new_name", 500)], 0.15);
        assert!(lines.is_empty());
    }

    #[test]
    fn baseline_is_last_record_with_medians() {
        let mut ledger = BenchLedger::default();
        ledger.upsert(base_record(&[("queue", 100)]));
        let mut newer = base_record(&[]);
        newer.label = "newer-no-medians".into();
        ledger.upsert(newer);
        assert_eq!(baseline(&ledger).unwrap().label, "base");
    }
}
