//! The CI perf gate: compares a fresh micro-benchmark run against the
//! medians committed with the most recent ledger record.
//!
//! The gate is enforcing by default — the CLI exits 1 when any
//! benchmark's median drifts beyond the tolerance band — so "this PR
//! made the event queue 2× slower" turns the build red instead of
//! hiding three PRs deep in a log. Micro timings still move with the
//! host, so the ±tolerance is generous (15% by default) and the CLI's
//! `--warn-only` flag restores the advisory behaviour for noisy
//! runners.

use crate::micro::MicroResult;
use crate::record::{BenchLedger, SweepRecord};

/// Outcome of one benchmark's comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct GateLine {
    /// Benchmark name.
    pub name: String,
    /// Baseline median ns/iter from the ledger record.
    pub baseline_ns: u64,
    /// Median ns/iter measured just now; `None` when the benchmark is
    /// in the baseline but absent from the current run (renamed or
    /// deleted without re-recording the baseline).
    pub current_ns: Option<u64>,
    /// Whether this line should fail an enforcing gate: the current
    /// median is outside the tolerance band, or the benchmark went
    /// missing from the current run.
    pub warn: bool,
}

impl GateLine {
    /// Renders the line the CI log shows.
    pub fn render(&self) -> String {
        let verdict = if self.warn { "WARN" } else { "ok  " };
        let Some(current_ns) = self.current_ns else {
            return format!(
                "{verdict} {:<32} baseline {:>8} ns  now  MISSING (not in current run)",
                self.name, self.baseline_ns
            );
        };
        // A zero-ns baseline cannot anchor a percentage; render the
        // comparison honestly instead of the misleading "+0.0%".
        let delta = if self.baseline_ns == 0 {
            if current_ns == 0 {
                "+0.0%".to_string()
            } else {
                "n/a: zero baseline".to_string()
            }
        } else {
            format!(
                "{:+.1}%",
                (current_ns as f64 - self.baseline_ns as f64) / self.baseline_ns as f64 * 100.0
            )
        };
        format!(
            "{verdict} {:<32} baseline {:>8} ns  now {:>8} ns  ({delta})",
            self.name, self.baseline_ns, current_ns
        )
    }
}

/// The ledger record the gate compares against: the most recent one
/// that actually carries micro medians (older records predate them).
pub fn baseline(ledger: &BenchLedger) -> Option<&SweepRecord> {
    ledger
        .records
        .iter()
        .rev()
        .find(|r| !r.micro_median_ns.is_empty())
}

/// Whether `base` was measured on a host this one can honestly be
/// compared against. Serial records compare anywhere — the micro
/// suite and a one-lane sweep are single-threaded. A *sharded*
/// record's wall clock depends on the recording host's core budget,
/// so a differing (or unknown, pre-metadata) core count makes an
/// enforcing comparison meaningless; the returned message explains
/// why the gate should warn instead.
pub fn host_mismatch(base: &SweepRecord, current_cores: usize) -> Option<String> {
    if base.shards <= 1 {
        return None;
    }
    if base.host_cores == 0 {
        Some(format!(
            "record `{}` is sharded ({} lanes) but predates host metadata; \
             wall-clock comparison across unknown hosts is advisory only",
            base.label, base.shards
        ))
    } else if base.host_cores != current_cores {
        Some(format!(
            "record `{}` was measured with {} lanes on a {}-core host; this \
             host has {current_cores} cores, so wall clock is not comparable",
            base.label, base.shards, base.host_cores
        ))
    } else {
        None
    }
}

/// Whether `base` was measured at the machine size this run is about
/// to compare against. The micro suite is size-independent, but the
/// sweep throughput figures a record carries are not: a 1024-node
/// scaling rung processes far more directory state per event than the
/// default 64-node sweep, so holding one to the other's band is
/// meaningless. A record with `nodes == 0` predates the field and
/// compares silently (it was necessarily a default-sized sweep).
pub fn nodes_mismatch(base: &SweepRecord, current_nodes: usize) -> Option<String> {
    if base.nodes == 0 || base.nodes == current_nodes {
        return None;
    }
    Some(format!(
        "record `{}` was measured on a {}-node machine; this gate run \
         sweeps {current_nodes} nodes, so sweep throughput is not \
         comparable (micro medians still are)",
        base.label, base.nodes
    ))
}

/// Compares fresh micro results against a baseline record's medians.
/// `tolerance` is fractional (0.15 = ±15%).
///
/// Every *baseline* benchmark yields a line: one that vanished from
/// the current run warns with `current_ns: None` instead of being
/// silently dropped (a gate that skips exactly the benchmarks that
/// stopped running guards nothing). Benchmarks only in the current
/// run are skipped — newly added benchmarks are not regressions. A
/// zero-ns baseline has no meaningful tolerance band, so any nonzero
/// current median warns.
pub fn compare(base: &SweepRecord, current: &[MicroResult], tolerance: f64) -> Vec<GateLine> {
    base.micro_median_ns
        .iter()
        .map(|(name, baseline_ns)| {
            let baseline_ns = *baseline_ns;
            match current.iter().find(|r| r.name == *name) {
                Some(r) => {
                    let current_ns = r.median_ns();
                    let band = baseline_ns as f64 * tolerance;
                    let warn = (current_ns as f64 - baseline_ns as f64).abs() > band;
                    GateLine {
                        name: name.clone(),
                        baseline_ns,
                        current_ns: Some(current_ns),
                        warn,
                    }
                }
                None => GateLine {
                    name: name.clone(),
                    baseline_ns,
                    current_ns: None,
                    warn: true,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_record(medians: &[(&str, u64)]) -> SweepRecord {
        SweepRecord {
            label: "base".into(),
            min_of: 1,
            shards: 1,
            nodes: 64,
            host_cores: 8,
            host_threads: 1,
            wall_seconds: 1.0,
            events: 1,
            events_per_sec: 1.0,
            sim_cycles_per_sec: 1.0,
            cells: Vec::new(),
            micro_median_ns: medians.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    fn result(name: &str, median: u64) -> MicroResult {
        MicroResult {
            name: name.into(),
            batch_ns: vec![median],
            allocs_per_iter: None,
        }
    }

    #[test]
    fn within_tolerance_passes_and_beyond_warns() {
        let base = base_record(&[("queue", 100), ("cache", 100)]);
        let lines = compare(&base, &[result("queue", 110), result("cache", 130)], 0.15);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].warn, "10% drift is inside a 15% band");
        assert!(lines[1].warn, "30% drift is outside a 15% band");
        assert!(
            lines[1].render().starts_with("WARN"),
            "{}",
            lines[1].render()
        );
    }

    #[test]
    fn improvements_beyond_tolerance_also_flagged() {
        // A large *improvement* is worth a look too — it often means
        // the benchmark stopped measuring what it used to.
        let base = base_record(&[("queue", 100)]);
        let lines = compare(&base, &[result("queue", 50)], 0.15);
        assert!(lines[0].warn);
    }

    #[test]
    fn baseline_benchmark_missing_from_current_run_warns() {
        // A benchmark that vanished from the current run is exactly
        // the case a gate exists for — it must warn, not be skipped.
        let base = base_record(&[("old_name", 100)]);
        let lines = compare(&base, &[result("new_name", 500)], 0.15);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].name, "old_name");
        assert_eq!(lines[0].current_ns, None);
        assert!(lines[0].warn);
        let rendered = lines[0].render();
        assert!(rendered.contains("MISSING"), "{rendered}");
    }

    #[test]
    fn current_only_benchmarks_are_skipped() {
        // Newly added benchmarks have nothing to regress against.
        let base = base_record(&[("queue", 100)]);
        let lines = compare(
            &base,
            &[result("queue", 100), result("brand_new", 500)],
            0.15,
        );
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].name, "queue");
    }

    #[test]
    fn zero_baseline_with_nonzero_current_warns_honestly() {
        let base = base_record(&[("degenerate", 0)]);
        let lines = compare(&base, &[result("degenerate", 80)], 0.15);
        assert!(lines[0].warn, "zero baseline cannot absorb 80 ns");
        let rendered = lines[0].render();
        assert!(
            rendered.contains("zero baseline"),
            "must not render +0.0%: {rendered}"
        );
        assert!(!rendered.contains("+0.0%"), "{rendered}");
        // Zero-to-zero is genuinely unchanged.
        let same = compare(&base, &[result("degenerate", 0)], 0.15);
        assert!(!same[0].warn);
    }

    #[test]
    fn serial_records_compare_across_any_host() {
        let base = base_record(&[("queue", 100)]);
        assert_eq!(host_mismatch(&base, 1), None);
        assert_eq!(host_mismatch(&base, 64), None);
    }

    #[test]
    fn sharded_records_demand_the_same_core_budget() {
        let mut base = base_record(&[("queue", 100)]);
        base.shards = 4;
        assert_eq!(host_mismatch(&base, 8), None, "same budget compares");
        let msg = host_mismatch(&base, 2).expect("2 != 8 cores must warn");
        assert!(msg.contains("8-core"), "{msg}");
        assert!(msg.contains("2 cores"), "{msg}");
    }

    #[test]
    fn sharded_records_without_host_metadata_warn() {
        let mut base = base_record(&[("queue", 100)]);
        base.shards = 2;
        base.host_cores = 0;
        let msg = host_mismatch(&base, 8).expect("unknown host must warn");
        assert!(msg.contains("predates host metadata"), "{msg}");
    }

    #[test]
    fn node_count_mismatch_demotes_to_advisory() {
        let base = base_record(&[("queue", 100)]);
        assert_eq!(nodes_mismatch(&base, 64), None, "same size compares");
        let msg = nodes_mismatch(&base, 1024).expect("64 vs 1024 must warn");
        assert!(msg.contains("64-node"), "{msg}");
        assert!(msg.contains("1024 nodes"), "{msg}");
        // Pre-field records (nodes == 0) compare silently: they were
        // all default-sized sweeps.
        let mut old = base_record(&[("queue", 100)]);
        old.nodes = 0;
        assert_eq!(nodes_mismatch(&old, 64), None);
    }

    #[test]
    fn baseline_is_last_record_with_medians() {
        let mut ledger = BenchLedger::default();
        ledger.upsert(base_record(&[("queue", 100)]));
        let mut newer = base_record(&[]);
        newer.label = "newer-no-medians".into();
        ledger.upsert(newer);
        assert_eq!(baseline(&ledger).unwrap().label, "base");
    }
}
