//! The perf-trajectory ledger: `BENCH_sweep.json` at the repo root.
//!
//! Each entry is one labelled measurement of the full sweep —
//! min-of-N wall clock, aggregate throughput, and the per-cell
//! breakdown — so future PRs can compare against a committed
//! baseline instead of re-deriving one. Writing a record with an
//! existing label replaces it (re-measuring a PR updates its row);
//! new labels append, preserving the history.

use limitless_stats::{JsonError, JsonValue};

use crate::runner::ExperimentResult;

/// One cell's contribution to a sweep record.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Protocol label (series).
    pub protocol: String,
    /// Application label (point).
    pub app: String,
    /// Simulated cycles (bit-exact across hosts).
    pub cycles: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Software-extension traps taken (0 in full-map cells, and in
    /// records written before the scaling ladder stamped trap data).
    pub traps: u64,
    /// Operations that required a protocol transaction; `traps /
    /// misses` is the share of directory traffic that overflowed the
    /// hardware pointer regime into software (0 = unknown in old
    /// records).
    pub misses: u64,
    /// Min-of-N host wall seconds for this cell.
    pub wall_seconds: f64,
}

/// One labelled sweep measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// Record label, e.g. `pr1-baseline` or `pr2-ladder`.
    pub label: String,
    /// How many full runs the per-cell min was taken over.
    pub min_of: u32,
    /// Event-lane count the sweep ran with (1 = serial engine;
    /// records written before the sharded engine existed parse as 1).
    pub shards: usize,
    /// Machine node count every cell ran at (0 = unknown: the record
    /// predates the field). Scaling-rung records (256/512/1024-node
    /// sweeps) are not throughput-comparable with default-sized ones,
    /// so the size is stamped into the ledger.
    pub nodes: usize,
    /// `available_parallelism` of the recording host (0 = unknown:
    /// the record predates host metadata). Sharded wall clock is only
    /// comparable between hosts with the same core budget.
    pub host_cores: usize,
    /// Worker threads the engine actually ran (lanes are multiplexed
    /// onto at most `host_cores` threads; 0 = unknown).
    pub host_threads: usize,
    /// Total host wall seconds (sum of per-cell minima).
    pub wall_seconds: f64,
    /// Total simulation events across all cells.
    pub events: u64,
    /// Aggregate events per wall second.
    pub events_per_sec: f64,
    /// Aggregate simulated cycles per wall second.
    pub sim_cycles_per_sec: f64,
    /// Per-cell breakdown (may be empty for hand-entered baselines).
    pub cells: Vec<CellRecord>,
    /// Median ns/iter per micro benchmark (name → median), captured
    /// alongside the sweep so the CI perf gate has a committed
    /// baseline. Empty in records written before the gate existed.
    pub micro_median_ns: Vec<(String, u64)>,
}

impl SweepRecord {
    /// Builds a record from a completed (usually min-of-N) run,
    /// stamping the host's parallelism so sharded records from
    /// differently sized hosts are never silently compared.
    pub fn from_result(label: &str, r: &ExperimentResult) -> Self {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRecord {
            label: label.to_string(),
            min_of: r.min_of,
            shards: r.shards,
            nodes: r.nodes,
            host_cores,
            host_threads: r.shards.max(1).min(host_cores),
            wall_seconds: r.total_wall_seconds(),
            events: r.total_events(),
            events_per_sec: r.events_per_sec(),
            sim_cycles_per_sec: r.sim_cycles_per_sec(),
            cells: r
                .cells
                .iter()
                .map(|c| CellRecord {
                    protocol: c.protocol.clone(),
                    app: c.app.clone(),
                    cycles: c.report.cycles.as_u64(),
                    events: c.report.events,
                    traps: c.report.stats.engine.traps,
                    misses: c.report.stats.misses,
                    wall_seconds: c.report.wall_seconds,
                })
                .collect(),
            micro_median_ns: Vec::new(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                JsonValue::Obj(vec![
                    ("protocol".into(), JsonValue::Str(c.protocol.clone())),
                    ("app".into(), JsonValue::Str(c.app.clone())),
                    ("cycles".into(), JsonValue::from_u64(c.cycles)),
                    ("events".into(), JsonValue::from_u64(c.events)),
                    ("traps".into(), JsonValue::from_u64(c.traps)),
                    ("misses".into(), JsonValue::from_u64(c.misses)),
                    ("wall_seconds".into(), JsonValue::from_f64(c.wall_seconds)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("min_of".into(), JsonValue::from_u64(u64::from(self.min_of))),
            ("shards".into(), JsonValue::from_u64(self.shards as u64)),
            ("nodes".into(), JsonValue::from_u64(self.nodes as u64)),
            (
                "host_cores".into(),
                JsonValue::from_u64(self.host_cores as u64),
            ),
            (
                "host_threads".into(),
                JsonValue::from_u64(self.host_threads as u64),
            ),
            (
                "wall_seconds".into(),
                JsonValue::from_f64(self.wall_seconds),
            ),
            ("events".into(), JsonValue::from_u64(self.events)),
            (
                "events_per_sec".into(),
                JsonValue::from_f64(self.events_per_sec),
            ),
            (
                "sim_cycles_per_sec".into(),
                JsonValue::from_f64(self.sim_cycles_per_sec),
            ),
            ("cells".into(), JsonValue::Arr(cells)),
            (
                "micro_median_ns".into(),
                JsonValue::Obj(
                    self.micro_median_ns
                        .iter()
                        .map(|(name, ns)| (name.clone(), JsonValue::from_u64(*ns)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        let cells = v
            .get("cells")?
            .as_arr()?
            .iter()
            .map(|c| {
                Ok(CellRecord {
                    protocol: c.get("protocol")?.as_str()?.to_string(),
                    app: c.get("app")?.as_str()?.to_string(),
                    cycles: c.get("cycles")?.as_u64()?,
                    events: c.get("events")?.as_u64()?,
                    // Absent in records that predate trap stamping.
                    traps: c
                        .get("traps")
                        .ok()
                        .and_then(|t| t.as_u64().ok())
                        .unwrap_or(0),
                    misses: c
                        .get("misses")
                        .ok()
                        .and_then(|t| t.as_u64().ok())
                        .unwrap_or(0),
                    wall_seconds: c.get("wall_seconds")?.as_f64()?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(SweepRecord {
            label: v.get("label")?.as_str()?.to_string(),
            min_of: u32::try_from(v.get("min_of")?.as_u64()?)
                .map_err(|_| JsonError::new("min_of out of range"))?,
            // Absent in pre-sharded-engine records: those were serial.
            shards: v
                .get("shards")
                .ok()
                .and_then(|s| s.as_u64().ok())
                .map_or(1, |s| s as usize),
            // Absent in records that predate the scaling ladder:
            // unknown machine size.
            nodes: v
                .get("nodes")
                .ok()
                .and_then(|s| s.as_u64().ok())
                .map_or(0, |s| s as usize),
            // Absent in records that predate host metadata: unknown.
            host_cores: v
                .get("host_cores")
                .ok()
                .and_then(|s| s.as_u64().ok())
                .map_or(0, |s| s as usize),
            host_threads: v
                .get("host_threads")
                .ok()
                .and_then(|s| s.as_u64().ok())
                .map_or(0, |s| s as usize),
            wall_seconds: v.get("wall_seconds")?.as_f64()?,
            events: v.get("events")?.as_u64()?,
            events_per_sec: v.get("events_per_sec")?.as_f64()?,
            sim_cycles_per_sec: v.get("sim_cycles_per_sec")?.as_f64()?,
            cells,
            // Absent in records that predate the CI perf gate.
            micro_median_ns: match v.get("micro_median_ns") {
                Ok(JsonValue::Obj(entries)) => entries
                    .iter()
                    .map(|(name, ns)| Ok((name.clone(), ns.as_u64()?)))
                    .collect::<Result<Vec<_>, JsonError>>()?,
                _ => Vec::new(),
            },
        })
    }
}

/// The whole ledger: every labelled record, in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchLedger {
    /// Labelled sweep records.
    pub records: Vec<SweepRecord>,
}

impl BenchLedger {
    /// Loads a ledger from `path`; a missing file is an empty ledger
    /// (first measurement on a fresh checkout). This is the *writer's*
    /// load — `sweep --record` starting a fresh ledger is routine.
    /// Readers that need a baseline to exist (the perf gate) must use
    /// [`BenchLedger::load_existing`] instead, so a typo'd path fails
    /// loudly rather than comparing against an empty ledger.
    ///
    /// # Errors
    ///
    /// Returns an error if the file exists but is malformed.
    pub fn load(path: &str) -> Result<Self, JsonError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(JsonError::new(format!("cannot read {path}: {e}"))),
        }
    }

    /// Loads a ledger from `path`, treating a missing file as an
    /// error — the read-side counterpart of [`BenchLedger::load`] for
    /// callers (like `perfgate`) whose job is meaningless without a
    /// baseline: `perfgate --json typo.json` must exit red, not
    /// silently pass against an empty ledger.
    ///
    /// # Errors
    ///
    /// Returns an error if the file is missing, unreadable, or
    /// malformed.
    pub fn load_existing(path: &str) -> Result<Self, JsonError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(JsonError::new(format!(
                "baseline ledger {path} does not exist (wrong --json path, or no baseline recorded yet?)"
            ))),
            Err(e) => Err(JsonError::new(format!("cannot read {path}: {e}"))),
        }
    }

    /// Inserts `record`, replacing any existing record with the same
    /// label (in place, keeping its position).
    pub fn upsert(&mut self, record: SweepRecord) {
        match self.records.iter_mut().find(|r| r.label == record.label) {
            Some(slot) => *slot = record,
            None => self.records.push(record),
        }
    }

    /// Looks up a record by label.
    pub fn get(&self, label: &str) -> Option<&SweepRecord> {
        self.records.iter().find(|r| r.label == label)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![(
            "records".into(),
            JsonValue::Arr(
                self.records
                    .iter()
                    .map(SweepRecord::to_json_value)
                    .collect(),
            ),
        )])
        .pretty()
    }

    /// Parses a previously written ledger.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = JsonValue::parse(s)?;
        let records = doc
            .get("records")?
            .as_arr()?
            .iter()
            .map(SweepRecord::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchLedger { records })
    }

    /// Writes the ledger to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, wall: f64) -> SweepRecord {
        SweepRecord {
            label: label.to_string(),
            min_of: 5,
            shards: 1,
            nodes: 64,
            host_cores: 8,
            host_threads: 1,
            wall_seconds: wall,
            events: 1000,
            events_per_sec: 1000.0 / wall,
            sim_cycles_per_sec: 2000.0 / wall,
            cells: vec![CellRecord {
                protocol: "full-map".into(),
                app: "ws=1".into(),
                cycles: 2000,
                events: 1000,
                traps: 40,
                misses: 200,
                wall_seconds: wall,
            }],
            micro_median_ns: vec![("event_queue".into(), 1234)],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut ledger = BenchLedger::default();
        ledger.upsert(rec("pr1-baseline", 0.2));
        ledger.upsert(rec("pr2-ladder", 0.1));
        let back = BenchLedger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn upsert_replaces_by_label_in_place() {
        let mut ledger = BenchLedger::default();
        ledger.upsert(rec("a", 0.3));
        ledger.upsert(rec("b", 0.2));
        ledger.upsert(rec("a", 0.1));
        assert_eq!(ledger.records.len(), 2);
        assert_eq!(ledger.records[0].label, "a");
        assert_eq!(ledger.records[0].wall_seconds, 0.1);
        assert_eq!(ledger.records[1].label, "b");
    }

    #[test]
    fn empty_cells_tolerated_for_hand_entered_baselines() {
        let mut r = rec("pr1-baseline", 0.187);
        r.cells.clear();
        let mut ledger = BenchLedger::default();
        ledger.upsert(r);
        let back = BenchLedger::from_json(&ledger.to_json()).unwrap();
        assert!(back.get("pr1-baseline").unwrap().cells.is_empty());
    }

    #[test]
    fn records_without_shards_parse_as_serial() {
        // Ledgers written before the sharded engine existed have no
        // `shards` key; they were all serial-engine measurements.
        let text = r#"{"records": [{"label": "old", "min_of": 5,
            "wall_seconds": 0.2, "events": 1000,
            "events_per_sec": 5000.0, "sim_cycles_per_sec": 10000.0,
            "cells": []}]}"#;
        let ledger = BenchLedger::from_json(text).unwrap();
        assert_eq!(ledger.get("old").unwrap().shards, 1);
    }

    #[test]
    fn records_without_nodes_parse_as_unknown_size() {
        // Ledgers written before the scaling ladder carry no machine
        // size; 0 marks them unknown so `perfgate` can warn instead of
        // comparing a 1024-node rung against a 64-node baseline.
        let text = r#"{"records": [{"label": "old", "min_of": 5,
            "shards": 1, "wall_seconds": 0.2, "events": 1000,
            "events_per_sec": 5000.0, "sim_cycles_per_sec": 10000.0,
            "cells": [{"protocol": "full-map", "app": "ws=1",
                       "cycles": 2000, "events": 1000,
                       "wall_seconds": 0.2}]}]}"#;
        let ledger = BenchLedger::from_json(text).unwrap();
        let old = ledger.get("old").unwrap();
        assert_eq!(old.nodes, 0);
        // Pre-ladder cells carry no trap data either.
        assert_eq!((old.cells[0].traps, old.cells[0].misses), (0, 0));
        // And a fresh record round-trips the real size.
        let mut out = BenchLedger::default();
        out.upsert(rec("new", 0.1));
        let back = BenchLedger::from_json(&out.to_json()).unwrap();
        assert_eq!(back.get("new").unwrap().nodes, 64);
    }

    #[test]
    fn records_without_host_metadata_parse_as_unknown() {
        // Ledgers written before host metadata existed carry no core
        // counts; 0 marks them unknown so the gate can refuse to
        // compare sharded wall clock across them.
        let text = r#"{"records": [{"label": "old", "min_of": 5,
            "shards": 2, "wall_seconds": 0.2, "events": 1000,
            "events_per_sec": 5000.0, "sim_cycles_per_sec": 10000.0,
            "cells": []}]}"#;
        let ledger = BenchLedger::from_json(text).unwrap();
        let r = ledger.get("old").unwrap();
        assert_eq!((r.host_cores, r.host_threads), (0, 0));
    }

    #[test]
    fn host_metadata_round_trips_and_is_stamped_by_from_result() {
        let mut ledger = BenchLedger::default();
        let mut r = rec("meta", 0.2);
        r.shards = 4;
        r.host_cores = 16;
        r.host_threads = 4;
        ledger.upsert(r.clone());
        let back = BenchLedger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(back.get("meta").unwrap(), &r);
    }

    #[test]
    fn missing_file_loads_as_empty() {
        let ledger = BenchLedger::load("/nonexistent/BENCH_sweep.json").unwrap();
        assert!(ledger.records.is_empty());
    }

    #[test]
    fn load_existing_rejects_missing_file() {
        let err = BenchLedger::load_existing("/nonexistent/BENCH_sweep.json")
            .expect_err("a missing baseline must not read as empty");
        let msg = err.to_string();
        assert!(msg.contains("does not exist"), "got: {msg}");
        assert!(msg.contains("/nonexistent/BENCH_sweep.json"), "got: {msg}");
    }

    #[test]
    fn load_existing_reads_a_real_ledger() {
        let mut ledger = BenchLedger::default();
        ledger.upsert(rec("pr1-baseline", 0.2));
        let path = std::env::temp_dir().join("limitless_load_existing_test.json");
        let path = path.to_str().unwrap().to_string();
        ledger.save(&path).unwrap();
        let back = BenchLedger::load_existing(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ledger);
    }
}
