//! Experiment harnesses: the code that regenerates every table and
//! figure of the paper's evaluation.
//!
//! Each `cargo bench` target in this crate prints one table or figure
//! (see DESIGN.md §3 for the index). Problem sizes default to
//! [`Scale::Quick`]; set `LIMITLESS_SCALE=paper` for the paper's
//! Table 3 sizes, and `LIMITLESS_NODES=<n>` to override the default
//! machine sizes.

use limitless_apps::{run_app, App, Scale};
use limitless_core::{HandlerImpl, ProtocolSpec};
use limitless_machine::{MachineConfig, RunReport};

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;
pub mod check;
pub mod experiments;
pub mod fuzz;
pub mod gate;
pub mod micro;
pub mod record;
pub mod runner;
pub mod serve;

pub use check::{check_app, run_check, run_check_apps, CellReport};
pub use experiments::applications;
pub use fuzz::{run_fuzz, FuzzConfig, SpecVerdict};
pub use record::{BenchLedger, CellRecord, SweepRecord};
pub use runner::{AppFactory, CellError, CellResult, ExperimentResult, ExperimentSpec, Runner};
pub use serve::{ServeConfig, ServeSummary};

/// Common knobs shared by every experiment harness.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    /// Problem-size scale.
    pub scale: Scale,
    /// Override for the experiment's default node count.
    pub nodes_override: Option<usize>,
    /// Event-lane count for every simulation (1 = the serial
    /// reference engine; results are bit-identical either way).
    pub shards: usize,
}

impl Harness {
    /// Builds a harness from the environment (`LIMITLESS_SCALE`,
    /// `LIMITLESS_NODES`, `LIMITLESS_SHARDS`).
    pub fn from_env() -> Self {
        Harness {
            scale: Scale::from_env(),
            nodes_override: std::env::var("LIMITLESS_NODES")
                .ok()
                .and_then(|s| s.parse().ok()),
            shards: std::env::var("LIMITLESS_SHARDS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1),
        }
    }

    /// The node count to use, given an experiment default. Quick scale
    /// shrinks the paper's 64/256-node configurations to keep
    /// single-core wall time reasonable.
    pub fn nodes(&self, paper_default: usize) -> usize {
        if let Some(n) = self.nodes_override {
            return n;
        }
        match self.scale {
            Scale::Paper => paper_default,
            Scale::Quick => match paper_default {
                256 => 64,
                64 => 16,
                other => other,
            },
        }
    }
}

/// A machine configuration for one experiment cell.
pub fn cfg(nodes: usize, protocol: ProtocolSpec) -> MachineConfig {
    cfg_sharded(nodes, protocol, 1)
}

/// A machine configuration for one experiment cell with an explicit
/// event-lane count (1 selects the serial reference engine).
pub fn cfg_sharded(nodes: usize, protocol: ProtocolSpec, shards: usize) -> MachineConfig {
    MachineConfig::builder()
        .nodes(nodes)
        .protocol(protocol)
        .victim_cache(true) // the paper's default after §6/TSP
        .shards(shards)
        .build()
}

/// Runs `app` and returns the report (convenience re-export).
pub fn run(app: &dyn App, config: MachineConfig) -> RunReport {
    run_app(app, config)
}

/// The Figure 4 protocol spectrum with display labels: hardware
/// pointer counts 0, 1 (the `ACK` variant, as the paper plots), 2, 3,
/// 4, 5 and full-map.
pub fn fig4_spectrum() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("0 (DirnH0SNB,ACK)", ProtocolSpec::zero_ptr()),
        ("1 (DirnH1SNB,ACK)", ProtocolSpec::one_ptr_ack()),
        ("2 (DirnH2SNB)", ProtocolSpec::limitless(2)),
        ("3 (DirnH3SNB)", ProtocolSpec::limitless(3)),
        ("4 (DirnH4SNB)", ProtocolSpec::limitless(4)),
        ("5 (DirnH5SNB)", ProtocolSpec::limitless(5)),
        ("n (DirnHNBS-)", ProtocolSpec::full_map()),
    ]
}

/// The Figure 2 protocol set: the machine protocols (solid curves)
/// plus the three one-pointer variants (dashed curves).
pub fn fig2_protocols() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("DirnH0SNB,ACK", ProtocolSpec::zero_ptr()),
        ("DirnH1SNB,ACK", ProtocolSpec::one_ptr_ack()),
        ("DirnH1SNB,LACK", ProtocolSpec::one_ptr_lack()),
        ("DirnH1SNB", ProtocolSpec::one_ptr_hw()),
        ("DirnH2SNB", ProtocolSpec::limitless(2)),
        ("DirnH3SNB", ProtocolSpec::limitless(3)),
        ("DirnH4SNB", ProtocolSpec::limitless(4)),
        ("DirnH5SNB", ProtocolSpec::limitless(5)),
        ("DirnHNBS-", ProtocolSpec::full_map()),
    ]
}

/// Computes speedup: sequential cycles / parallel cycles.
pub fn speedup(sequential: u64, parallel: u64) -> f64 {
    sequential as f64 / parallel as f64
}

/// The `HandlerImpl` pair for Table 1/2 comparisons.
pub fn handler_impls() -> [(&'static str, HandlerImpl); 2] {
    [
        ("C", HandlerImpl::FlexibleC),
        ("Assembly", HandlerImpl::TunedAsm),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_shapes() {
        assert_eq!(fig4_spectrum().len(), 7);
        assert_eq!(fig2_protocols().len(), 9);
    }

    #[test]
    fn quick_scale_shrinks_paper_machines() {
        let h = Harness {
            scale: Scale::Quick,
            nodes_override: None,
            shards: 1,
        };
        assert_eq!(h.nodes(64), 16);
        assert_eq!(h.nodes(256), 64);
        assert_eq!(h.nodes(16), 16);
        let hp = Harness {
            scale: Scale::Paper,
            nodes_override: None,
            shards: 1,
        };
        assert_eq!(hp.nodes(64), 64);
        let ho = Harness {
            scale: Scale::Quick,
            nodes_override: Some(8),
            shards: 1,
        };
        assert_eq!(ho.nodes(64), 8);
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(100, 50), 2.0);
    }
}
