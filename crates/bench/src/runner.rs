//! The unified experiment driver: one [`ExperimentSpec`] describes a
//! (protocol × application) grid, and a [`Runner`] fans the cells
//! across worker threads, recording cycle counts and simulator
//! throughput for every cell.
//!
//! Results are slot-indexed by cell, so the output is deterministic
//! regardless of how the scheduler interleaves workers: cell `i`
//! always lands in slot `i`, and each cell's seed is derived from the
//! spec's base seed and the cell index alone (never from thread
//! identity or timing).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use limitless_apps::{registry, run_app, run_app_on, App, SpecError};
use limitless_core::ProtocolSpec;
use limitless_machine::{Machine, RunReport};
use limitless_sim::SplitMix64;
use limitless_stats::{fmt_f64, ExperimentExport, Table};

use crate::{cfg_sharded, Harness};

/// Builds one application instance for a cell. The argument is the
/// cell's deterministic seed; factories for apps with stochastic
/// inputs may thread it into the app, others simply ignore it.
pub type AppFactory = Box<dyn Fn(u64) -> Box<dyn App> + Send + Sync>;

/// A declarative description of one experiment: the machine size and
/// the labelled (protocol × application) grid to sweep.
pub struct ExperimentSpec {
    /// Experiment id used in the JSON export, e.g. `sweep`.
    pub id: String,
    /// Machine size for every cell.
    pub nodes: usize,
    /// Labelled protocol spectrum (one series per entry).
    pub protocols: Vec<(String, ProtocolSpec)>,
    /// Labelled application factories (one point per entry).
    pub apps: Vec<(String, AppFactory)>,
    /// Base seed; each cell derives its own seed from this and its
    /// cell index via SplitMix64.
    pub base_seed: u64,
    /// Event-lane count for every cell's machine (1 = the serial
    /// reference engine). Simulated results are bit-identical for any
    /// value; only host wall time changes.
    pub shards: usize,
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // App factories are opaque closures; show their labels.
        f.debug_struct("ExperimentSpec")
            .field("id", &self.id)
            .field("nodes", &self.nodes)
            .field("protocols", &self.protocols)
            .field(
                "apps",
                &self.apps.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .field("base_seed", &self.base_seed)
            .field("shards", &self.shards)
            .finish()
    }
}

impl ExperimentSpec {
    /// The full Figure-4-style grid — the spectrum's seven protocols
    /// against the six paper applications — at the harness's scale
    /// and node count. The paper suite resolves through the app
    /// registry, so this is `spectrum_grid_for` with the registry's
    /// canonical names.
    pub fn spectrum_grid(h: Harness) -> Self {
        let specs: Vec<String> = registry::PAPER_APPS.iter().map(|s| s.to_string()).collect();
        Self::spectrum_grid_for(h, &specs).expect("the paper suite always resolves")
    }

    /// A spectrum grid over explicit app specs — the CLI `--app`
    /// path. Every spec is resolved through the registry up front, so
    /// a malformed `--app` string surfaces here as a typed
    /// [`SpecError`] instead of panicking inside a worker thread.
    /// Plain paper apps are labelled by their Table 3 name;
    /// parameterized specs keep the full spec string so two synth
    /// points stay distinguishable in the table.
    pub fn spectrum_grid_for(h: Harness, specs: &[String]) -> Result<Self, SpecError> {
        let scale = h.scale;
        let mut apps: Vec<(String, AppFactory)> = Vec::with_capacity(specs.len());
        for raw in specs {
            let parsed: limitless_apps::AppSpec = raw.parse()?;
            let app = registry::build(&parsed, scale)?;
            let label = if parsed.params.is_empty() {
                app.name().to_string()
            } else {
                parsed.to_string()
            };
            let factory: AppFactory = Box::new(move |_seed| {
                registry::build(&parsed, scale).expect("spec validated at grid construction")
            });
            apps.push((label, factory));
        }
        Ok(ExperimentSpec {
            id: "sweep".to_string(),
            nodes: h.nodes(64),
            protocols: crate::fig4_spectrum()
                .into_iter()
                .map(|(l, p)| (l.to_string(), p))
                .collect(),
            apps,
            base_seed: 0x11_71_1e_55,
            shards: h.shards,
        })
    }

    /// Number of cells in the grid.
    pub fn cells(&self) -> usize {
        self.protocols.len() * self.apps.len()
    }

    /// The deterministic seed for cell `index` (row-major over
    /// protocols × apps).
    pub fn cell_seed(&self, index: usize) -> u64 {
        // Golden-ratio stride decorrelates adjacent cells before the
        // SplitMix64 finalizer scrambles the result.
        let stride = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SplitMix64::new(self.base_seed ^ stride).next_u64()
    }
}

/// A cell that failed: the panic it died with, tagged with the cell's
/// full identity so a long-running service (or a CLI user staring at a
/// 42-cell sweep) can tell exactly which (protocol, app, seed) to
/// replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellError {
    /// Protocol label (series).
    pub protocol: String,
    /// Application label (point).
    pub app: String,
    /// The seed the cell's factory received.
    pub seed: u64,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {}/{} (seed {:#x}) failed: {}",
            self.protocol, self.app, self.seed, self.message
        )
    }
}

impl std::error::Error for CellError {}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The labels of cell `index` in `spec`'s row-major grid.
fn cell_labels(spec: &ExperimentSpec, index: usize) -> (&str, &str) {
    let (p_idx, a_idx) = (index / spec.apps.len(), index % spec.apps.len());
    (&spec.protocols[p_idx].0, &spec.apps[a_idx].0)
}

/// Runs cell `index` of `spec` on a freshly built machine, converting
/// a panic anywhere in the cell (app construction, simulation, result
/// verification) into a typed [`CellError`] carrying the cell's
/// identity.
pub fn run_cell(spec: &ExperimentSpec, index: usize) -> Result<CellResult, CellError> {
    let (p_idx, a_idx) = (index / spec.apps.len(), index % spec.apps.len());
    let (p_label, protocol) = &spec.protocols[p_idx];
    let (a_label, factory) = &spec.apps[a_idx];
    let seed = spec.cell_seed(index);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let app = factory(seed);
        run_app(
            app.as_ref(),
            cfg_sharded(spec.nodes, *protocol, spec.shards),
        )
    }));
    match outcome {
        Ok(report) => Ok(CellResult {
            protocol: p_label.clone(),
            app: a_label.clone(),
            seed,
            report,
        }),
        Err(payload) => Err(CellError {
            protocol: p_label.clone(),
            app: a_label.clone(),
            seed,
            message: panic_message(payload),
        }),
    }
}

/// Like [`run_cell`], but on a caller-provided machine — the sweep
/// service's machine-reuse path. The machine must have been built (or
/// [`Machine::reset`]) with the configuration cell `index` requires:
/// `cfg_sharded(spec.nodes, protocol, spec.shards)`; given that,
/// [`Machine::reset`] guarantees the results are bit-identical to
/// [`run_cell`]'s fresh build.
///
/// On `Err` the machine was abandoned mid-run and holds unspecified
/// state; the caller must discard it rather than reset-and-reuse it.
pub fn run_cell_on(
    spec: &ExperimentSpec,
    index: usize,
    m: &mut Machine,
) -> Result<CellResult, CellError> {
    let (p_label, a_label) = {
        let (p, a) = cell_labels(spec, index);
        (p.to_string(), a.to_string())
    };
    let factory = &spec.apps[index % spec.apps.len()].1;
    let seed = spec.cell_seed(index);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let app = factory(seed);
        run_app_on(app.as_ref(), m)
    }));
    match outcome {
        Ok(report) => Ok(CellResult {
            protocol: p_label,
            app: a_label,
            seed,
            report,
        }),
        Err(payload) => Err(CellError {
            protocol: p_label,
            app: a_label,
            seed,
            message: panic_message(payload),
        }),
    }
}

/// One completed cell of the grid.
#[derive(Debug)]
pub struct CellResult {
    /// Protocol label (series).
    pub protocol: String,
    /// Application label (point).
    pub app: String,
    /// The seed the cell's factory received.
    pub seed: u64,
    /// The full simulation report.
    pub report: RunReport,
}

/// A completed experiment: every cell of the grid, in row-major
/// (protocol, app) order.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Experiment id (copied from the spec).
    pub id: String,
    /// Point labels (application names).
    pub points: Vec<String>,
    /// Completed cells, slot-indexed: `cells[p * points.len() + a]`.
    pub cells: Vec<CellResult>,
    /// Machine node count every cell ran at (copied from the spec).
    /// Scaling-rung results (256/512/1024 nodes) must never be
    /// compared against default-sized sweeps, so the size travels
    /// with the result.
    pub nodes: usize,
    /// How many full runs each cell's `wall_seconds` is the minimum
    /// of (1 for a plain [`Runner::run`]).
    pub min_of: u32,
    /// Event-lane count every cell ran with (copied from the spec).
    pub shards: usize,
}

impl ExperimentResult {
    /// Total simulation events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.report.events).sum()
    }

    /// Total simulated cycles across all cells.
    pub fn total_sim_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.report.cycles.as_u64()).sum()
    }

    /// Total host wall-clock seconds spent simulating (summed over
    /// cells, so it is comparable across thread counts).
    pub fn total_wall_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.report.wall_seconds).sum()
    }

    /// Aggregate simulator throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall == 0.0 {
            0.0
        } else {
            self.total_events() as f64 / wall
        }
    }

    /// Aggregate simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall == 0.0 {
            0.0
        } else {
            self.total_sim_cycles() as f64 / wall
        }
    }

    /// Renders the grid as a cycles table (protocols down, apps
    /// across).
    pub fn table(&self) -> Table {
        let mut headers = vec!["Protocol".to_string()];
        headers.extend(self.points.iter().cloned());
        let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
        for row in self.cells.chunks(self.points.len()) {
            let mut cells = vec![row[0].protocol.clone()];
            cells.extend(row.iter().map(|c| c.report.cycles.as_u64().to_string()));
            t.row_owned(cells);
        }
        t
    }

    /// Builds the JSON experiment record: one series per protocol
    /// (cycle counts per application) plus throughput metadata —
    /// `events_per_sec` and `sim_cycles_per_sec` — for tracking
    /// simulator performance across revisions.
    pub fn to_export(&self) -> ExperimentExport {
        let mut e = ExperimentExport::new(&self.id);
        e.points(self.points.iter().cloned());
        for row in self.cells.chunks(self.points.len()) {
            let values = row
                .iter()
                .map(|c| c.report.cycles.as_u64() as f64)
                .collect();
            e.push_series(&row[0].protocol, values);
        }
        e.push_meta("cells", self.cells.len() as f64);
        e.push_meta("nodes", self.nodes as f64);
        e.push_meta("min_of", f64::from(self.min_of));
        e.push_meta("shards", self.shards as f64);
        e.push_meta("total_events", self.total_events() as f64);
        e.push_meta("wall_seconds", self.total_wall_seconds());
        e.push_meta("events_per_sec", self.events_per_sec());
        e.push_meta("sim_cycles_per_sec", self.sim_cycles_per_sec());
        e
    }
}

/// Fans an [`ExperimentSpec`]'s cells across worker threads.
pub struct Runner {
    /// Worker-thread count (clamped to the cell count at run time).
    pub threads: usize,
}

impl Default for Runner {
    /// One worker per available core.
    fn default() -> Self {
        Runner {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl Runner {
    /// A runner with an explicit worker count (0 is treated as 1).
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// Runs every cell of `spec` and returns the slot-indexed
    /// results, or — if any cell panicked — the full list of failed
    /// cells with their identities. Workers pull cell indices from a
    /// shared counter, so load-balancing is dynamic but the result
    /// layout — and every simulation itself — is identical for any
    /// thread count. A panicking cell never takes a worker (or the
    /// slot mutexes) down with it: every remaining cell still runs,
    /// so one bad cell in a 42-cell sweep costs exactly one cell.
    pub fn try_run(&self, spec: &ExperimentSpec) -> Result<ExperimentResult, Vec<CellError>> {
        let n_cells = spec.cells();
        let slots: Vec<Mutex<Option<Result<CellResult, CellError>>>> =
            (0..n_cells).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.clamp(1, n_cells.max(1));

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_cells {
                        break;
                    }
                    let outcome = run_cell(spec, i);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                });
            }
        });

        let mut cells = Vec::with_capacity(n_cells);
        let mut errors = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(Ok(cell)) => cells.push(cell),
                Some(Err(e)) => errors.push(e),
                // Unreachable today (the worker loop writes every
                // index below `n_cells`), but a skipped slot must
                // surface as a failure, not a panic without identity.
                None => {
                    let (p, a) = cell_labels(spec, i);
                    errors.push(CellError {
                        protocol: p.to_string(),
                        app: a.to_string(),
                        seed: spec.cell_seed(i),
                        message: "cell never ran".to_string(),
                    });
                }
            }
        }
        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(ExperimentResult {
            id: spec.id.clone(),
            points: spec.apps.iter().map(|(l, _)| l.clone()).collect(),
            cells,
            nodes: spec.nodes,
            min_of: 1,
            shards: spec.shards,
        })
    }

    /// Infallible wrapper around [`Runner::try_run`] for callers that
    /// treat a failed cell as fatal (tests, experiment binaries).
    ///
    /// # Panics
    ///
    /// Panics with every failed cell's identity and message if any
    /// cell fails.
    pub fn run(&self, spec: &ExperimentSpec) -> ExperimentResult {
        self.try_run(spec).unwrap_or_else(|errors| {
            let lines: Vec<String> = errors.iter().map(CellError::to_string).collect();
            panic!("{} cell(s) failed:\n{}", lines.len(), lines.join("\n"));
        })
    }

    /// Runs `spec` `n` times and keeps, per cell, the minimum host
    /// wall time across runs. Simulated outputs are deterministic, so
    /// only `wall_seconds` varies run-to-run; this is asserted. The
    /// per-cell min (rather than min of totals) is the standard
    /// noise-rejection fold: host jitter only ever *adds* time, so
    /// the minimum is the best available estimate of true cost.
    ///
    /// # Panics
    ///
    /// Panics if any repeat run disagrees on cycles or event counts —
    /// that would mean the simulator is not deterministic.
    pub fn run_min_of(&self, spec: &ExperimentSpec, n: u32) -> ExperimentResult {
        self.try_run_min_of(spec, n).unwrap_or_else(|errors| {
            let lines: Vec<String> = errors.iter().map(CellError::to_string).collect();
            panic!("{} cell(s) failed:\n{}", lines.len(), lines.join("\n"));
        })
    }

    /// Fallible [`Runner::run_min_of`]: any failed cell in any repeat
    /// aborts the remaining repeats and returns the failures.
    ///
    /// # Panics
    ///
    /// Panics if a repeat run disagrees on cycles or event counts
    /// (simulator non-determinism is a bug, not a runtime condition).
    pub fn try_run_min_of(
        &self,
        spec: &ExperimentSpec,
        n: u32,
    ) -> Result<ExperimentResult, Vec<CellError>> {
        let mut best = self.try_run(spec)?;
        for _ in 1..n {
            let again = self.try_run(spec)?;
            for (b, a) in best.cells.iter_mut().zip(again.cells) {
                assert_eq!(
                    (b.report.cycles, b.report.events),
                    (a.report.cycles, a.report.events),
                    "simulation must be deterministic across repeat runs ({}/{})",
                    b.protocol,
                    b.app,
                );
                if a.report.wall_seconds < b.report.wall_seconds {
                    b.report.wall_seconds = a.report.wall_seconds;
                }
            }
        }
        best.min_of = n.max(1);
        Ok(best)
    }
}

/// Renders a one-line throughput summary for a result (used by the
/// CLI after the table).
pub fn throughput_line(r: &ExperimentResult) -> String {
    format!(
        "{} cells, {} events in {} s host time: {} events/sec, {} sim-cycles/sec",
        r.cells.len(),
        r.total_events(),
        fmt_f64(r.total_wall_seconds(), 3),
        fmt_f64(r.events_per_sec(), 0),
        fmt_f64(r.sim_cycles_per_sec(), 0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use limitless_apps::Worker;

    fn tiny_spec() -> ExperimentSpec {
        let mk = |size: usize| -> AppFactory { Box::new(move |_| Box::new(Worker::fig2(size))) };
        ExperimentSpec {
            id: "test".to_string(),
            nodes: 16,
            protocols: vec![
                ("full-map".to_string(), ProtocolSpec::full_map()),
                ("limitless4".to_string(), ProtocolSpec::limitless(4)),
            ],
            apps: vec![("ws=1".to_string(), mk(1)), ("ws=4".to_string(), mk(4))],
            base_seed: 42,
            shards: 1,
        }
    }

    #[test]
    fn results_are_slot_ordered_and_thread_count_invariant() {
        let spec = tiny_spec();
        let serial = Runner::with_threads(1).run(&spec);
        let parallel = Runner::with_threads(4).run(&spec);
        assert_eq!(serial.cells.len(), 4);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.app, b.app);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.events, b.report.events);
            assert_eq!(a.report.stats, b.report.stats);
        }
        // Row-major layout: protocol-major, app-minor.
        assert_eq!(serial.cells[0].protocol, "full-map");
        assert_eq!(serial.cells[1].protocol, "full-map");
        assert_eq!(serial.cells[2].protocol, "limitless4");
        assert_eq!(serial.cells[0].app, "ws=1");
        assert_eq!(serial.cells[1].app, "ws=4");
    }

    #[test]
    fn sharded_cells_match_serial_cells_bit_for_bit() {
        let serial = Runner::with_threads(2).run(&tiny_spec());
        let mut spec = tiny_spec();
        spec.shards = 2;
        let sharded = Runner::with_threads(2).run(&spec);
        for (a, b) in serial.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.report.cycles, b.report.cycles, "{}/{}", a.protocol, a.app);
            assert_eq!(a.report.events, b.report.events, "{}/{}", a.protocol, a.app);
            assert_eq!(a.report.stats, b.report.stats, "{}/{}", a.protocol, a.app);
        }
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let spec = tiny_spec();
        let seeds: Vec<u64> = (0..spec.cells()).map(|i| spec.cell_seed(i)).collect();
        assert_eq!(
            seeds,
            (0..spec.cells())
                .map(|i| spec.cell_seed(i))
                .collect::<Vec<_>>()
        );
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds collide: {seeds:?}");
    }

    #[test]
    fn export_carries_throughput_meta() {
        let result = Runner::with_threads(2).run(&tiny_spec());
        let e = result.to_export();
        assert_eq!(e.points, vec!["ws=1", "ws=4"]);
        assert_eq!(e.series.len(), 2);
        let meta: Vec<&str> = e.meta.iter().map(|(k, _)| k.as_str()).collect();
        assert!(meta.contains(&"events_per_sec"));
        assert!(meta.contains(&"sim_cycles_per_sec"));
        assert!(meta.contains(&"nodes"));
        assert_eq!(result.nodes, 16, "node count copied from the spec");
        let events_per_sec = e
            .meta
            .iter()
            .find(|(k, _)| k == "events_per_sec")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(events_per_sec > 0.0, "throughput should be positive");
        // The record round-trips through JSON intact.
        let back = ExperimentExport::from_json(&e.to_json().unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn panicking_cell_reports_identity_and_spares_the_rest() {
        // One app factory panics; the other is healthy. Every failed
        // cell must surface with its (protocol, app, seed) identity —
        // not as a poisoned mutex or an anonymous "cell never ran" —
        // and the healthy cells must still have been run (the worker
        // that hit the panic keeps pulling cells).
        let good = |size: usize| -> AppFactory { Box::new(move |_| Box::new(Worker::fig2(size))) };
        let bad: AppFactory = Box::new(|_| panic!("factory exploded"));
        let spec = ExperimentSpec {
            id: "panic".to_string(),
            nodes: 16,
            protocols: vec![
                ("full-map".to_string(), ProtocolSpec::full_map()),
                ("limitless4".to_string(), ProtocolSpec::limitless(4)),
            ],
            apps: vec![("ok".to_string(), good(2)), ("boom".to_string(), bad)],
            base_seed: 42,
            shards: 1,
        };
        let errors = Runner::with_threads(1)
            .try_run(&spec)
            .expect_err("the bad app must fail the run");
        assert_eq!(errors.len(), 2, "one failure per protocol row");
        for (e, proto) in errors.iter().zip(["full-map", "limitless4"]) {
            assert_eq!(e.protocol, proto);
            assert_eq!(e.app, "boom");
            assert!(e.message.contains("factory exploded"), "got: {}", e.message);
        }
        // Seeds in the error match the spec's derivation (cells 1, 3).
        assert_eq!(errors[0].seed, spec.cell_seed(1));
        assert_eq!(errors[1].seed, spec.cell_seed(3));
        // Display carries the full identity for log lines.
        let line = errors[0].to_string();
        assert!(line.contains("full-map/boom"), "got: {line}");
        assert!(line.contains("factory exploded"), "got: {line}");
    }

    #[test]
    fn run_cell_on_reset_machine_matches_fresh_run_cell() {
        let spec = tiny_spec();
        let (_, protocol) = spec.protocols[1];
        let mut m = Machine::new(crate::cfg_sharded(spec.nodes, protocol, spec.shards));
        // Dirty the machine with one cell, then reset and replay
        // another cell of the same shape: bit-identical to fresh.
        runner_reuse_roundtrip(&spec, 2, &mut m);
        m.reset();
        runner_reuse_roundtrip(&spec, 3, &mut m);
    }

    fn runner_reuse_roundtrip(spec: &ExperimentSpec, index: usize, m: &mut Machine) {
        let fresh = run_cell(spec, index).unwrap();
        let reused = run_cell_on(spec, index, m).unwrap();
        assert_eq!(fresh.report.cycles, reused.report.cycles);
        assert_eq!(fresh.report.events, reused.report.events);
        assert_eq!(fresh.report.stats, reused.report.stats);
        assert_eq!(fresh.seed, reused.seed);
    }

    #[test]
    fn full_map_beats_zero_pointers_in_the_grid() {
        // Sanity: the grid reproduces the paper's ordering — more
        // hardware pointers never lose to the all-software protocol.
        let mk = |size: usize| -> AppFactory { Box::new(move |_| Box::new(Worker::fig2(size))) };
        let spec = ExperimentSpec {
            id: "order".to_string(),
            nodes: 16,
            protocols: vec![
                ("zero".to_string(), ProtocolSpec::zero_ptr()),
                ("full".to_string(), ProtocolSpec::full_map()),
            ],
            apps: vec![("ws=8".to_string(), mk(8))],
            base_seed: 7,
            shards: 1,
        };
        let r = Runner::with_threads(2).run(&spec);
        assert!(r.cells[0].report.cycles.as_u64() > r.cells[1].report.cycles.as_u64());
    }
}
