//! A counting wrapper around the system allocator (compiled in only
//! under the `alloc-counter` feature).
//!
//! Every `alloc`/`realloc` on the current thread bumps a thread-local
//! counter; [`allocations`] reads it. The count is per-thread on
//! purpose: the micro benchmarks are single-threaded, and a process
//! -wide atomic would charge one benchmark for another thread's
//! allocator traffic (and pay cross-core contention while doing it).
//!
//! `dealloc` is deliberately not counted — the benchmarks care about
//! allocation *pressure* on the hot path, and frees mirror allocs
//! one-to-one anyway.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator with a thread-local allocation counter bolted
/// on.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Number of heap allocations (allocs + reallocs) made by the current
/// thread since it started. Subtract two readings to meter a region.
pub fn allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::allocations;

    #[test]
    fn counts_allocations_on_this_thread() {
        let before = allocations();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        let after = allocations();
        assert!(
            after > before,
            "Vec::with_capacity must register at least one allocation"
        );
    }

    #[test]
    fn growth_reallocs_are_counted() {
        let mut v: Vec<u64> = Vec::new();
        let before = allocations();
        for i in 0..1000 {
            v.push(i);
        }
        let after = allocations();
        std::hint::black_box(&v);
        // 1000 pushes from empty: one initial alloc plus a realloc per
        // doubling — far fewer than one per push, but definitely > 1.
        assert!(after - before > 1, "doubling growth must be visible");
        assert!(after - before < 1000, "counter must not count per push");
    }
}
