//! `limitless-bench` — run any paper experiment from the command line.
//!
//! ```text
//! limitless-bench <experiment> [--paper] [--nodes N]
//! limitless-bench all [--paper]
//! limitless-bench sweep [--paper] [--nodes N] [--shards S] [--threads T]
//!                       [--min-of N] [--json PATH] [--label L] [--no-micro]
//!                       [--app SPEC ...]
//! limitless-bench micro [--json PATH] [--app SPEC ...]
//! limitless-bench check [--paper|--quick] [--nodes N] [--shards S] [--app SPEC ...]
//! limitless-bench fuzz [--specs N] [--shards S] [--nodes N] [--seed S] [--paper]
//! limitless-bench perfgate [--json PATH] [--warn-only]
//! limitless-bench serve [--threads T] [--queue CELLS] [--socket PATH] [--once]
//! ```
//!
//! `--shards S` runs every simulation on the sharded conservative
//! parallel engine with S event lanes (DESIGN.md §9); results are
//! bit-identical to the serial default, only wall time changes.
//!
//! `--app SPEC` (repeatable) selects workloads by registry spec
//! (DESIGN.md §11): `tsp`, `worker:ws=8`, or
//! `synth:seed=7,pattern=wide-shared,ws=6,rw=0.3,sync=0.01`.
//! Malformed specs are reported as typed errors at startup, never as
//! panics mid-run. `sweep --app` replaces the grid's application
//! axis, `check --app` restricts the oracle, and `micro --app` times
//! a complete end-to-end simulation of each named workload.
//!
//! `fuzz` samples `--specs N` random synthetic workloads from a fixed
//! seed range (trial i is reproducible forever) and runs every one
//! through the full differential oracle with the sanitizer armed —
//! the standing correctness campaign.
//!
//! Experiments: `table1 table2 table3 fig2 fig3 fig4 fig5 fig6
//! ablation-localbit ablation-network ablation-handlers`, plus two
//! performance probes:
//!
//! - `sweep` — the full protocol × application grid run through the
//!   threaded [`Runner`](limitless_bench::Runner), printing cycle
//!   counts and simulator throughput. `--min-of N` repeats the grid
//!   N times and keeps each cell's fastest wall time; `--json PATH`
//!   upserts the measurement into the labelled ledger at PATH
//!   (conventionally `BENCH_sweep.json` at the repo root), replacing
//!   any record with the same `--label` and keeping the rest.
//!   `--no-micro` writes the record without micro medians — use it
//!   for scaling-rung records (`--nodes 1024`) so they never become
//!   the `perfgate` baseline the default-sized sweep is held to.
//! - `micro` — data-structure micro-benchmarks, min/median over
//!   repeated batches; `--json PATH` writes the record for CI.
//!
//! There is also a correctness gate and a perf gate:
//!
//! - `check` — the differential oracle: every application × protocol
//!   cell runs with the coherence sanitizer fully armed and is diffed
//!   against full-map ground truth (final memory image + per-node read
//!   streams). Prints one PASS/FAIL line per cell; exits 1 on any
//!   failure.
//! - `perfgate` — re-runs the micro suite and diffs each median
//!   against the medians embedded in the most recent ledger record
//!   (±15%). Enforcing: any benchmark drifting beyond tolerance
//!   exits 1, as does a missing ledger or a ledger without medians.
//!   `--warn-only` restores the old advisory behaviour for noisy
//!   hosts (shared CI runners, laptops on battery).
//!
//! And the persistent sweep service:
//!
//! - `serve` — reads NDJSON job lines (one experiment grid each) from
//!   stdin, or accepts connections on `--socket PATH`, and streams one
//!   JSON line per completed cell plus per-job summaries (see
//!   DESIGN.md §13 for the schema). `--queue CELLS` bounds the work
//!   queue (over-capacity jobs are rejected whole, with the reason on
//!   the stream); `--once` exits after the first socket session.
//!   Exits 1 if any cell failed.

use limitless_apps::{registry, App, Scale};
use limitless_bench::{
    experiments, fuzz, gate, micro, runner, serve, ExperimentSpec, Harness, Runner, SweepRecord,
};
use limitless_stats::Table;

/// Resolves every `--app` spec through the registry, exiting with a
/// typed error message on the first malformed spec.
fn resolve_apps(specs: &[String], scale: Scale) -> Vec<Box<dyn App>> {
    specs
        .iter()
        .map(|s| {
            registry::build_str(s, scale).unwrap_or_else(|e| {
                eprintln!("--app {s}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut scale = Scale::from_env();
    let mut nodes_override = None;
    let mut shards = 1usize;
    let mut threads = None;
    let mut json_path = None;
    let mut min_of = 1u32;
    let mut label = "current".to_string();
    let mut warn_only = false;
    let mut no_micro = false;
    let mut app_specs: Vec<String> = Vec::new();
    let mut fuzz_specs = fuzz::FuzzConfig::default().specs;
    let mut base_seed = fuzz::DEFAULT_BASE_SEED;
    let mut queue_capacity = serve::ServeConfig::default().queue_capacity;
    let mut socket_path: Option<String> = None;
    let mut once = false;
    let mut name = String::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = Scale::Paper,
            "--quick" => scale = Scale::Quick,
            "--warn-only" => warn_only = true,
            "--no-micro" => no_micro = true,
            "--once" => once = true,
            "--queue" => {
                queue_capacity = it
                    .next()
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--queue needs a cell count >= 1");
                        std::process::exit(2);
                    });
            }
            "--socket" => {
                socket_path = it.next().or_else(|| {
                    eprintln!("--socket needs a path");
                    std::process::exit(2);
                });
            }
            "--app" => {
                app_specs.push(it.next().unwrap_or_else(|| {
                    eprintln!("--app needs a spec (e.g. `tsp` or `synth:ws=6`)");
                    std::process::exit(2);
                }));
            }
            "--specs" => {
                fuzz_specs = it
                    .next()
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--specs needs a number >= 1");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                base_seed = it.next().and_then(|n| n.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--nodes" => {
                nodes_override = it.next().and_then(|n| n.parse().ok()).or_else(|| {
                    eprintln!("--nodes needs a number");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--shards needs a number >= 1");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                threads = it.next().and_then(|n| n.parse::<usize>().ok()).or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--min-of" => {
                min_of = it
                    .next()
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--min-of needs a number >= 1");
                        std::process::exit(2);
                    });
            }
            "--json" => {
                json_path = it.next().or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            "--label" => {
                label = it.next().unwrap_or_else(|| {
                    eprintln!("--label needs a name");
                    std::process::exit(2);
                });
            }
            other if name.is_empty() => name = other.to_string(),
            other => {
                eprintln!("unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let h = Harness {
        scale,
        nodes_override,
        shards,
    };
    if name == "serve" {
        let cfg = serve::ServeConfig {
            threads: threads.unwrap_or_else(|| serve::ServeConfig::default().threads),
            queue_capacity,
            scale,
            pool_capacity: serve::ServeConfig::default().pool_capacity,
        };
        let summary = match &socket_path {
            Some(path) => serve::serve_socket(&cfg, path, once).unwrap_or_else(|e| {
                eprintln!("serve: socket {path}: {e}");
                std::process::exit(1);
            }),
            None => {
                let stdin = std::io::stdin();
                serve::serve(&cfg, stdin.lock(), std::io::stdout())
            }
        };
        if summary.cells_failed > 0 {
            eprintln!(
                "serve: {} of {} cells failed",
                summary.cells_failed,
                summary.cells_completed + summary.cells_failed
            );
            std::process::exit(1);
        }
        return;
    }
    if name == "micro" {
        // `micro --app` times complete simulations of the named
        // workloads instead of the data-structure suite.
        let results = if app_specs.is_empty() {
            micro::run_all()
        } else {
            resolve_apps(&app_specs, scale)
                .iter()
                .zip(&app_specs)
                .map(|(app, spec)| {
                    let nodes = app.preferred_nodes().unwrap_or_else(|| h.nodes(16));
                    micro::run_app_micro(spec, app.as_ref(), nodes, shards)
                })
                .collect()
        };
        print!("{}", micro::render(&results));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, micro::to_json(&results)) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        return;
    }
    if name == "check" {
        println!("== check: differential oracle vs full-map ground truth ==");
        let (reports, ok) = if app_specs.is_empty() {
            limitless_bench::run_check(h)
        } else {
            let apps = resolve_apps(&app_specs, scale);
            limitless_bench::run_check_apps(&apps, h.nodes(16), h.shards)
        };
        for r in &reports {
            let verdict = if r.passed { "PASS" } else { "FAIL" };
            if r.detail.is_empty() {
                println!("{verdict}  {:<8} x {}", r.app, r.protocol);
            } else {
                println!("{verdict}  {:<8} x {} — {}", r.app, r.protocol, r.detail);
            }
        }
        let failed = reports.iter().filter(|r| !r.passed).count();
        if ok {
            println!("all {} cells match ground truth", reports.len());
        } else {
            eprintln!(
                "{failed} of {} cells diverged from ground truth",
                reports.len()
            );
            std::process::exit(1);
        }
        return;
    }
    if name == "fuzz" {
        let cfg = fuzz::FuzzConfig {
            specs: fuzz_specs,
            shards,
            nodes: h.nodes(16),
            base_seed,
            quick: scale == Scale::Quick,
        };
        println!(
            "== fuzz: {} random synthetic workloads vs the oracle (seed {:#x}, {} lanes) ==",
            cfg.specs, cfg.base_seed, cfg.shards
        );
        let (verdicts, ok) = fuzz::run_fuzz(&cfg, |i, v| {
            let verdict = if v.passed { "PASS" } else { "FAIL" };
            println!("{verdict}  [{i:>3}] {} @ {} nodes", v.spec, v.nodes);
            for c in v.cells.iter().filter(|c| !c.passed) {
                println!("      {} — {}", c.protocol, c.detail);
            }
        });
        let failed = verdicts.iter().filter(|v| !v.passed).count();
        if ok {
            println!("all {} specs match ground truth", verdicts.len());
        } else {
            eprintln!(
                "{failed} of {} specs diverged from ground truth",
                verdicts.len()
            );
            std::process::exit(1);
        }
        return;
    }
    if name == "sweep" {
        // Oversubscribed lanes still produce bit-identical results,
        // but the wall clock stops meaning anything: more lanes than
        // cores just time the scheduler. One honest line, then run.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if shards > cores {
            eprintln!(
                "sweep: {shards} lanes on a {cores}-core host — results are \
                 bit-identical but wall clock measures contention, not speedup"
            );
        }
        // Capture micro medians for the ledger record *before* the
        // sweep: `perfgate` measures in a fresh process, so the
        // baseline must too (a 20-second sweep leaves the heap warm
        // enough to shift allocation-heavy micros by ~20%). Scaling
        // rungs pass --no-micro: their records must never become the
        // perfgate baseline (gate::baseline picks the last record
        // *with* medians).
        let micro_medians: Vec<(String, u64)> = if json_path.is_some() && !no_micro {
            micro::run_all()
                .iter()
                .map(|r| (r.name.clone(), r.median_ns()))
                .collect()
        } else {
            Vec::new()
        };
        let spec = if app_specs.is_empty() {
            ExperimentSpec::spectrum_grid(h)
        } else {
            ExperimentSpec::spectrum_grid_for(h, &app_specs).unwrap_or_else(|e| {
                eprintln!("--app: {e}");
                std::process::exit(2);
            })
        };
        let r = match threads {
            Some(t) => Runner::with_threads(t),
            None => Runner::default(),
        };
        let result = r.try_run_min_of(&spec, min_of).unwrap_or_else(|errors| {
            // Every failed cell with its identity — a 42-cell sweep
            // that loses one cell names it instead of aborting blind.
            for e in &errors {
                eprintln!("sweep: {e}");
            }
            eprintln!("sweep: {} cell(s) failed", errors.len());
            std::process::exit(1);
        });
        println!("== sweep ==");
        println!("{}", result.table().render());
        println!("{}", runner::throughput_line(&result));
        if let Some(path) = json_path {
            let mut ledger = limitless_bench::BenchLedger::load(&path).unwrap_or_else(|e| {
                eprintln!("cannot load ledger {path}: {e}");
                std::process::exit(1);
            });
            let mut rec = SweepRecord::from_result(&label, &result);
            // The pre-sweep micro medians give `perfgate` a committed
            // baseline to diff future PRs against.
            rec.micro_median_ns = micro_medians;
            ledger.upsert(rec);
            if let Err(e) = ledger.save(&path) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote record `{label}` (min of {min_of}) to {path}");
        }
        return;
    }
    if name == "perfgate" {
        let path = json_path.unwrap_or_else(|| "BENCH_sweep.json".to_string());
        // `load_existing`, not `load`: a typo'd --json path must turn
        // the gate red, not compare against a phantom empty ledger.
        let ledger = limitless_bench::BenchLedger::load_existing(&path).unwrap_or_else(|e| {
            eprintln!("perfgate: {e}");
            std::process::exit(1);
        });
        let Some(base) = gate::baseline(&ledger) else {
            // No usable baseline is a configuration error even under
            // --warn-only: a gate with nothing to compare against
            // guards nothing and must say so loudly.
            eprintln!(
                "perfgate: no record in {path} carries micro medians; \
                 record a baseline with `sweep --json {path}` first"
            );
            std::process::exit(1);
        };
        // A sharded baseline from a host with a different core budget
        // (or one that predates host metadata) cannot anchor an
        // enforcing comparison: warn instead of failing the build.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let warn_only = match gate::host_mismatch(base, cores) {
            Some(msg) => {
                eprintln!("perfgate: {msg}; demoting to warn-only");
                true
            }
            None => warn_only,
        };
        // A baseline recorded at a scaling-rung machine size (someone
        // ran `sweep --nodes 1024 --json` without --no-micro) is not
        // the workload the default gate sweep measures: advisory only.
        let warn_only = match gate::nodes_mismatch(base, h.nodes(64)) {
            Some(msg) => {
                eprintln!("perfgate: {msg}; demoting to warn-only");
                true
            }
            None => warn_only,
        };
        let mode = if warn_only { "warn-only" } else { "enforcing" };
        println!(
            "== perfgate: micro medians vs record `{}` ({mode}, ±15%) ==",
            base.label
        );
        let lines = gate::compare(base, &micro::run_all(), 0.15);
        for l in &lines {
            println!("{}", l.render());
        }
        let warned = lines.iter().filter(|l| l.warn).count();
        if warned == 0 {
            println!("perfgate: all {} benchmarks within tolerance", lines.len());
        } else if warn_only {
            // Advisory mode for noisy hosts: a drift is a flag for a
            // human, never a red build.
            println!(
                "perfgate: {warned} of {} benchmarks drifted beyond tolerance (warn-only)",
                lines.len()
            );
        } else {
            eprintln!(
                "perfgate: {warned} of {} benchmarks drifted beyond tolerance",
                lines.len()
            );
            std::process::exit(1);
        }
        return;
    }
    type Experiment = fn(Harness) -> Table;
    let all: Vec<(&str, Experiment)> = vec![
        ("table1", experiments::table1),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("ablation-localbit", experiments::ablation_localbit),
        ("ablation-network", experiments::ablation_network),
        ("ablation-handlers", experiments::ablation_handlers),
    ];
    if name == "all" {
        for (n, f) in &all {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        return;
    }
    match all.iter().find(|(n, _)| *n == name) {
        Some((n, f)) => {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        None => {
            eprintln!("unknown experiment `{name}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: limitless-bench <experiment|all> [--paper|--quick] [--nodes N]\n\
         \x20      limitless-bench sweep [--paper|--quick] [--nodes N] [--shards S]\n\
         \x20                            [--threads T] [--min-of N] [--json PATH] [--label L]\n\
         \x20                            [--no-micro] [--app SPEC ...]\n\
         \x20      limitless-bench micro [--json PATH] [--app SPEC ...]\n\
         \x20      limitless-bench check [--paper|--quick] [--nodes N] [--shards S] [--app SPEC ...]\n\
         \x20      limitless-bench fuzz [--specs N] [--shards S] [--nodes N] [--seed S] [--paper]\n\
         \x20      limitless-bench perfgate [--json PATH] [--warn-only]\n\
         \x20      limitless-bench serve [--threads T] [--queue CELLS] [--socket PATH] [--once]\n\
         app specs: `tsp`, `worker:ws=8`, `synth:seed=7,pattern=migratory,ws=6,rw=0.3` (DESIGN.md \u{a7}11)\n\
         serve jobs (NDJSON on stdin): {{\"id\": \"j\", \"apps\": [\"tsp\"], \"protocols\": [\"DirnH4SNB\"]}}\n\
         experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 \
         ablation-localbit ablation-network ablation-handlers sweep micro check fuzz perfgate serve"
    );
}
