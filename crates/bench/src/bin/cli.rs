//! `limitless-bench` — run any paper experiment from the command line.
//!
//! ```text
//! limitless-bench <experiment> [--paper] [--nodes N]
//! limitless-bench all [--paper]
//! limitless-bench sweep [--paper] [--nodes N] [--threads T]
//!                       [--min-of N] [--json PATH] [--label L]
//! limitless-bench micro [--json PATH]
//! limitless-bench check [--paper|--quick] [--nodes N]
//! ```
//!
//! Experiments: `table1 table2 table3 fig2 fig3 fig4 fig5 fig6
//! ablation-localbit ablation-network ablation-handlers`, plus two
//! performance probes:
//!
//! - `sweep` — the full protocol × application grid run through the
//!   threaded [`Runner`](limitless_bench::Runner), printing cycle
//!   counts and simulator throughput. `--min-of N` repeats the grid
//!   N times and keeps each cell's fastest wall time; `--json PATH`
//!   upserts the measurement into the labelled ledger at PATH
//!   (conventionally `BENCH_sweep.json` at the repo root), replacing
//!   any record with the same `--label` and keeping the rest.
//! - `micro` — data-structure micro-benchmarks, min/median over
//!   repeated batches; `--json PATH` writes the record for CI.
//!
//! There is also a correctness gate:
//!
//! - `check` — the differential oracle: every application × protocol
//!   cell runs with the coherence sanitizer fully armed and is diffed
//!   against full-map ground truth (final memory image + per-node read
//!   streams). Prints one PASS/FAIL line per cell; exits 1 on any
//!   failure.

use limitless_apps::Scale;
use limitless_bench::{experiments, micro, runner, ExperimentSpec, Harness, Runner, SweepRecord};
use limitless_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut scale = Scale::from_env();
    let mut nodes_override = None;
    let mut threads = None;
    let mut json_path = None;
    let mut min_of = 1u32;
    let mut label = "current".to_string();
    let mut name = String::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = Scale::Paper,
            "--quick" => scale = Scale::Quick,
            "--nodes" => {
                nodes_override = it.next().and_then(|n| n.parse().ok()).or_else(|| {
                    eprintln!("--nodes needs a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads = it.next().and_then(|n| n.parse::<usize>().ok()).or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--min-of" => {
                min_of = it
                    .next()
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--min-of needs a number >= 1");
                        std::process::exit(2);
                    });
            }
            "--json" => {
                json_path = it.next().or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            "--label" => {
                label = it.next().unwrap_or_else(|| {
                    eprintln!("--label needs a name");
                    std::process::exit(2);
                });
            }
            other if name.is_empty() => name = other.to_string(),
            other => {
                eprintln!("unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let h = Harness {
        scale,
        nodes_override,
    };
    if name == "micro" {
        let results = micro::run_all();
        print!("{}", micro::render(&results));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, micro::to_json(&results)) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        return;
    }
    if name == "check" {
        println!("== check: differential oracle vs full-map ground truth ==");
        let (reports, ok) = limitless_bench::run_check(h);
        for r in &reports {
            let verdict = if r.passed { "PASS" } else { "FAIL" };
            if r.detail.is_empty() {
                println!("{verdict}  {:<8} x {}", r.app, r.protocol);
            } else {
                println!("{verdict}  {:<8} x {} — {}", r.app, r.protocol, r.detail);
            }
        }
        let failed = reports.iter().filter(|r| !r.passed).count();
        if ok {
            println!("all {} cells match ground truth", reports.len());
        } else {
            eprintln!(
                "{failed} of {} cells diverged from ground truth",
                reports.len()
            );
            std::process::exit(1);
        }
        return;
    }
    if name == "sweep" {
        let spec = ExperimentSpec::spectrum_grid(h);
        let r = match threads {
            Some(t) => Runner::with_threads(t),
            None => Runner::default(),
        };
        let result = r.run_min_of(&spec, min_of);
        println!("== sweep ==");
        println!("{}", result.table().render());
        println!("{}", runner::throughput_line(&result));
        if let Some(path) = json_path {
            let mut ledger = limitless_bench::BenchLedger::load(&path).unwrap_or_else(|e| {
                eprintln!("cannot load ledger {path}: {e}");
                std::process::exit(1);
            });
            ledger.upsert(SweepRecord::from_result(&label, &result));
            if let Err(e) = ledger.save(&path) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote record `{label}` (min of {min_of}) to {path}");
        }
        return;
    }
    type Experiment = fn(Harness) -> Table;
    let all: Vec<(&str, Experiment)> = vec![
        ("table1", experiments::table1),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("ablation-localbit", experiments::ablation_localbit),
        ("ablation-network", experiments::ablation_network),
        ("ablation-handlers", experiments::ablation_handlers),
    ];
    if name == "all" {
        for (n, f) in &all {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        return;
    }
    match all.iter().find(|(n, _)| *n == name) {
        Some((n, f)) => {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        None => {
            eprintln!("unknown experiment `{name}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: limitless-bench <experiment|all> [--paper|--quick] [--nodes N]\n\
         \x20      limitless-bench sweep [--paper|--quick] [--nodes N] [--threads T]\n\
         \x20                            [--min-of N] [--json PATH] [--label L]\n\
         \x20      limitless-bench micro [--json PATH]\n\
         \x20      limitless-bench check [--paper|--quick] [--nodes N]\n\
         experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 \
         ablation-localbit ablation-network ablation-handlers sweep micro check"
    );
}
