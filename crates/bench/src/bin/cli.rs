//! `limitless-bench` — run any paper experiment from the command line.
//!
//! ```text
//! limitless-bench <experiment> [--paper] [--nodes N]
//! limitless-bench all [--paper]
//! limitless-bench sweep [--paper] [--nodes N] [--threads T] [--json PATH]
//! ```
//!
//! Experiments: `table1 table2 table3 fig2 fig3 fig4 fig5 fig6
//! ablation-localbit ablation-network ablation-handlers`, plus
//! `sweep` — the full protocol × application grid run through the
//! threaded [`Runner`](limitless_bench::Runner), printing cycle
//! counts, simulator throughput, and (with `--json`) the JSON
//! experiment record.

use limitless_apps::Scale;
use limitless_bench::{experiments, runner, ExperimentSpec, Harness, Runner};
use limitless_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut scale = Scale::from_env();
    let mut nodes_override = None;
    let mut threads = None;
    let mut json_path = None;
    let mut name = String::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = Scale::Paper,
            "--quick" => scale = Scale::Quick,
            "--nodes" => {
                nodes_override = it.next().and_then(|n| n.parse().ok()).or_else(|| {
                    eprintln!("--nodes needs a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads = it.next().and_then(|n| n.parse::<usize>().ok()).or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--json" => {
                json_path = it.next().or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            other if name.is_empty() => name = other.to_string(),
            other => {
                eprintln!("unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let h = Harness {
        scale,
        nodes_override,
    };
    if name == "sweep" {
        let spec = ExperimentSpec::spectrum_grid(h);
        let r = match threads {
            Some(t) => Runner::with_threads(t),
            None => Runner::default(),
        };
        let result = r.run(&spec);
        println!("== sweep ==");
        println!("{}", result.table().render());
        println!("{}", runner::throughput_line(&result));
        if let Some(path) = json_path {
            let json = result.to_export().to_json().unwrap_or_else(|e| {
                eprintln!("JSON export failed: {e}");
                std::process::exit(1);
            });
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        return;
    }
    type Experiment = fn(Harness) -> Table;
    let all: Vec<(&str, Experiment)> = vec![
        ("table1", experiments::table1),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("ablation-localbit", experiments::ablation_localbit),
        ("ablation-network", experiments::ablation_network),
        ("ablation-handlers", experiments::ablation_handlers),
    ];
    if name == "all" {
        for (n, f) in &all {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        return;
    }
    match all.iter().find(|(n, _)| *n == name) {
        Some((n, f)) => {
            println!("== {n} ==");
            println!("{}", f(h).render());
        }
        None => {
            eprintln!("unknown experiment `{name}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: limitless-bench <experiment|all> [--paper|--quick] [--nodes N]\n\
         \x20      limitless-bench sweep [--paper|--quick] [--nodes N] [--threads T] [--json PATH]\n\
         experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 \
         ablation-localbit ablation-network ablation-handlers sweep"
    );
}
