//! The fuzz campaign: random synthetic workloads against the full
//! coherence oracle.
//!
//! Each trial samples a random [`Synth`] spec from a *fixed* seed
//! range (trial `i` of a given base seed is the same spec on every
//! host, forever — failures reproduce by index), then runs it across
//! the whole Figure 2 protocol spectrum with the sanitizer fully
//! armed ([`CheckLevel::Full`] inside [`crate::check::capture`]) and
//! diffs every protocol against full-map ground truth. Random
//! scenarios become a standing correctness campaign: any sequential-
//! consistency violation, lost invalidation or trap-path bug that the
//! six paper applications happen not to trigger has unlimited chances
//! to show up here.
//!
//! [`CheckLevel::Full`]: limitless_core::CheckLevel

use limitless_apps::{App, Footprint, SharingPattern, Synth};
use limitless_sim::SplitMix64;

use crate::check::{check_app, CellReport};

/// The campaign's default base seed; trial `i` derives its spec from
/// `base_seed` and `i` alone.
pub const DEFAULT_BASE_SEED: u64 = 0xF0CC_5EED;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of random specs to sample and check.
    pub specs: usize,
    /// Event-lane count for every run (1 = serial reference engine).
    pub shards: usize,
    /// Machine size for specs that carry no `nodes` hint.
    pub nodes: usize,
    /// Base seed for the spec sampler.
    pub base_seed: u64,
    /// Quick mode keeps rounds and block counts CI-sized.
    pub quick: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            specs: 25,
            shards: 1,
            nodes: 16,
            base_seed: DEFAULT_BASE_SEED,
            quick: true,
        }
    }
}

/// One trial's outcome: the spec that ran and its per-protocol cells.
#[derive(Debug)]
pub struct SpecVerdict {
    /// Canonical spec string (feed back to `--app` to reproduce).
    pub spec: String,
    /// Machine size the trial ran at.
    pub nodes: usize,
    /// Per-protocol oracle cells.
    pub cells: Vec<CellReport>,
    /// Whether every cell matched ground truth.
    pub passed: bool,
}

/// Every eighth trial is a scale-out spec: see [`sample_spec`].
pub const SCALE_TRIAL_STRIDE: usize = 8;

/// Deterministically samples trial `index`'s synthetic workload. The
/// ranges deliberately straddle the interesting cliffs: worker sets
/// 1–8 around the five-pointer hardware boundary, all three sharing
/// patterns, sync densities up to 0.2 and occasional large code
/// footprints.
///
/// Every [`SCALE_TRIAL_STRIDE`]th trial instead samples a ≥512-node
/// wide-shared spec (the `nodes_hint` overrides the campaign's
/// machine size), so the word-parallel slab/record directory regimes
/// and the u16-id scale paths sit inside the standing campaign rather
/// than only in targeted tests. Those trials stay deliberately small
/// in blocks and rounds — a 512-node oracle cell already dwarfs a
/// 16-node one.
pub fn sample_spec(base_seed: u64, index: usize, quick: bool) -> Synth {
    let mut rng = SplitMix64::new(base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if index % SCALE_TRIAL_STRIDE == SCALE_TRIAL_STRIDE - 1 {
        // 512 exactly (the power-of-two rung) or an odd size just past
        // it, so presence-word seams get non-aligned machines too.
        let nodes = if rng.next_below(2) == 0 {
            512
        } else {
            513 + rng.next_below(63) as usize
        };
        // Worker sets far past every limited pointer capacity: every
        // protocol in the spectrum except full-map must trap.
        let ws = 12 + rng.next_below(21) as usize;
        return Synth {
            seed: rng.next_u64(),
            nodes_hint: Some(nodes),
            pattern: SharingPattern::WideShared,
            ws,
            jitter: rng.next_below(4) as usize,
            rw: 0.2 + rng.next_below(3) as f64 / 10.0,
            sync: 0.0,
            footprint: Footprint::None,
            blocks: 3 + rng.next_below(3) as usize,
            rounds: if quick { 2 } else { 3 },
        };
    }
    let pattern = SharingPattern::ALL[rng.next_below(3) as usize];
    let ws = 1 + rng.next_below(8) as usize;
    let jitter = rng.next_below(3) as usize;
    let rw = rng.next_below(7) as f64 / 10.0;
    let sync = rng.next_below(5) as f64 / 20.0;
    let footprint = match rng.next_below(4) {
        0 => Footprint::Small,
        1 => Footprint::Large,
        _ => Footprint::None,
    };
    let (blocks, rounds) = if quick {
        (
            8 + rng.next_below(25) as usize,
            3 + rng.next_below(4) as usize,
        )
    } else {
        (
            32 + rng.next_below(97) as usize,
            8 + rng.next_below(9) as usize,
        )
    };
    Synth {
        seed: rng.next_u64(),
        nodes_hint: None,
        pattern,
        ws,
        jitter,
        rw,
        sync,
        footprint,
        blocks,
        rounds,
    }
}

/// Runs the campaign, invoking `progress` after each trial (the CLI
/// prints a PASS/FAIL line; tests pass a no-op). Returns every verdict
/// and whether the whole campaign passed.
pub fn run_fuzz(
    cfg: &FuzzConfig,
    mut progress: impl FnMut(usize, &SpecVerdict),
) -> (Vec<SpecVerdict>, bool) {
    let mut verdicts = Vec::with_capacity(cfg.specs);
    let mut all_ok = true;
    for i in 0..cfg.specs {
        let synth = sample_spec(cfg.base_seed, i, cfg.quick);
        let nodes = synth.preferred_nodes().unwrap_or(cfg.nodes);
        let cells = check_app(&synth, nodes, cfg.shards);
        let passed = cells.iter().all(|c| c.passed);
        all_ok &= passed;
        let verdict = SpecVerdict {
            spec: synth.spec_string(),
            nodes,
            cells,
            passed,
        };
        progress(i, &verdict);
        verdicts.push(verdict);
    }
    (verdicts, all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_index() {
        for i in 0..20 {
            assert_eq!(
                sample_spec(DEFAULT_BASE_SEED, i, true),
                sample_spec(DEFAULT_BASE_SEED, i, true),
            );
        }
        assert_ne!(
            sample_spec(DEFAULT_BASE_SEED, 0, true),
            sample_spec(DEFAULT_BASE_SEED, 1, true),
        );
    }

    #[test]
    fn samples_cover_all_patterns_and_the_pointer_boundary() {
        let specs: Vec<Synth> = (0..40)
            .map(|i| sample_spec(DEFAULT_BASE_SEED, i, true))
            .collect();
        for pattern in SharingPattern::ALL {
            assert!(
                specs.iter().any(|s| s.pattern == pattern),
                "40 samples must include {pattern:?}"
            );
        }
        assert!(specs.iter().any(|s| s.ws <= 5), "within hardware pointers");
        assert!(specs.iter().any(|s| s.ws > 5), "beyond hardware pointers");
    }

    #[test]
    fn scale_trials_pin_the_big_machine_paths() {
        for i in [7usize, 15, 23] {
            let s = sample_spec(DEFAULT_BASE_SEED, i, true);
            let nodes = s.nodes_hint.expect("scale trials carry a machine size");
            assert!((512..=576).contains(&nodes), "index {i}: {nodes}");
            assert_eq!(s.pattern, SharingPattern::WideShared);
            assert!(s.ws > 8, "past every limited pointer capacity");
            assert!(s.blocks <= 8 && s.rounds <= 3, "stay campaign-sized");
        }
        // Non-scale indices still run at the campaign's machine size.
        assert_eq!(sample_spec(DEFAULT_BASE_SEED, 6, true).nodes_hint, None);
    }

    #[test]
    fn a_tiny_campaign_passes_the_oracle() {
        let cfg = FuzzConfig {
            specs: 2,
            nodes: 8,
            ..FuzzConfig::default()
        };
        let (verdicts, ok) = run_fuzz(&cfg, |_, _| {});
        assert_eq!(verdicts.len(), 2);
        assert!(ok, "{verdicts:?}");
    }
}
