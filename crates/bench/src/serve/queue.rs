//! The bounded cell queue between the intake thread and the worker
//! pool.
//!
//! Backpressure is reject-with-reason rather than blocking: a
//! long-running service that blocks its intake thread on a full queue
//! stops reading its input entirely, so a stuck worker would wedge the
//! whole session. Instead a job whose cells do not fit is refused
//! atomically — either every cell of the job is queued or none is, so
//! a rejected job never half-runs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a job was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue's fixed capacity, in cells.
    pub capacity: usize,
    /// Cells already queued when the job arrived.
    pub queued: usize,
    /// Cells the refused job would have added.
    pub requested: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue full: {} of {} cell slots in use, job needs {}",
            self.queued, self.capacity, self.requested
        )
    }
}

impl std::error::Error for QueueFull {}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with atomic
/// batch admission.
pub struct BoundedQueue<T> {
    inner: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy the instant it returns; for
    /// reporting only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy; reporting only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues the whole batch if the free space admits it, or
    /// rejects the whole batch — never a prefix. A batch larger than
    /// the entire capacity can therefore never be admitted; the
    /// rejection's fields make that legible to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the batch does not fit (the batch is
    /// dropped).
    pub fn try_push_all(&self, batch: Vec<T>) -> Result<(), QueueFull> {
        let mut state = self.lock();
        if state.items.len() + batch.len() > self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
                queued: state.items.len(),
                requested: batch.len(),
            });
        }
        state.items.extend(batch);
        drop(state);
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed *and* drained — workers exit on
    /// `None`, so every item admitted before [`BoundedQueue::close`]
    /// is still processed.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes intake: queued items still drain, then every blocked and
    /// future [`BoundedQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Workers catch cell panics, so poisoning is unreachable; if
        // it ever happens anyway the queue state itself is still
        // consistent (every mutation is a single push/pop).
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push_all(vec![1, 2, 3]).unwrap();
        let err = q.try_push_all(vec![4, 5]).unwrap_err();
        assert_eq!(
            err,
            QueueFull {
                capacity: 4,
                queued: 3,
                requested: 2
            }
        );
        // The rejected batch left no partial residue.
        assert_eq!(q.len(), 3);
        q.try_push_all(vec![4]).unwrap();
        assert_eq!(q.len(), 4);
        let msg = err.to_string();
        assert!(msg.contains("queue full"), "{msg}");
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push_all(vec![1, 2]).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        std::thread::scope(|s| {
            let consumer = s.spawn(|| q.pop());
            s.spawn(|| {
                // No ordering guarantee needed: pop blocks until the
                // push lands, whichever thread runs first.
                q.try_push_all(vec![7]).unwrap();
            });
            assert_eq!(consumer.join().unwrap(), Some(7));
        });
    }

    #[test]
    fn oversized_batch_never_fits() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        let err = q.try_push_all(vec![1, 2, 3]).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.capacity, 2);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push_all(vec![9]).unwrap();
        assert!(!q.is_empty());
    }
}
