//! The worker pool: pulls cells from the bounded queue, reuses
//! machines across cells of the same shape via [`Machine::reset`],
//! and streams one NDJSON line per completed cell plus a summary line
//! when a job's last cell lands.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use limitless_machine::Machine;
use limitless_stats::JsonValue;

use crate::runner::{run_cell_on, CellError, CellResult, ExperimentSpec};
use crate::serve::queue::BoundedQueue;

/// Shared per-job accounting; the worker that completes the last cell
/// emits the job-summary line.
pub(crate) struct JobState {
    /// The resolved grid every cell of the job indexes into.
    pub spec: ExperimentSpec,
    /// When the intake thread admitted the job (wall-clock anchor).
    pub accepted: Instant,
    /// Cells not yet finished; the 1→0 transition owns the summary.
    pub remaining: AtomicUsize,
    /// Cells that ended in a [`CellError`].
    pub failed: AtomicUsize,
    /// Cells that ran on a reset machine instead of a fresh build.
    pub reused: AtomicUsize,
    /// Summed queue latency (admission → dequeue) across cells.
    pub queue_ns: AtomicU64,
}

impl JobState {
    pub(crate) fn new(spec: ExperimentSpec) -> Self {
        let cells = spec.cells();
        JobState {
            spec,
            accepted: Instant::now(),
            remaining: AtomicUsize::new(cells),
            failed: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
            queue_ns: AtomicU64::new(0),
        }
    }
}

/// One queued unit of work: cell `index` of a job's grid.
pub(crate) struct CellJob {
    pub job: Arc<JobState>,
    pub index: usize,
    pub enqueued: Instant,
}

/// Service-wide counters, shared by every worker.
#[derive(Default)]
pub(crate) struct Counters {
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub reused: AtomicU64,
}

/// The key a machine can be reused under: same node count, same lane
/// count, same protocol — exactly the parameters `cfg_sharded` bakes
/// into the build.
type PoolKey = (usize, usize, limitless_core::ProtocolSpec);

/// A small per-worker cache of idle machines, keyed by shape. Workers
/// never share machines, so the pool needs no locking.
pub(crate) struct MachinePool {
    slots: Vec<(PoolKey, Machine)>,
    max: usize,
}

impl MachinePool {
    pub(crate) fn new(max: usize) -> Self {
        MachinePool {
            slots: Vec::new(),
            max: max.max(1),
        }
    }

    /// Removes and returns an idle machine of the given shape.
    fn take(&mut self, key: &PoolKey) -> Option<Machine> {
        let pos = self.slots.iter().position(|(k, _)| k == key)?;
        Some(self.slots.remove(pos).1)
    }

    /// Parks an idle machine, evicting the oldest resident when full.
    fn put(&mut self, key: PoolKey, machine: Machine) {
        if self.slots.len() == self.max {
            self.slots.remove(0);
        }
        self.slots.push((key, machine));
    }
}

/// Writes one line and flushes, so consumers see results as they
/// stream; write failures (consumer hung up) are ignored — the
/// simulation work is already done and accounted.
pub(crate) fn emit<W: Write>(out: &Mutex<W>, line: &str) {
    let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

fn f64_field(v: f64) -> JsonValue {
    JsonValue::from_f64(if v.is_finite() { v } else { 0.0 })
}

/// The NDJSON line for one finished cell.
fn cell_line(
    job_id: &str,
    outcome: &Result<CellResult, CellError>,
    queue_ms: f64,
    reused: bool,
) -> String {
    let mut fields = vec![
        ("type".to_string(), JsonValue::Str("cell".into())),
        ("job".to_string(), JsonValue::Str(job_id.to_string())),
    ];
    match outcome {
        Ok(c) => fields.extend([
            ("protocol".to_string(), JsonValue::Str(c.protocol.clone())),
            ("app".to_string(), JsonValue::Str(c.app.clone())),
            ("seed".to_string(), JsonValue::from_u64(c.seed)),
            (
                "cycles".to_string(),
                JsonValue::from_u64(c.report.cycles.as_u64()),
            ),
            ("events".to_string(), JsonValue::from_u64(c.report.events)),
            ("wall_seconds".to_string(), f64_field(c.report.wall_seconds)),
        ]),
        Err(e) => fields.extend([
            ("protocol".to_string(), JsonValue::Str(e.protocol.clone())),
            ("app".to_string(), JsonValue::Str(e.app.clone())),
            ("seed".to_string(), JsonValue::from_u64(e.seed)),
            ("error".to_string(), JsonValue::Str(e.message.clone())),
        ]),
    }
    fields.extend([
        ("queue_ms".to_string(), f64_field(queue_ms)),
        ("reused".to_string(), JsonValue::Bool(reused)),
    ]);
    JsonValue::Obj(fields).compact()
}

/// The NDJSON summary line a job's last cell triggers.
fn job_line(job: &JobState) -> String {
    let cells = job.spec.cells() as u64;
    let failed = job.failed.load(Ordering::Relaxed) as u64;
    let queue_ms_mean = if cells == 0 {
        0.0
    } else {
        job.queue_ns.load(Ordering::Relaxed) as f64 / 1.0e6 / cells as f64
    };
    JsonValue::Obj(vec![
        ("type".to_string(), JsonValue::Str("job".into())),
        ("job".to_string(), JsonValue::Str(job.spec.id.clone())),
        ("cells".to_string(), JsonValue::from_u64(cells)),
        ("failed".to_string(), JsonValue::from_u64(failed)),
        (
            "wall_seconds".to_string(),
            f64_field(job.accepted.elapsed().as_secs_f64()),
        ),
        ("queue_ms_mean".to_string(), f64_field(queue_ms_mean)),
        (
            "reused".to_string(),
            JsonValue::from_u64(job.reused.load(Ordering::Relaxed) as u64),
        ),
    ])
    .compact()
}

/// One worker: pull cells until the queue closes and drains. Machines
/// park in the per-worker pool after a successful cell; a cell that
/// errors abandons its machine mid-run, so that machine is dropped
/// rather than reset (reset on a torn machine has no identity
/// guarantee).
pub(crate) fn worker_loop<W: Write>(
    queue: &BoundedQueue<CellJob>,
    out: &Mutex<W>,
    counters: &Counters,
    pool_capacity: usize,
) {
    let mut pool = MachinePool::new(pool_capacity);
    while let Some(cell) = queue.pop() {
        let queue_ns = cell.enqueued.elapsed().as_nanos() as u64;
        let spec = &cell.job.spec;
        let protocol = spec.protocols[cell.index / spec.apps.len()].1;
        let key: PoolKey = (spec.nodes, spec.shards, protocol);
        let (mut machine, reused) = match pool.take(&key) {
            Some(mut m) => {
                m.reset();
                (m, true)
            }
            None => (
                Machine::new(crate::cfg_sharded(spec.nodes, protocol, spec.shards)),
                false,
            ),
        };
        let outcome = run_cell_on(spec, cell.index, &mut machine);
        if outcome.is_ok() {
            pool.put(key, machine);
        }

        cell.job.queue_ns.fetch_add(queue_ns, Ordering::Relaxed);
        if reused {
            cell.job.reused.fetch_add(1, Ordering::Relaxed);
            counters.reused.fetch_add(1, Ordering::Relaxed);
        }
        match &outcome {
            Ok(_) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                cell.job.failed.fetch_add(1, Ordering::Relaxed);
                counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        emit(
            out,
            &cell_line(&spec.id, &outcome, queue_ns as f64 / 1.0e6, reused),
        );
        // The 1→0 transition is unique, so exactly one worker emits
        // the job summary even when cells finish concurrently.
        if cell.job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            emit(out, &job_line(&cell.job));
        }
    }
}
