//! The persistent sweep service: `limitless-bench serve`.
//!
//! Jobs arrive as NDJSON lines (one experiment grid each — see
//! [`job::JobSpec`]) on stdin or a unix socket. The intake thread
//! validates each job completely at admission (malformed JSON,
//! unknown apps, unparseable protocols and impossible machine shapes
//! are all typed `reject` lines, never worker panics), expands it
//! into per-cell work items, and admits them atomically into a
//! bounded queue — a job that does not fit is rejected whole, with
//! the queue occupancy in the reason, so the client can resubmit.
//!
//! A fixed pool of workers drains the queue. Each worker parks idle
//! machines keyed by (nodes, shards, protocol) and revives them with
//! [`Machine::reset`] instead of rebuilding, which
//! `crates/machine/tests/prop_reset.rs` proves is bit-identical to a
//! fresh construction — so a served cell equals the same cell from
//! `Runner::run` exactly (same seed derivation, same config, same
//! machine state), whether or not its machine was recycled.
//!
//! Output is NDJSON too, one line per event:
//!
//! ```text
//! {"type":"cell","job":…,"protocol":…,"app":…,"seed":…,"cycles":…,
//!  "events":…,"wall_seconds":…,"queue_ms":…,"reused":…}   # or "error":…
//! {"type":"job","job":…,"cells":…,"failed":…,"wall_seconds":…,
//!  "queue_ms_mean":…,"reused":…}
//! {"type":"reject","job":…,"reason":…}
//! {"type":"served","jobs":…,"rejected":…,"malformed":…,"cells":…,
//!  "failed":…,"reused":…}
//! ```

pub mod job;
pub mod queue;
mod worker;

use std::io::{BufRead, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use limitless_apps::Scale;
#[allow(unused_imports)] // doc links
use limitless_machine::Machine;
use limitless_stats::JsonValue;

pub use job::JobSpec;
pub use queue::{BoundedQueue, QueueFull};

#[allow(unused_imports)] // doc links
use crate::Runner;
use worker::{CellJob, Counters, JobState};

/// Service knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker-thread count (0 is treated as 1).
    pub threads: usize,
    /// Queue capacity in cells; a job whose grid exceeds the free
    /// space is rejected whole.
    pub queue_capacity: usize,
    /// Problem-size scale for app resolution.
    pub scale: Scale,
    /// Idle machines each worker parks for reuse.
    pub pool_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            scale: Scale::Quick,
            pool_capacity: 4,
        }
    }
}

/// What one service session processed (also rendered as the final
/// `served` line of the stream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Well-formed jobs refused for lack of queue space.
    pub jobs_rejected: u64,
    /// Input lines that never became jobs (bad JSON, unknown app,
    /// unparseable protocol, impossible machine shape).
    pub lines_malformed: u64,
    /// Cells that completed successfully.
    pub cells_completed: u64,
    /// Cells that ended in a typed error.
    pub cells_failed: u64,
    /// Cells that ran on a reset machine instead of a fresh build.
    pub cells_reused: u64,
}

impl ServeSummary {
    fn line(&self, wall_seconds: f64) -> String {
        JsonValue::Obj(vec![
            ("type".to_string(), JsonValue::Str("served".into())),
            ("jobs".to_string(), JsonValue::from_u64(self.jobs_accepted)),
            (
                "rejected".to_string(),
                JsonValue::from_u64(self.jobs_rejected),
            ),
            (
                "malformed".to_string(),
                JsonValue::from_u64(self.lines_malformed),
            ),
            (
                "cells".to_string(),
                JsonValue::from_u64(self.cells_completed + self.cells_failed),
            ),
            ("failed".to_string(), JsonValue::from_u64(self.cells_failed)),
            ("reused".to_string(), JsonValue::from_u64(self.cells_reused)),
            (
                "wall_seconds".to_string(),
                JsonValue::from_f64(if wall_seconds.is_finite() {
                    wall_seconds
                } else {
                    0.0
                }),
            ),
        ])
        .compact()
    }
}

fn reject_line(job_id: Option<&str>, reason: &str) -> String {
    let mut fields = vec![("type".to_string(), JsonValue::Str("reject".into()))];
    if let Some(id) = job_id {
        fields.push(("job".to_string(), JsonValue::Str(id.to_string())));
    }
    fields.push(("reason".to_string(), JsonValue::Str(reason.to_string())));
    JsonValue::Obj(fields).compact()
}

/// Runs one service session: reads NDJSON jobs from `input` until
/// EOF, streams result lines to `output`, drains the queue, and
/// returns (after emitting) the session summary. Generic over the
/// streams so tests drive it in-process and the CLI wires stdin,
/// stdout, or a unix-socket connection.
pub fn serve<W: Write + Send>(cfg: &ServeConfig, input: impl BufRead, output: W) -> ServeSummary {
    let started = Instant::now();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queue: BoundedQueue<CellJob> = BoundedQueue::new(cfg.queue_capacity);
    let out = Mutex::new(output);
    let counters = Counters::default();
    let mut summary = ServeSummary::default();

    std::thread::scope(|s| {
        for _ in 0..cfg.threads.max(1) {
            s.spawn(|| worker::worker_loop(&queue, &out, &counters, cfg.pool_capacity));
        }
        for line in input.lines() {
            let Ok(line) = line else {
                break; // input stream died; drain and summarize
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let spec = match JobSpec::parse(line) {
                Ok(js) => js,
                Err(reason) => {
                    summary.lines_malformed += 1;
                    worker::emit(&out, &reject_line(None, &reason));
                    continue;
                }
            };
            let grid = match spec.to_experiment(cfg.scale) {
                Ok(grid) => grid,
                Err(reason) => {
                    summary.lines_malformed += 1;
                    worker::emit(&out, &reject_line(Some(&spec.id), &reason));
                    continue;
                }
            };
            // Oversubscribed jobs still complete bit-identically, but
            // their wall clock measures scheduler contention: say so
            // once per job (stderr, so the NDJSON stream stays clean).
            if grid.shards > host_cores {
                eprintln!(
                    "serve: job {} asks for {} lanes on a {host_cores}-core \
                     host; results are bit-identical but wall clock is not \
                     a speedup measurement",
                    spec.id, grid.shards
                );
            }
            let job = Arc::new(JobState::new(grid));
            let batch: Vec<CellJob> = (0..job.spec.cells())
                .map(|index| CellJob {
                    job: Arc::clone(&job),
                    index,
                    enqueued: Instant::now(),
                })
                .collect();
            match queue.try_push_all(batch) {
                Ok(()) => summary.jobs_accepted += 1,
                Err(full) => {
                    summary.jobs_rejected += 1;
                    worker::emit(&out, &reject_line(Some(&spec.id), &full.to_string()));
                }
            }
        }
        queue.close();
    });

    summary.cells_completed = counters.completed.load(Ordering::Relaxed);
    summary.cells_failed = counters.failed.load(Ordering::Relaxed);
    summary.cells_reused = counters.reused.load(Ordering::Relaxed);
    worker::emit(&out, &summary.line(started.elapsed().as_secs_f64()));
    summary
}

/// Serves sessions over a unix socket at `path`: connections are
/// accepted one at a time, each running a full [`serve`] session over
/// its stream (the socket file is removed and re-bound on startup).
/// With `once`, returns after the first session — the form tests and
/// CI use. Returns the summary of the last session served.
///
/// # Errors
///
/// Returns an error if the socket cannot be bound or a connection
/// cannot be accepted or cloned.
pub fn serve_socket(cfg: &ServeConfig, path: &str, once: bool) -> std::io::Result<ServeSummary> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let summary = serve(cfg, reader, stream);
        if once {
            let _ = std::fs::remove_file(path);
            return Ok(summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_session(cfg: &ServeConfig, input: &str) -> (ServeSummary, Vec<JsonValue>) {
        let mut out: Vec<u8> = Vec::new();
        let summary = serve(cfg, input.as_bytes(), &mut out);
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| JsonValue::parse(l).expect("every output line is JSON"))
            .collect();
        (summary, lines)
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            threads: 2,
            queue_capacity: 8,
            scale: Scale::Quick,
            pool_capacity: 4,
        }
    }

    #[test]
    fn session_streams_cells_job_summary_and_served_line() {
        let input = r#"{"id": "a", "apps": ["worker:ws=2"], "protocols": ["DirnH4SNB", "DirnHNBS-"], "nodes": 16}"#;
        let (summary, lines) = run_session(&small_cfg(), input);
        assert_eq!(summary.jobs_accepted, 1);
        assert_eq!(summary.cells_completed, 2);
        assert_eq!(summary.cells_failed, 0);

        let ty = |v: &JsonValue| v.get("type").unwrap().as_str().unwrap().to_string();
        let cells: Vec<_> = lines.iter().filter(|l| ty(l) == "cell").collect();
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.get("job").unwrap().as_str().unwrap(), "a");
            assert!(c.get("cycles").unwrap().as_u64().unwrap() > 0);
            assert!(c.get("queue_ms").unwrap().as_f64().is_ok());
        }
        let jobs: Vec<_> = lines.iter().filter(|l| ty(l) == "job").collect();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("cells").unwrap().as_u64().unwrap(), 2);
        assert_eq!(jobs[0].get("failed").unwrap().as_u64().unwrap(), 0);
        assert_eq!(ty(lines.last().unwrap()), "served");
    }

    #[test]
    fn malformed_lines_reject_with_reason_and_session_continues() {
        let input = "not json at all\n\
            {\"id\": \"bad\", \"apps\": [\"nosuchapp\"]}\n\
            {\"id\": \"ok\", \"apps\": [\"worker:ws=1\"], \"protocols\": [\"DirnHNBS-\"]}\n";
        let (summary, lines) = run_session(&small_cfg(), input);
        assert_eq!(summary.lines_malformed, 2);
        assert_eq!(summary.jobs_accepted, 1);
        assert_eq!(summary.cells_completed, 1);
        let rejects: Vec<_> = lines
            .iter()
            .filter(|l| l.get("type").unwrap().as_str().unwrap() == "reject")
            .collect();
        assert_eq!(rejects.len(), 2);
        assert!(rejects[1]
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("nosuchapp"));
        assert_eq!(rejects[1].get("job").unwrap().as_str().unwrap(), "bad");
    }

    #[test]
    fn oversized_job_is_rejected_whole_with_queue_reason() {
        // Queue of 4 cells cannot admit the 7-protocol default grid.
        let cfg = ServeConfig {
            queue_capacity: 4,
            ..small_cfg()
        };
        let input = r#"{"id": "big", "apps": ["worker:ws=1"]}"#;
        let (summary, lines) = run_session(&cfg, input);
        assert_eq!(summary.jobs_rejected, 1);
        assert_eq!(summary.jobs_accepted, 0);
        assert_eq!(summary.cells_completed, 0, "no partial admission");
        let reject = lines
            .iter()
            .find(|l| l.get("type").unwrap().as_str().unwrap() == "reject")
            .expect("a reject line");
        let reason = reject.get("reason").unwrap().as_str().unwrap();
        assert!(reason.contains("queue full"), "{reason}");
        assert!(reason.contains("needs 7"), "{reason}");
    }

    // Failed-cell streaming (per-cell `error` lines under a forced
    // event-limit panic) is covered by `tests/cli_exit.rs`, which sets
    // LIMITLESS_MAX_EVENTS on a child process — mutating the
    // environment inside this multi-threaded test binary would race
    // with every concurrently running simulation.

    #[test]
    fn machines_are_reused_across_same_shape_cells() {
        // One worker, two jobs with the same (nodes, shards, protocol)
        // shape: the second job's cell must run on a reset machine.
        let cfg = ServeConfig {
            threads: 1,
            queue_capacity: 8,
            scale: Scale::Quick,
            pool_capacity: 4,
        };
        let input =
            "{\"id\": \"j1\", \"apps\": [\"worker:ws=2\"], \"protocols\": [\"DirnH4SNB\"]}\n\
             {\"id\": \"j2\", \"apps\": [\"worker:ws=3\"], \"protocols\": [\"DirnH4SNB\"]}\n";
        let (summary, lines) = run_session(&cfg, input);
        assert_eq!(summary.cells_completed, 2);
        assert!(
            summary.cells_reused >= 1,
            "same-shape cells must recycle machines: {summary:?}"
        );
        let reused_cells = lines
            .iter()
            .filter(|l| l.get("type").unwrap().as_str().unwrap() == "cell")
            .filter(|l| matches!(l.get("reused").unwrap(), JsonValue::Bool(true)))
            .count();
        assert!(reused_cells >= 1, "no cell line carried reused:true");
    }

    #[test]
    fn socket_session_round_trips() {
        let path = std::env::temp_dir().join("limitless_serve_test.sock");
        let path = path.to_str().unwrap().to_string();
        let cfg = small_cfg();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_socket(&cfg, &path, true));
            // Wait for the socket to appear, then run one session.
            let mut tries = 0;
            let stream = loop {
                match std::os::unix::net::UnixStream::connect(&path) {
                    Ok(st) => break st,
                    Err(_) if tries < 200 => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(e) => panic!("cannot connect to {path}: {e}"),
                }
            };
            {
                let mut w = stream.try_clone().unwrap();
                use std::io::Write as _;
                let job = r#"{"id": "s", "apps": ["worker:ws=1"], "protocols": ["DirnHNBS-"]}"#;
                writeln!(w, "{job}").unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
            }
            let mut text = String::new();
            use std::io::Read as _;
            stream
                .try_clone()
                .unwrap()
                .read_to_string(&mut text)
                .unwrap();
            let summary = server.join().unwrap().unwrap();
            assert_eq!(summary.cells_completed, 1);
            assert!(
                text.lines().any(|l| l.contains("\"type\":\"cell\"")),
                "{text}"
            );
        });
    }
}
