//! Job parsing: one NDJSON object per line describes one experiment
//! grid.
//!
//! ```text
//! {"id": "night-1", "apps": ["tsp", "worker:ws=8"],
//!  "protocols": ["DirnH4SNB", "DirnHNBS-"],
//!  "nodes": 16, "shards": 1, "seed": 293150805}
//! ```
//!
//! `id` and a non-empty `apps` list are required. `protocols` defaults
//! to the full Figure-4 spectrum, `nodes` to 16, `shards` to 1 and
//! `seed` to the sweep grid's base seed, so the minimal job is
//! `{"id": "j", "apps": ["tsp"]}`. Every field is validated at accept
//! time — a malformed spec is a typed rejection on the stream, never a
//! panic inside a worker.

use limitless_apps::{registry, AppSpec, Scale};
use limitless_core::ProtocolSpec;
use limitless_machine::MachineConfig;
use limitless_stats::JsonValue;

use crate::runner::{AppFactory, ExperimentSpec};

/// The default base seed — the same constant the CLI sweep grid uses,
/// so a job with no `seed` field reproduces `sweep` cells exactly.
pub const DEFAULT_SEED: u64 = 0x11_71_1e_55;

/// One parsed (but not yet resolved) job request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Caller-chosen job id, echoed on every result line.
    pub id: String,
    /// Registry app specs (DESIGN.md §11), e.g. `tsp`, `worker:ws=8`.
    pub apps: Vec<String>,
    /// Protocol spec strings (`DirnH4SNB`, …); empty selects the full
    /// Figure-4 spectrum.
    pub protocols: Vec<String>,
    /// Machine size for every cell.
    pub nodes: usize,
    /// Event-lane count (1 = the serial reference engine).
    pub shards: usize,
    /// Base seed for the grid's per-cell seed derivation.
    pub seed: u64,
}

fn opt_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        Ok(n) => n
            .as_u64()
            .map_err(|e| format!("`{key}`: {e}"))
            .and_then(|n| usize::try_from(n).map_err(|_| format!("`{key}`: {n} out of range"))),
        Err(_) => Ok(default),
    }
}

impl JobSpec {
    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on malformed JSON or a missing
    /// or mistyped field — the text becomes the `reject` line's
    /// `reason`.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .map_err(|e| format!("`id`: {e}"))?
            .to_string();
        let apps = v
            .get("apps")
            .and_then(JsonValue::as_arr)
            .map_err(|e| format!("`apps`: {e}"))?
            .iter()
            .map(|a| a.as_str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("`apps`: {e}"))?;
        if apps.is_empty() {
            return Err("`apps`: needs at least one app spec".to_string());
        }
        let protocols = match v.get("protocols") {
            Ok(arr) => arr
                .as_arr()
                .map_err(|e| format!("`protocols`: {e}"))?
                .iter()
                .map(|p| p.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("`protocols`: {e}"))?,
            Err(_) => Vec::new(),
        };
        let seed = match v.get("seed") {
            Ok(n) => n.as_u64().map_err(|e| format!("`seed`: {e}"))?,
            Err(_) => DEFAULT_SEED,
        };
        Ok(JobSpec {
            id,
            apps,
            protocols,
            nodes: opt_usize(&v, "nodes", 16)?,
            shards: opt_usize(&v, "shards", 1)?,
            seed,
        })
    }

    /// Resolves the job into a runnable grid: protocols parse through
    /// [`ProtocolSpec`]'s canonical notation, apps through the
    /// registry, and the machine shape through the config validator —
    /// so every way a job can be unbuildable is caught here, at accept
    /// time.
    ///
    /// # Errors
    ///
    /// Returns the rejection reason for any unresolvable field.
    pub fn to_experiment(&self, scale: Scale) -> Result<ExperimentSpec, String> {
        let protocols: Vec<(String, ProtocolSpec)> = if self.protocols.is_empty() {
            crate::fig4_spectrum()
                .into_iter()
                .map(|(l, p)| (l.to_string(), p))
                .collect()
        } else {
            self.protocols
                .iter()
                .map(|s| {
                    s.parse::<ProtocolSpec>()
                        .map(|p| (s.clone(), p))
                        .map_err(|e| format!("protocol `{s}`: {e}"))
                })
                .collect::<Result<_, _>>()?
        };
        let mut apps: Vec<(String, AppFactory)> = Vec::with_capacity(self.apps.len());
        for raw in &self.apps {
            let parsed: AppSpec = raw.parse().map_err(|e| format!("app `{raw}`: {e}"))?;
            let app = registry::build(&parsed, scale).map_err(|e| format!("app `{raw}`: {e}"))?;
            let label = if parsed.params.is_empty() {
                app.name().to_string()
            } else {
                parsed.to_string()
            };
            let factory: AppFactory = Box::new(move |_seed| {
                registry::build(&parsed, scale).expect("spec validated at job admission")
            });
            apps.push((label, factory));
        }
        MachineConfig::builder()
            .nodes(self.nodes)
            .protocol(protocols[0].1)
            .victim_cache(true)
            .shards(self.shards)
            .try_build()
            .map_err(|e| format!("machine shape: {e}"))?;
        Ok(ExperimentSpec {
            id: self.id.clone(),
            nodes: self.nodes,
            protocols,
            apps,
            base_seed: self.seed,
            shards: self.shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_job_fills_defaults() {
        let j = JobSpec::parse(r#"{"id": "j1", "apps": ["tsp"]}"#).unwrap();
        assert_eq!(j.id, "j1");
        assert_eq!(j.apps, vec!["tsp"]);
        assert!(j.protocols.is_empty());
        assert_eq!(j.nodes, 16);
        assert_eq!(j.shards, 1);
        assert_eq!(j.seed, DEFAULT_SEED);
        let spec = j.to_experiment(Scale::Quick).unwrap();
        assert_eq!(spec.protocols.len(), 7, "defaults to the fig-4 spectrum");
        assert_eq!(spec.cells(), 7);
    }

    #[test]
    fn explicit_fields_are_honoured() {
        let j = JobSpec::parse(
            r#"{"id": "j2", "apps": ["worker:ws=4", "tsp"],
                "protocols": ["DirnH4SNB", "DirnHNBS-"],
                "nodes": 32, "shards": 2, "seed": 99}"#,
        )
        .unwrap();
        assert_eq!(j.nodes, 32);
        assert_eq!(j.shards, 2);
        assert_eq!(j.seed, 99);
        let spec = j.to_experiment(Scale::Quick).unwrap();
        assert_eq!(spec.cells(), 4);
        assert_eq!(spec.protocols[0].0, "DirnH4SNB");
        assert_eq!(
            spec.protocols[1].1,
            limitless_core::ProtocolSpec::full_map()
        );
    }

    #[test]
    fn malformed_lines_give_typed_reasons() {
        assert!(JobSpec::parse("not json").unwrap_err().contains("json"));
        let e = JobSpec::parse(r#"{"apps": ["tsp"]}"#).unwrap_err();
        assert!(e.contains("`id`"), "{e}");
        let e = JobSpec::parse(r#"{"id": "x", "apps": []}"#).unwrap_err();
        assert!(e.contains("at least one app"), "{e}");
        let e = JobSpec::parse(r#"{"id": "x", "apps": [3]}"#).unwrap_err();
        assert!(e.contains("`apps`"), "{e}");
    }

    #[test]
    fn unresolvable_jobs_are_rejected_at_admission() {
        let bad_app = JobSpec::parse(r#"{"id": "x", "apps": ["nosuchapp"]}"#).unwrap();
        let e = bad_app.to_experiment(Scale::Quick).unwrap_err();
        assert!(e.contains("nosuchapp"), "{e}");

        let bad_proto =
            JobSpec::parse(r#"{"id": "x", "apps": ["tsp"], "protocols": ["DirnH9QXZ"]}"#).unwrap();
        let e = bad_proto.to_experiment(Scale::Quick).unwrap_err();
        assert!(e.contains("DirnH9QXZ"), "{e}");

        let bad_nodes = JobSpec::parse(r#"{"id": "x", "apps": ["tsp"], "nodes": 0}"#).unwrap();
        let e = bad_nodes.to_experiment(Scale::Quick).unwrap_err();
        assert!(e.contains("machine shape"), "{e}");
    }

    #[test]
    fn default_seed_matches_the_cli_sweep_grid() {
        // A job with no explicit seed must reproduce `sweep` cells
        // bit-for-bit, which starts with the same base seed.
        let j = JobSpec::parse(r#"{"id": "j", "apps": ["tsp"]}"#).unwrap();
        let spec = j.to_experiment(Scale::Quick).unwrap();
        assert_eq!(spec.base_seed, 0x11_71_1e_55);
    }
}
