//! Micro-benchmarks of the core data structures — the
//! event-engine-overhead ablation called out in DESIGN.md §4.
//!
//! Timed with `std::time::Instant` (no external bench harness). Each
//! benchmark warms up briefly, then runs several independent batches
//! and reports the **min** and **median** ns/iter across batches: the
//! min is the least-noise estimate (what the hardware can do), the
//! median shows whether the min is an outlier. A single long mean —
//! what this harness used to report — mixes scheduler noise into the
//! number and makes cross-PR comparisons unstable.

use std::hint::black_box;
use std::time::Instant;

use limitless_cache::{CacheConfig, CacheSystem};
use limitless_core::{DirEngine, DirEvent, HandlerImpl, ProtocolSpec};
use limitless_machine::lane_sync::LaneSync;
use limitless_net::{MeshTopology, NetConfig, Network};
use limitless_sim::{BlockAddr, Cycle, EventQueue, NodeId};
use limitless_stats::JsonValue;

/// Batches per benchmark; the reported min/median are taken across
/// these. Odd so the median is a real sample.
pub const BATCHES: usize = 9;
/// Iterations per batch.
pub const ITERS: u32 = 2_000;
const WARMUP: u32 = 50;

/// One benchmark's timing: ns/iter for every batch, in run order.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Benchmark name, e.g. `event_queue_push_pop_1k`.
    pub name: String,
    /// ns/iter per batch (length [`BATCHES`]).
    pub batch_ns: Vec<u64>,
    /// Heap allocations per iteration, metered over one untimed batch.
    /// `None` unless built with `--features alloc-counter`.
    pub allocs_per_iter: Option<u64>,
}

impl MicroResult {
    /// Fastest batch — the least-noise estimate.
    pub fn min_ns(&self) -> u64 {
        self.batch_ns.iter().copied().min().unwrap_or(0)
    }

    /// Median batch — the stability check.
    pub fn median_ns(&self) -> u64 {
        let mut sorted = self.batch_ns.clone();
        sorted.sort_unstable();
        sorted.get(sorted.len() / 2).copied().unwrap_or(0)
    }
}

/// Allocations per iteration across one extra (untimed) batch, when
/// the `alloc-counter` feature is compiled in.
#[cfg(feature = "alloc-counter")]
fn meter_allocs<F: FnMut() -> R, R>(f: &mut F) -> Option<u64> {
    let before = crate::alloc_counter::allocations();
    for _ in 0..ITERS {
        black_box(f());
    }
    Some((crate::alloc_counter::allocations() - before) / u64::from(ITERS))
}

#[cfg(not(feature = "alloc-counter"))]
fn meter_allocs<F: FnMut() -> R, R>(_f: &mut F) -> Option<u64> {
    None
}

fn bench<F: FnMut() -> R, R>(name: &str, mut f: F) -> MicroResult {
    for _ in 0..WARMUP {
        black_box(f());
    }
    let batch_ns = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS {
                black_box(f());
            }
            u64::try_from(start.elapsed().as_nanos() / u128::from(ITERS)).unwrap_or(u64::MAX)
        })
        .collect();
    // Metered after the timed batches so the counter's (small)
    // overhead can never leak into the ns/iter numbers.
    let allocs_per_iter = meter_allocs(&mut f);
    MicroResult {
        name: name.to_string(),
        batch_ns,
        allocs_per_iter,
    }
}

fn bench_event_queue() -> MicroResult {
    bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(Cycle(i * 3 % 997), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        sum
    })
}

fn bench_network() -> MicroResult {
    let mut net = Network::new(MeshTopology::for_nodes(64), NetConfig::default());
    let mut t = Cycle::ZERO;
    bench("network_send_64node_mesh", || {
        t += 1u64;
        net.send(t, NodeId(3), NodeId(42), 4)
    })
}

fn bench_directory_engine() -> MicroResult {
    let mut e = DirEngine::new(
        NodeId(0),
        64,
        ProtocolSpec::limitless(5),
        HandlerImpl::FlexibleC,
    );
    let mut i = 0u16;
    let mut out = limitless_core::Outcome::default();
    bench("dir_engine_read_write_cycle", || {
        i = (i + 1) % 63;
        e.handle_into(
            BlockAddr(7),
            DirEvent::Read {
                from: NodeId(i + 1),
            },
            &mut out,
        );
        let r_sends = out.sends.len();
        e.handle_into(BlockAddr(7), DirEvent::Write { from: NodeId(63) }, &mut out);
        let w_sends = out.sends.len();
        for n in 1..64 {
            e.handle_into(BlockAddr(7), DirEvent::InvAck { from: NodeId(n) }, &mut out);
        }
        (r_sends, w_sends)
    })
}

/// The software-extension hot loop: every iteration overflows the
/// five-pointer hardware entry (ReadExtend trap draining the pointers
/// into the software directory), then writes through the overflowed
/// entry (WriteExtend trap transmitting software invalidations),
/// acknowledges them all, and writes the line back so the next
/// iteration starts from `Uncached`. Exercises the drain/record/
/// invalidate path that `dir_engine_read_write_cycle` (which stays
/// within hardware pointers on most events) barely touches.
fn bench_directory_engine_overflow() -> MicroResult {
    let mut e = DirEngine::new(
        NodeId(0),
        64,
        ProtocolSpec::limitless(5),
        HandlerImpl::FlexibleC,
    );
    let mut out = limitless_core::Outcome::default();
    bench("dir_engine_overflow_cycle", || {
        // Seven readers: the sixth overflows (ReadExtend trap), the
        // seventh lands in the freshly drained hardware pointers.
        for n in 1..=7u16 {
            e.handle_into(BlockAddr(9), DirEvent::Read { from: NodeId(n) }, &mut out);
        }
        // Write from an eighth node: WriteExtend trap, seven software
        // invalidations.
        e.handle_into(BlockAddr(9), DirEvent::Write { from: NodeId(8) }, &mut out);
        let sends = out.sends.len();
        for n in 1..=7u16 {
            e.handle_into(BlockAddr(9), DirEvent::InvAck { from: NodeId(n) }, &mut out);
        }
        // Owner evicts: back to Uncached for the next iteration.
        e.handle_into(
            BlockAddr(9),
            DirEvent::Writeback { from: NodeId(8) },
            &mut out,
        );
        sends
    })
}

/// One sharded-engine synchronization round trip at `lanes` lanes:
/// every lane computes its lookahead-bounded window end, publishes an
/// advanced floor through the seqlocked board, and one quiescent
/// snapshot (the double-pass stability read that proves a global
/// event floor) runs over the whole fabric. This is the per-round
/// coordination cost a lane pays on top of event execution — the
/// number the lookahead matrix and window batching exist to amortize.
fn bench_lane_sync(lanes: usize) -> MicroResult {
    let dist = (0..lanes * lanes)
        .map(|i| u64::from(i % (lanes + 1) != 0) * 10)
        .collect();
    let sync = LaneSync::new(lanes, dist);
    let mut scratch = Vec::with_capacity(lanes);
    let mut t = 0u64;
    bench(&format!("lane_sync_round_trip_s{lanes}"), move || {
        t += 1;
        let mut acc = 0u64;
        for lane in 0..lanes {
            acc = acc.wrapping_add(sync.window_end(lane));
            sync.publish(lane, t, t + 1, 0, t);
        }
        let q = sync.try_quiescent_min(&mut scratch);
        acc.wrapping_add(q.map_or(0, |q| q.global_min))
    })
}

fn bench_cache() -> MicroResult {
    let mut cache = CacheSystem::new(CacheConfig::alewife_with_victim());
    let mut i = 0u64;
    bench("cache_read_write_mix", || {
        i += 1;
        let blk = BlockAddr(i % 8192);
        let r = cache.read(blk);
        cache.fill_shared(blk);
        r
    })
}

/// Batches for the end-to-end application micro (full simulations are
/// orders of magnitude longer than the data-structure micros, so
/// fewer samples suffice).
pub const APP_BATCHES: usize = 5;

/// End-to-end application micro — the `micro --app <spec>` path: wall
/// time of a complete simulation of `app` under `DirnH5SNB` with
/// victim caching, one full run per batch. The simulated outputs are
/// asserted identical across batches, so the spread is pure host
/// noise.
pub fn run_app_micro(
    label: &str,
    app: &dyn limitless_apps::App,
    nodes: usize,
    shards: usize,
) -> MicroResult {
    let cfg = || crate::cfg_sharded(nodes, ProtocolSpec::limitless(5), shards);
    let reference = limitless_apps::run_app(app, cfg());
    let mut batch_ns = Vec::with_capacity(APP_BATCHES);
    for _ in 0..APP_BATCHES {
        let t = Instant::now();
        let r = limitless_apps::run_app(app, cfg());
        batch_ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(
            (r.cycles, r.events),
            (reference.cycles, reference.events),
            "application runs must be deterministic"
        );
    }
    MicroResult {
        name: format!("app[{label}]"),
        batch_ns,
        allocs_per_iter: None,
    }
}

/// Runs every micro-benchmark and returns the batch timings.
pub fn run_all() -> Vec<MicroResult> {
    vec![
        bench_event_queue(),
        bench_network(),
        bench_directory_engine(),
        bench_directory_engine_overflow(),
        bench_cache(),
        bench_lane_sync(2),
        bench_lane_sync(4),
    ]
}

/// Renders the results as the human-readable table the bench target
/// prints.
pub fn render(results: &[MicroResult]) -> String {
    let allocs = results.iter().any(|r| r.allocs_per_iter.is_some());
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>10} {:>10}",
        "benchmark", "min ns", "median ns"
    ));
    if allocs {
        out.push_str(&format!(" {:>12}", "allocs/iter"));
    }
    out.push_str(&format!("   ({BATCHES} batches x {ITERS} iters)\n"));
    for r in results {
        out.push_str(&format!(
            "{:<32} {:>10} {:>10}",
            r.name,
            r.min_ns(),
            r.median_ns()
        ));
        if allocs {
            match r.allocs_per_iter {
                Some(n) => out.push_str(&format!(" {n:>12}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Serializes the results as a JSON record for CI artifacts: one
/// entry per benchmark with min/median and the raw batch samples.
pub fn to_json(results: &[MicroResult]) -> String {
    let entries = results
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name".into(), JsonValue::Str(r.name.clone())),
                ("min_ns".into(), JsonValue::from_u64(r.min_ns())),
                ("median_ns".into(), JsonValue::from_u64(r.median_ns())),
                (
                    "batch_ns".into(),
                    JsonValue::Arr(r.batch_ns.iter().map(|&n| JsonValue::from_u64(n)).collect()),
                ),
            ];
            if let Some(n) = r.allocs_per_iter {
                fields.push(("allocs_per_iter".into(), JsonValue::from_u64(n)));
            }
            JsonValue::Obj(fields)
        })
        .collect();
    let doc = JsonValue::Obj(vec![
        ("batches".into(), JsonValue::from_u64(BATCHES as u64)),
        ("iters".into(), JsonValue::from_u64(u64::from(ITERS))),
        ("benchmarks".into(), JsonValue::Arr(entries)),
    ]);
    doc.pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_and_median_come_from_the_batches() {
        let r = MicroResult {
            name: "x".into(),
            batch_ns: vec![30, 10, 20, 50, 40],
            allocs_per_iter: None,
        };
        assert_eq!(r.min_ns(), 10);
        assert_eq!(r.median_ns(), 30);
    }

    #[test]
    fn json_record_is_parseable() {
        let r = MicroResult {
            name: "q".into(),
            batch_ns: vec![5, 7, 6],
            allocs_per_iter: None,
        };
        let doc = JsonValue::parse(&to_json(&[r])).unwrap();
        let benches = doc.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("min_ns").unwrap().as_u64().unwrap(), 5);
        assert_eq!(benches[0].get("median_ns").unwrap().as_u64().unwrap(), 6);
        assert!(benches[0].get("allocs_per_iter").is_err());
    }

    #[test]
    fn alloc_counts_appear_in_json_and_table_when_metered() {
        let r = MicroResult {
            name: "q".into(),
            batch_ns: vec![5, 7, 6],
            allocs_per_iter: Some(12),
        };
        let doc = JsonValue::parse(&to_json(std::slice::from_ref(&r))).unwrap();
        let benches = doc.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(
            benches[0].get("allocs_per_iter").unwrap().as_u64().unwrap(),
            12
        );
        let table = render(&[r]);
        assert!(table.contains("allocs/iter"), "{table}");
    }

    /// With the counting allocator compiled in, the real benchmarks
    /// must report their allocation pressure — and the event-queue
    /// benchmark, which builds a fresh 1k-event queue every iteration,
    /// must see a nonzero count.
    #[cfg(feature = "alloc-counter")]
    #[test]
    fn event_queue_benchmark_meters_allocations() {
        let r = bench_event_queue();
        let allocs = r.allocs_per_iter.expect("feature is on");
        assert!(allocs > 0, "queue construction must allocate");
    }

    /// The steady-state benchmarks — directory engine (both the
    /// in-hardware and the trap-heavy overflow cycle), network, cache,
    /// and the lane-sync round trip (whose snapshot scratch is
    /// reserved once) — reuse their arenas, pools and inline send
    /// buffers across iterations, so after warm-up they must make
    /// *zero* heap allocations per iteration. The overflow cycle is the strictest
    /// case: every iteration drains pointers into the software
    /// directory, composes two trap bills, and spills a seven-message
    /// invalidation burst, all of which must come from reused storage.
    /// (The event-queue benchmark is the deliberate exception above:
    /// it builds a fresh 1k-event queue every iteration.)
    #[cfg(feature = "alloc-counter")]
    #[test]
    fn steady_state_benchmarks_are_allocation_free() {
        for r in [
            bench_network(),
            bench_directory_engine(),
            bench_directory_engine_overflow(),
            bench_cache(),
            bench_lane_sync(2),
            bench_lane_sync(4),
        ] {
            let allocs = r.allocs_per_iter.expect("feature is on");
            assert_eq!(
                allocs, 0,
                "{} allocated {allocs} times per steady-state iteration",
                r.name
            );
        }
    }
}
