//! The differential oracle: every application × protocol cell replayed
//! against full-map ground truth.
//!
//! The paper's correctness claim is that every protocol in the
//! `Dir_i H_X S_{Y,A}` spectrum implements the *same* memory model —
//! sequential consistency over the shared address space — at different
//! cost. The oracle tests exactly that: run each application under
//! `Dir_n H_NB S_-` (the full-map directory, all-hardware, the
//! simplest and most-trusted protocol) to produce ground truth, then
//! replay the identical per-node programs under every other protocol
//! and assert that
//!
//! 1. the **final memory image** (every word ever written, by address)
//!    is identical, and
//! 2. each node's **read stream** — the `(address, value)` sequence of
//!    its completed plain reads, in program order — is identical.
//!
//! Read-modify-write old-values are excluded by construction (they are
//! recorded as writes): atomic-add interleavings legitimately differ
//! across protocols. Plain reads inside an application's declared
//! [`App::racy_read_ranges`] are value-masked (address sequence still
//! compared): MP3D's unlocked cell updates race by design, exactly as
//! in the paper. All other plain reads are barrier-ordered and
//! therefore protocol-independent.
//!
//! Every cell runs under [`CheckLevel::Full`], so the per-event
//! invariant layer, the copy registry, the inv/ack ledger and the
//! quiesce audit are all armed as well.

use limitless_apps::{run_app_with_machine, App};
use limitless_core::{CheckLevel, ProtocolSpec};
use limitless_machine::MachineConfig;
use limitless_sim::Addr;

use crate::{applications, fig2_protocols, Harness};

/// Post-run artifacts captured from one cell.
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// Final shared-memory image, sorted by address.
    pub image: Vec<(Addr, u64)>,
    /// Per-node plain-read streams in program order.
    pub reads: Vec<Vec<(Addr, u64)>>,
}

/// The verdict for one application × protocol cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Application name (Table 3 spelling).
    pub app: String,
    /// Protocol display label.
    pub protocol: String,
    /// Whether the cell matched ground truth.
    pub passed: bool,
    /// First mismatch found, empty when passed.
    pub detail: String,
}

/// Runs `app` under `protocol` with the sanitizer fully armed and
/// captures the oracle artifacts. Read values inside the app's
/// declared racy ranges are masked to zero — the read addresses stay
/// in the stream, so ordering and coverage are still compared.
pub fn capture(app: &dyn App, nodes: usize, protocol: ProtocolSpec, shards: usize) -> Artifacts {
    let cfg = MachineConfig::builder()
        .nodes(nodes)
        .protocol(protocol)
        .victim_cache(true)
        .check_level(CheckLevel::Full)
        .shards(shards)
        .build();
    let (_, m) = run_app_with_machine(app, cfg);
    let racy = app.racy_read_ranges();
    let masked = |a: Addr| racy.iter().any(|&(lo, hi)| a.0 >= lo.0 && a.0 < hi.0);
    Artifacts {
        image: m.memory_image(),
        reads: m
            .read_streams()
            .expect("CheckLevel::Full records read streams")
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&(a, v)| if masked(a) { (a, 0) } else { (a, v) })
                    .collect()
            })
            .collect(),
    }
}

/// Compares a candidate cell against ground truth, returning the first
/// mismatch found.
pub fn diff(baseline: &Artifacts, candidate: &Artifacts) -> Option<String> {
    if baseline.image != candidate.image {
        for (b, c) in baseline.image.iter().zip(candidate.image.iter()) {
            if b != c {
                return Some(format!(
                    "memory image diverges at {}: expected {}, got {} (at {})",
                    b.0, b.1, c.1, c.0
                ));
            }
        }
        return Some(format!(
            "memory image has {} words, ground truth has {}",
            candidate.image.len(),
            baseline.image.len()
        ));
    }
    for (n, (b, c)) in baseline
        .reads
        .iter()
        .zip(candidate.reads.iter())
        .enumerate()
    {
        if b != c {
            for (i, (bb, cc)) in b.iter().zip(c.iter()).enumerate() {
                if bb != cc {
                    return Some(format!(
                        "node {n} read #{i} diverges: expected {} = {}, got {} = {}",
                        bb.0, bb.1, cc.0, cc.1
                    ));
                }
            }
            return Some(format!(
                "node {n} completed {} reads, ground truth has {}",
                c.len(),
                b.len()
            ));
        }
    }
    None
}

/// Checks one application across the full Figure 2 protocol set
/// against its full-map ground truth.
pub fn check_app(app: &dyn App, nodes: usize, shards: usize) -> Vec<CellReport> {
    let baseline = capture(app, nodes, ProtocolSpec::full_map(), shards);
    fig2_protocols()
        .into_iter()
        .map(|(label, p)| {
            let candidate = capture(app, nodes, p, shards);
            let mismatch = diff(&baseline, &candidate);
            CellReport {
                app: app.name().to_string(),
                protocol: label.to_string(),
                passed: mismatch.is_none(),
                detail: mismatch.unwrap_or_default(),
            }
        })
        .collect()
}

/// Runs the oracle grid over an explicit application list — the
/// `--app` filter path. Every app × every Figure 2 protocol; returns
/// the per-cell reports and whether all passed.
pub fn run_check_apps(
    apps: &[Box<dyn App>],
    nodes: usize,
    shards: usize,
) -> (Vec<CellReport>, bool) {
    let mut reports = Vec::new();
    for app in apps {
        reports.extend(check_app(app.as_ref(), nodes, shards));
    }
    let ok = reports.iter().all(|r| r.passed);
    (reports, ok)
}

/// Runs the whole oracle grid: every Figure 4 application (resolved
/// through the app registry) × every Figure 2 protocol. Returns the
/// per-cell reports and whether all passed.
pub fn run_check(h: Harness) -> (Vec<CellReport>, bool) {
    run_check_apps(&applications(h.scale), h.nodes(16), h.shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arts(image: Vec<(Addr, u64)>, reads: Vec<Vec<(Addr, u64)>>) -> Artifacts {
        Artifacts { image, reads }
    }

    #[test]
    fn identical_artifacts_match() {
        let a = arts(vec![(Addr(8), 1)], vec![vec![(Addr(8), 1)]]);
        assert_eq!(diff(&a, &a.clone()), None);
    }

    #[test]
    fn image_divergence_is_pinpointed() {
        let a = arts(vec![(Addr(8), 1), (Addr(16), 2)], vec![]);
        let b = arts(vec![(Addr(8), 1), (Addr(16), 3)], vec![]);
        let msg = diff(&a, &b).unwrap();
        assert!(msg.contains("expected 2, got 3"), "{msg}");
    }

    #[test]
    fn read_stream_divergence_names_the_node() {
        let img = vec![(Addr(8), 1)];
        let a = arts(img.clone(), vec![vec![], vec![(Addr(8), 1)]]);
        let b = arts(img, vec![vec![], vec![(Addr(8), 9)]]);
        let msg = diff(&a, &b).unwrap();
        assert!(msg.starts_with("node 1 read #0"), "{msg}");
    }

    #[test]
    fn missing_reads_are_reported() {
        let img = vec![(Addr(8), 1)];
        let a = arts(img.clone(), vec![vec![(Addr(8), 1), (Addr(8), 1)]]);
        let b = arts(img, vec![vec![(Addr(8), 1)]]);
        let msg = diff(&a, &b).unwrap();
        assert!(
            msg.contains("completed 1 reads, ground truth has 2"),
            "{msg}"
        );
    }
}
