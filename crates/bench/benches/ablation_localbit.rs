//! Regenerates the paper experiment `ablation_localbit` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench ablation_localbit`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::ablation_localbit(h);
    println!("== ablation_localbit ==");
    println!("{}", t.render());
}
