//! Regenerates the paper experiment `table2` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench table2_breakdown`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::table2(h);
    println!("== table2_breakdown ==");
    println!("{}", t.render());
}
