//! Regenerates the paper experiment `table3` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench table3_apps`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::table3(h);
    println!("== table3_apps ==");
    println!("{}", t.render());
}
