//! Regenerates the network-latency sensitivity ablation (DESIGN.md §4).
//! Run with `cargo bench -p limitless-bench --bench ablation_network`.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::ablation_network(h);
    println!("== ablation_network ==");
    println!("{}", t.render());
}
