//! Criterion micro-benchmarks of the core data structures — the
//! event-engine-overhead ablation called out in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion};
use limitless_core::{DirEngine, DirEvent, HandlerImpl, ProtocolSpec};
use limitless_net::{MeshTopology, NetConfig, Network};
use limitless_sim::{BlockAddr, Cycle, EventQueue, NodeId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Cycle(i * 3 % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_send_64node_mesh", |b| {
        let mut net = Network::new(MeshTopology::for_nodes(64), NetConfig::default());
        let mut t = Cycle::ZERO;
        b.iter(|| {
            t += 1u64;
            net.send(t, NodeId(3), NodeId(42), 4)
        })
    });
}

fn bench_directory_engine(c: &mut Criterion) {
    c.bench_function("dir_engine_read_write_cycle", |b| {
        let mut e = DirEngine::new(
            NodeId(0),
            64,
            ProtocolSpec::limitless(5),
            HandlerImpl::FlexibleC,
        );
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 63;
            let out = e.handle(BlockAddr(7), DirEvent::Read { from: NodeId(i + 1) });
            let w = e.handle(BlockAddr(7), DirEvent::Write { from: NodeId(63) });
            for n in 1..64 {
                let _ = e.handle(BlockAddr(7), DirEvent::InvAck { from: NodeId(n) });
            }
            (out.sends.len(), w.sends.len())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    use limitless_cache::{CacheConfig, CacheSystem};
    c.bench_function("cache_read_write_mix", |b| {
        let mut cache = CacheSystem::new(CacheConfig::alewife_with_victim());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let blk = BlockAddr(i % 8192);
            let r = cache.read(blk);
            cache.fill_shared(blk);
            r
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_network,
    bench_directory_engine,
    bench_cache
);
criterion_main!(benches);
