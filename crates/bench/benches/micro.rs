//! Micro-benchmarks of the core data structures — the
//! event-engine-overhead ablation called out in DESIGN.md §4.
//!
//! Thin wrapper around [`limitless_bench::micro`], which reports
//! min/median ns/iter over repeated batches so queue numbers are
//! stable enough to compare across PRs. Also available as
//! `limitless-bench micro [--json PATH]` for CI records.

fn main() {
    let results = limitless_bench::micro::run_all();
    print!("{}", limitless_bench::micro::render(&results));
}
