//! Micro-benchmarks of the core data structures — the
//! event-engine-overhead ablation called out in DESIGN.md §4.
//!
//! Timed with `std::time::Instant` (no external bench harness): each
//! benchmark warms up briefly, then reports ns/iter over a fixed batch.

use std::hint::black_box;
use std::time::Instant;

use limitless_core::{DirEngine, DirEvent, HandlerImpl, ProtocolSpec};
use limitless_net::{MeshTopology, NetConfig, Network};
use limitless_sim::{BlockAddr, Cycle, EventQueue, NodeId};

fn bench<F: FnMut() -> R, R>(name: &str, mut f: F) {
    const WARMUP: u32 = 50;
    const ITERS: u32 = 2_000;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() / u128::from(ITERS);
    println!("{name:<32} {per_iter:>10} ns/iter  ({ITERS} iters)");
}

fn bench_event_queue() {
    bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(Cycle(i * 3 % 997), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        sum
    });
}

fn bench_network() {
    let mut net = Network::new(MeshTopology::for_nodes(64), NetConfig::default());
    let mut t = Cycle::ZERO;
    bench("network_send_64node_mesh", || {
        t += 1u64;
        net.send(t, NodeId(3), NodeId(42), 4)
    });
}

fn bench_directory_engine() {
    let mut e = DirEngine::new(
        NodeId(0),
        64,
        ProtocolSpec::limitless(5),
        HandlerImpl::FlexibleC,
    );
    let mut i = 0u16;
    bench("dir_engine_read_write_cycle", || {
        i = (i + 1) % 63;
        let out = e.handle(
            BlockAddr(7),
            DirEvent::Read {
                from: NodeId(i + 1),
            },
        );
        let w = e.handle(BlockAddr(7), DirEvent::Write { from: NodeId(63) });
        for n in 1..64 {
            let _ = e.handle(BlockAddr(7), DirEvent::InvAck { from: NodeId(n) });
        }
        (out.sends.len(), w.sends.len())
    });
}

fn bench_cache() {
    use limitless_cache::{CacheConfig, CacheSystem};
    let mut cache = CacheSystem::new(CacheConfig::alewife_with_victim());
    let mut i = 0u64;
    bench("cache_read_write_mix", || {
        i += 1;
        let blk = BlockAddr(i % 8192);
        let r = cache.read(blk);
        cache.fill_shared(blk);
        r
    });
}

fn main() {
    bench_event_queue();
    bench_network();
    bench_directory_engine();
    bench_cache();
}
