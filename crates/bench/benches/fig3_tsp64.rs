//! Regenerates the paper experiment `fig3` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench fig3_tsp64`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::fig3(h);
    println!("== fig3_tsp64 ==");
    println!("{}", t.render());
}
