//! Regenerates the paper experiment `fig4` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench fig4_apps`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::fig4(h);
    println!("== fig4_apps ==");
    println!("{}", t.render());
}
