//! Regenerates the paper experiment `fig2` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench fig2_worker`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::fig2(h);
    println!("== fig2_worker ==");
    println!("{}", t.render());
}
