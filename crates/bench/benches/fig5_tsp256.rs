//! Regenerates the paper experiment `fig5` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench fig5_tsp256`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::fig5(h);
    println!("== fig5_tsp256 ==");
    println!("{}", t.render());
}
