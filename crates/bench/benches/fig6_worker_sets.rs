//! Regenerates the paper experiment `fig6` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench fig6_worker_sets`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    println!("== fig6_worker_sets ==");
    println!("{}", experiments::fig6_chart(h));
}
