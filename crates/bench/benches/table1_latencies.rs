//! Regenerates the paper experiment `table1` (see DESIGN.md §3).
//! Run with `cargo bench -p limitless-bench --bench table1_latencies`;
//! set `LIMITLESS_SCALE=paper` for full problem sizes.

use limitless_bench::experiments;
use limitless_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let t = experiments::table1(h);
    println!("== table1_latencies ==");
    println!("{}", t.render());
}
