//! Service-mode smoke: one in-process `serve` session processes a
//! 50+-cell batch — with a malformed line and a deterministic
//! full-queue rejection in the middle — and every streamed cell is
//! bit-identical to the same cell from `Runner::run`. This is the
//! end-to-end form of the reuse-identity argument: the service path
//! (admission → queue → worker pool → machine reuse via
//! `Machine::reset`) must be observationally indistinguishable from
//! the one-shot sweep path.

use std::collections::HashMap;

use limitless_apps::Scale;
use limitless_bench::serve::{serve, JobSpec};
use limitless_bench::{Runner, ServeConfig, ServeSummary};
use limitless_stats::JsonValue;

/// Eight one-app jobs over the default 7-protocol spectrum: 56 cells.
fn job_lines() -> Vec<String> {
    (1..=8)
        .map(|ws| format!(r#"{{"id": "ws{ws}", "apps": ["worker:ws={ws}"], "nodes": 16}}"#))
        .collect()
}

fn run_session(cfg: &ServeConfig, input: &str) -> (ServeSummary, Vec<JsonValue>) {
    let mut out: Vec<u8> = Vec::new();
    let summary = serve(cfg, input.as_bytes(), &mut out);
    let lines = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| JsonValue::parse(l).expect("every output line is JSON"))
        .collect();
    (summary, lines)
}

#[test]
fn served_batch_is_bit_identical_to_runner_run() {
    let jobs = job_lines();
    let mut input = String::new();
    input.push_str(&jobs[..4].join("\n"));
    // A line that is not a job, mid-stream.
    input.push_str("\n{\"apps\": [\"worker:ws=1\"]}\n");
    // A job whose 70-cell grid exceeds the queue outright — rejected
    // whole no matter how far the workers have drained.
    input.push_str(
        r#"{"id": "toobig", "apps": ["worker:ws=1", "worker:ws=2", "worker:ws=3", "worker:ws=4", "worker:ws=5", "worker:ws=6", "worker:ws=7", "worker:ws=8", "worker:ws=9", "worker:ws=10"]}"#,
    );
    input.push('\n');
    input.push_str(&jobs[4..].join("\n"));
    input.push('\n');

    let cfg = ServeConfig {
        threads: 4,
        queue_capacity: 64,
        scale: Scale::Quick,
        pool_capacity: 4,
    };
    let (summary, lines) = run_session(&cfg, &input);

    assert_eq!(summary.jobs_accepted, 8);
    assert_eq!(summary.cells_completed, 56, "8 jobs x 7-protocol spectrum");
    assert_eq!(summary.cells_failed, 0);
    assert_eq!(summary.lines_malformed, 1, "the id-less line");
    assert_eq!(summary.jobs_rejected, 1, "the 70-cell job");
    assert!(
        summary.cells_reused > 0,
        "a 56-cell batch on 4 workers must recycle machines: {summary:?}"
    );

    // The rejection is typed, names the job, and blames the queue.
    let reject = lines
        .iter()
        .filter(|l| l.get("type").unwrap().as_str().unwrap() == "reject")
        .find(|l| l.get("job").map(|j| j.as_str().unwrap()) == Ok("toobig"))
        .expect("the oversized job's reject line");
    let reason = reject.get("reason").unwrap().as_str().unwrap();
    assert!(reason.contains("queue full"), "{reason}");
    assert!(reason.contains("needs 70"), "{reason}");

    // Index every streamed cell by (job, protocol, app).
    let mut served: HashMap<(String, String, String), &JsonValue> = HashMap::new();
    for l in &lines {
        if l.get("type").unwrap().as_str().unwrap() == "cell" {
            let key = (
                l.get("job").unwrap().as_str().unwrap().to_string(),
                l.get("protocol").unwrap().as_str().unwrap().to_string(),
                l.get("app").unwrap().as_str().unwrap().to_string(),
            );
            assert!(
                served.insert(key, l).is_none(),
                "duplicate cell line in the stream"
            );
        }
    }
    assert_eq!(served.len(), 56);

    // Replay every accepted job through the one-shot Runner path and
    // demand bit-identity: same seed, same cycles, same event count.
    for line in &jobs {
        let spec = JobSpec::parse(line)
            .unwrap()
            .to_experiment(cfg.scale)
            .unwrap();
        let job_id = JobSpec::parse(line).unwrap().id;
        let fresh = Runner::with_threads(2).run(&spec);
        assert_eq!(fresh.cells.len(), 7);
        for cell in &fresh.cells {
            let key = (job_id.clone(), cell.protocol.clone(), cell.app.clone());
            let s = served
                .get(&key)
                .unwrap_or_else(|| panic!("no served cell for {key:?}"));
            assert_eq!(
                s.get("seed").unwrap().as_u64().unwrap(),
                cell.seed,
                "{key:?}: seed derivation diverged"
            );
            assert_eq!(
                s.get("cycles").unwrap().as_u64().unwrap(),
                cell.report.cycles.as_u64(),
                "{key:?}: cycle count diverged between serve and Runner::run"
            );
            assert_eq!(
                s.get("events").unwrap().as_u64().unwrap(),
                cell.report.events,
                "{key:?}: event count diverged between serve and Runner::run"
            );
        }
    }

    // Each accepted job got exactly one summary line with clean counts.
    let job_summaries: Vec<_> = lines
        .iter()
        .filter(|l| l.get("type").unwrap().as_str().unwrap() == "job")
        .collect();
    assert_eq!(job_summaries.len(), 8);
    for j in &job_summaries {
        assert_eq!(j.get("cells").unwrap().as_u64().unwrap(), 7);
        assert_eq!(j.get("failed").unwrap().as_u64().unwrap(), 0);
        assert!(j.get("queue_ms_mean").unwrap().as_f64().unwrap() >= 0.0);
    }

    // And the stream closes with the session summary.
    let last = lines.last().unwrap();
    assert_eq!(last.get("type").unwrap().as_str().unwrap(), "served");
    assert_eq!(last.get("cells").unwrap().as_u64().unwrap(), 56);
    assert_eq!(last.get("rejected").unwrap().as_u64().unwrap(), 1);
}

#[test]
fn single_worker_session_matches_parallel_session() {
    // Scheduling freedom (1 worker vs 4, pool reuse in different
    // orders) must not leak into results: both sessions stream the
    // same (seed, cycles, events) per cell.
    let input = job_lines()[..3].join("\n") + "\n";
    let cfg1 = ServeConfig {
        threads: 1,
        queue_capacity: 32,
        scale: Scale::Quick,
        pool_capacity: 2,
    };
    let cfg4 = ServeConfig {
        threads: 4,
        pool_capacity: 4,
        ..cfg1
    };
    let (s1, l1) = run_session(&cfg1, &input);
    let (s4, l4) = run_session(&cfg4, &input);
    assert_eq!(s1.cells_completed, 21);
    assert_eq!(s4.cells_completed, 21);

    let digest = |lines: &[JsonValue]| -> Vec<(String, String, String, u64, u64, u64)> {
        let mut cells: Vec<_> = lines
            .iter()
            .filter(|l| l.get("type").unwrap().as_str().unwrap() == "cell")
            .map(|l| {
                (
                    l.get("job").unwrap().as_str().unwrap().to_string(),
                    l.get("protocol").unwrap().as_str().unwrap().to_string(),
                    l.get("app").unwrap().as_str().unwrap().to_string(),
                    l.get("seed").unwrap().as_u64().unwrap(),
                    l.get("cycles").unwrap().as_u64().unwrap(),
                    l.get("events").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        cells.sort();
        cells
    };
    assert_eq!(digest(&l1), digest(&l4));
}
