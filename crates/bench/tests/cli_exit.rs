//! The CLI exit-code contract, pinned end-to-end on the real binary:
//!
//! - `2` — malformed invocation (unknown command, bad flag value,
//!   unresolvable `--app` spec): the user's fault, nothing ran.
//! - `1` — the run itself failed (failed cells, diverged oracle,
//!   missing perfgate baseline): correct invocation, bad outcome.
//! - `0` — everything ran and passed.
//!
//! Scripts and CI gate on these; a regression here silently turns a
//! red pipeline green (or the reverse). Failure injection uses
//! `LIMITLESS_MAX_EVENTS` on the *child* process — the one place the
//! env var can be set without racing other threads.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_limitless-bench"))
}

fn run_with_stdin(cmd: &mut Command, input: &str) -> std::process::Output {
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn limitless-bench");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

#[track_caller]
fn assert_code(out: &std::process::Output, want: i32) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn malformed_invocations_exit_2() {
    // No command at all.
    let out = bin().output().unwrap();
    assert_code(&out, 2);

    // Unknown experiment name.
    let out = bin().arg("no-such-experiment").output().unwrap();
    assert_code(&out, 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));

    // A flag with a missing/garbage value.
    let out = bin().args(["sweep", "--min-of", "zero"]).output().unwrap();
    assert_code(&out, 2);

    // An --app spec the registry rejects, for both sweep and check.
    for cmd in ["sweep", "check"] {
        let out = bin().args([cmd, "--app", "nosuchapp"]).output().unwrap();
        assert_code(&out, 2);
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("nosuchapp"),
            "the error must name the bad spec"
        );
    }
}

#[test]
fn sweep_reports_each_failed_cell_and_exits_1() {
    // A 10-event budget kills every cell; each must be named with its
    // (protocol, app, seed) identity rather than aborting on the first.
    let out = bin()
        .args([
            "sweep",
            "--nodes",
            "16",
            "--threads",
            "2",
            "--app",
            "worker:ws=1",
        ])
        .env("LIMITLESS_MAX_EVENTS", "10")
        .output()
        .unwrap();
    assert_code(&out, 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sweep: 7 cell(s) failed"),
        "all spectrum cells fail under the event budget; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("seed") && stderr.contains("event limit exceeded"),
        "failures carry identity and cause; stderr:\n{stderr}"
    );
}

#[test]
fn sweep_exits_0_on_success() {
    let out = bin()
        .args([
            "sweep",
            "--nodes",
            "16",
            "--threads",
            "2",
            "--app",
            "worker:ws=1",
        ])
        .output()
        .unwrap();
    assert_code(&out, 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("== sweep =="));
}

#[test]
fn perfgate_on_a_missing_ledger_exits_1_with_a_clear_message() {
    let path = std::env::temp_dir().join("limitless_no_such_ledger.json");
    let _ = std::fs::remove_file(&path);
    let out = bin()
        .args(["perfgate", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_code(&out, 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not exist"),
        "a typo'd path must be called out, not treated as an empty ledger; stderr:\n{stderr}"
    );

    // --warn-only must not soften a missing baseline either.
    let out = bin()
        .args(["perfgate", "--warn-only", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_code(&out, 1);
}

#[test]
fn serve_streams_results_and_exits_0() {
    let input = r#"{"id": "ok", "apps": ["worker:ws=1"], "protocols": ["DirnH4SNB"]}"#;
    let out = run_with_stdin(
        bin().args(["serve", "--threads", "2"]),
        &format!("{input}\n"),
    );
    assert_code(&out, 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"cell\""), "{stdout}");
    assert!(stdout.contains("\"type\":\"job\""), "{stdout}");
    assert!(stdout.contains("\"type\":\"served\""), "{stdout}");
}

#[test]
fn serve_with_failed_cells_exits_1_but_streams_every_error() {
    let input = concat!(
        r#"{"id": "doomed", "apps": ["worker:ws=1"], "protocols": ["DirnH4SNB", "DirnHNBS-"]}"#,
        "\n"
    );
    let out = run_with_stdin(
        bin()
            .args(["serve", "--threads", "2"])
            .env("LIMITLESS_MAX_EVENTS", "10"),
        input,
    );
    assert_code(&out, 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Both cells fail as typed error lines with identity, the job
    // summary counts them, and the process still summarizes cleanly.
    assert_eq!(stdout.matches("\"error\":").count(), 2, "{stdout}");
    assert!(stdout.contains("\"failed\":2"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("2 of 2 cells failed"),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_rejects_malformed_jobs_without_dying() {
    let input = "this is not json\n\
        {\"id\": \"ok\", \"apps\": [\"worker:ws=1\"], \"protocols\": [\"DirnHNBS-\"]}\n";
    let out = run_with_stdin(bin().args(["serve", "--threads", "1"]), input);
    assert_code(&out, 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"reject\""), "{stdout}");
    assert!(stdout.contains("\"type\":\"cell\""), "{stdout}");
    assert!(stdout.contains("\"malformed\":1"), "{stdout}");
}

#[test]
fn serve_bad_queue_flag_exits_2() {
    let out = bin().args(["serve", "--queue", "0"]).output().unwrap();
    assert_code(&out, 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queue"));
}

#[test]
fn check_exits_0_on_a_clean_oracle_run() {
    let out = bin()
        .args(["check", "--app", "worker:ws=1", "--nodes", "16"])
        .output()
        .unwrap();
    assert_code(&out, 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("match ground truth"));
}
