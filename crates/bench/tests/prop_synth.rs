//! The synthetic-generator determinism property (DESIGN.md §11): the
//! same synth spec must produce bit-identical results — cycle count,
//! event count, aggregate statistics, final memory image and per-home
//! block-id assignment — across repeated runs and across the serial
//! and sharded engines. Everything a [`Synth`] emits is scripted
//! offline from its seed, so any divergence is an engine bug, not
//! workload noise.

use limitless_apps::{run_app_with_machine, SharingPattern, Synth};
use limitless_bench::fuzz::{sample_spec, DEFAULT_BASE_SEED};
use limitless_core::ProtocolSpec;
use limitless_machine::RunReport;

struct RunOutput {
    report: RunReport,
    image: Vec<(limitless_sim::Addr, u64)>,
    fingerprints: Vec<u64>,
}

fn run(synth: &Synth, nodes: usize, shards: usize) -> RunOutput {
    let cfg = limitless_bench::cfg_sharded(nodes, ProtocolSpec::limitless(5), shards);
    let (report, m) = run_app_with_machine(synth, cfg);
    RunOutput {
        image: m.memory_image(),
        fingerprints: m.interner_fingerprints(),
        report,
    }
}

fn assert_identical(a: &RunOutput, b: &RunOutput, what: &str, spec: &str) {
    assert_eq!(
        a.report.cycles, b.report.cycles,
        "cycle count diverged {what} ({spec})"
    );
    assert_eq!(
        a.report.events, b.report.events,
        "event count diverged {what} ({spec})"
    );
    assert_eq!(
        a.report.stats, b.report.stats,
        "aggregate statistics diverged {what} ({spec})"
    );
    assert_eq!(a.image, b.image, "memory image diverged {what} ({spec})");
    assert_eq!(
        a.fingerprints, b.fingerprints,
        "block-id assignment diverged {what} ({spec})"
    );
}

/// A hand-picked spread plus sampled fuzz specs: every sharing
/// pattern, worker sets on both sides of the five-pointer boundary.
fn property_specs() -> Vec<Synth> {
    let mut specs: Vec<Synth> = SharingPattern::ALL
        .iter()
        .map(|&pattern| Synth {
            pattern,
            ws: if pattern == SharingPattern::WideShared {
                7
            } else {
                3
            },
            sync: 0.1,
            ..Synth::new(limitless_apps::Scale::Quick)
        })
        .collect();
    specs.extend((0..3).map(|i| sample_spec(DEFAULT_BASE_SEED, i, true)));
    specs
}

#[test]
fn same_spec_is_bit_identical_across_engines_and_runs() {
    const NODES: usize = 16;
    for synth in property_specs() {
        let spec = synth.spec_string();
        let reference = run(&synth, NODES, 1);
        assert!(
            reference.fingerprints.iter().any(|&f| f != 0),
            "the workload must touch the directories ({spec})"
        );
        let repeat = run(&synth, NODES, 1);
        assert_identical(&reference, &repeat, "across repeated serial runs", &spec);
        for shards in [2usize, 4] {
            let sharded = run(&synth, NODES, shards);
            assert_identical(
                &reference,
                &sharded,
                &format!("at {shards} shards vs serial"),
                &spec,
            );
        }
    }
}

/// Rebuilding the spec from its canonical string must reproduce the
/// same workload exactly — the round trip the fuzz campaign relies on
/// when a failure is re-run by spec string.
#[test]
fn spec_string_round_trip_reproduces_the_run() {
    const NODES: usize = 16;
    let synth = sample_spec(DEFAULT_BASE_SEED, 4, true);
    let spec = synth.spec_string();
    let rebuilt = limitless_apps::registry::build_str(&spec, limitless_apps::Scale::Quick).unwrap();
    let a = run(&synth, NODES, 1);
    let (report, m) = run_app_with_machine(
        rebuilt.as_ref(),
        limitless_bench::cfg_sharded(NODES, ProtocolSpec::limitless(5), 1),
    );
    let b = RunOutput {
        image: m.memory_image(),
        fingerprints: m.interner_fingerprints(),
        report,
    };
    assert_identical(&a, &b, "after a spec-string round trip", &spec);
}
