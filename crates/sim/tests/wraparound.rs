//! Bucket-window wraparound coverage for the ladder queue: timestamps
//! pinned near the top of the `u64` range, where `now + WINDOW` is not
//! representable and the circular bucket index wraps mid-window. The
//! queue must keep its exact `(time, key)` order through the overflow
//! heap promotion path at those extremes, differentially against the
//! binary-heap reference — the same discipline as
//! `ladder_vs_heap.rs`, relocated to the edge of time.

use limitless_sim::{Cycle, EventQueue, HeapEventQueue, SplitMix64};

/// Mirror of the ladder's window size.
const WINDOW: u64 = 1024;

/// A base clock close enough to `u64::MAX` that window arithmetic
/// would overflow if computed as `now + WINDOW`, yet far enough that
/// the trials below can still schedule ahead without overflowing
/// timestamps themselves (they advance the clock by well under 2^36).
const BASE: u64 = u64::MAX - (1 << 36);

/// Warps both queues' clocks to `at` by scheduling and popping a
/// sentinel event — the only way time moves in this API.
fn warp(ladder: &mut EventQueue<u64>, heap: &mut HeapEventQueue<u64>, at: u64) {
    ladder.schedule_keyed(Cycle(at), 0, u64::MAX);
    heap.schedule_keyed(Cycle(at), 0, u64::MAX);
    assert_eq!(ladder.pop(), Some((Cycle(at), u64::MAX)));
    assert_eq!(heap.pop(), Some((Cycle(at), u64::MAX)));
}

fn random_delay(rng: &mut SplitMix64) -> u64 {
    match rng.next_below(10) {
        0 => 0,
        1..=4 => rng.next_below(64),
        5..=6 => rng.next_below(600),
        7 => WINDOW - 2 + rng.next_below(5),
        8 => WINDOW + rng.next_below(WINDOW),
        _ => 5_000 + rng.next_below(100_000),
    }
}

#[test]
fn ladder_matches_heap_near_u64_max() {
    let mut seeder = SplitMix64::new(0x3a9e_1171_1e55);
    for trial in 0..500 {
        let seed = seeder.next_u64();
        let mut rng = SplitMix64::new(seed);
        let mut ladder = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Start each trial at a different offset around BASE so the
        // window's circular index begins at varied positions.
        warp(&mut ladder, &mut heap, BASE + rng.next_below(3 * WINDOW));
        let mut next_id: u64 = 1;
        let ops = 60 + rng.next_below(140);
        for op in 0..ops {
            if rng.next_below(100) < if op < ops / 2 { 65 } else { 35 } {
                let at = Cycle(ladder.now().as_u64() + random_delay(&mut rng));
                for _ in 0..=rng.next_below(3) {
                    let key = (rng.next_below(1 << 16) << 32) | next_id;
                    ladder.schedule_keyed(at, key, next_id);
                    heap.schedule_keyed(at, key, next_id);
                    next_id += 1;
                }
            } else {
                assert_eq!(
                    ladder.pop(),
                    heap.pop(),
                    "pop diverged at trial {trial} op {op} (seed {seed:#x})"
                );
            }
            assert_eq!(ladder.peek(), heap.peek(), "seed {seed:#x}");
            assert_eq!(ladder.len(), heap.len(), "seed {seed:#x}");
            assert_eq!(ladder.now(), heap.now(), "seed {seed:#x}");
        }
        loop {
            let (l, h) = (ladder.pop(), heap.pop());
            assert_eq!(l, h, "drain diverged (seed {seed:#x})");
            if l.is_none() {
                break;
            }
        }
        assert_eq!(ladder.processed(), heap.processed(), "seed {seed:#x}");
    }
}

#[test]
fn wide_window_ladder_matches_heap_near_u64_max() {
    // The wide-horizon geometry repeats the wraparound discipline:
    // bucket indices wrap mid-window at the top of the u64 range, and
    // `now + window` is unrepresentable, for every configured width.
    let mut seeder = SplitMix64::new(0x51de_3a9e_1171);
    for window in [2048u64, 8192] {
        for trial in 0..120 {
            let seed = seeder.next_u64();
            let mut rng = SplitMix64::new(seed);
            let mut ladder = EventQueue::with_window(window as usize);
            let mut heap = HeapEventQueue::new();
            warp(&mut ladder, &mut heap, BASE + rng.next_below(3 * window));
            let mut next_id: u64 = 1;
            let ops = 60 + rng.next_below(100);
            for op in 0..ops {
                if rng.next_below(100) < if op < ops / 2 { 65 } else { 35 } {
                    let delay = match rng.next_below(8) {
                        0 => 0,
                        1..=3 => rng.next_below(64),
                        4 => window - 2 + rng.next_below(5),
                        5 => window + rng.next_below(window),
                        _ => rng.next_below(20 * window),
                    };
                    let at = Cycle(ladder.now().as_u64() + delay);
                    for _ in 0..=rng.next_below(3) {
                        let key = (rng.next_below(1 << 16) << 32) | next_id;
                        ladder.schedule_keyed(at, key, next_id);
                        heap.schedule_keyed(at, key, next_id);
                        next_id += 1;
                    }
                } else {
                    assert_eq!(
                        ladder.pop(),
                        heap.pop(),
                        "trial {trial} op {op} (window {window}, seed {seed:#x})"
                    );
                }
                assert_eq!(ladder.peek(), heap.peek(), "window {window} seed {seed:#x}");
                assert_eq!(ladder.now(), heap.now(), "window {window} seed {seed:#x}");
            }
            loop {
                let (l, h) = (ladder.pop(), heap.pop());
                assert_eq!(l, h, "drain (window {window}, seed {seed:#x})");
                if l.is_none() {
                    break;
                }
            }
        }
    }
}

#[test]
fn events_at_u64_max_are_reachable() {
    let mut ladder = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    // From time zero, u64::MAX is the farthest possible overflow spill.
    ladder.schedule_keyed(Cycle(u64::MAX), 2, 2u64);
    heap.schedule_keyed(Cycle(u64::MAX), 2, 2u64);
    ladder.schedule_keyed(Cycle(u64::MAX - 2000), 1, 1);
    heap.schedule_keyed(Cycle(u64::MAX - 2000), 1, 1);
    ladder.schedule_keyed(Cycle(5), 0, 0);
    heap.schedule_keyed(Cycle(5), 0, 0);
    assert_eq!(ladder.pop(), Some((Cycle(5), 0)));
    // The clock hops to MAX-2000; MAX is still outside the window and
    // must stay parked in the overflow heap (now + WINDOW would
    // overflow if computed naively).
    assert_eq!(ladder.pop(), Some((Cycle(u64::MAX - 2000), 1)));
    assert_eq!(ladder.now(), Cycle(u64::MAX - 2000));
    // A direct in-window schedule above the wrap point.
    ladder.schedule_keyed(Cycle(u64::MAX - 1500), 3, 3);
    assert_eq!(ladder.pop(), Some((Cycle(u64::MAX - 1500), 3)));
    // Final hop lands exactly on u64::MAX via the promotion path.
    assert_eq!(ladder.pop(), Some((Cycle(u64::MAX), 2)));
    assert_eq!(ladder.now(), Cycle(u64::MAX));
    assert_eq!(ladder.pop(), None);
    // The reference agrees on the same story (minus the mid-run
    // schedule, which it never saw).
    assert_eq!(heap.pop(), Some((Cycle(5), 0)));
    assert_eq!(heap.pop(), Some((Cycle(u64::MAX - 2000), 1)));
    assert_eq!(heap.pop(), Some((Cycle(u64::MAX), 2)));
}

#[test]
fn promotion_at_the_window_edge_near_u64_max() {
    let mut ladder = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    let start = u64::MAX - WINDOW - 6;
    warp(&mut ladder, &mut heap, start);
    // Exactly one past the window edge: must spill to the far heap.
    ladder.schedule_keyed(Cycle(start + WINDOW), 7, 70u64);
    heap.schedule_keyed(Cycle(start + WINDOW), 7, 70);
    // Just inside: stays in a bucket whose index has wrapped.
    ladder.schedule_keyed(Cycle(start + WINDOW - 1), 5, 50);
    heap.schedule_keyed(Cycle(start + WINDOW - 1), 5, 50);
    // An intermediate pop slides the window, promoting the far event
    // into a bucket with a smaller-keyed neighbour arriving later.
    ladder.schedule_keyed(Cycle(start + 10), 1, 10);
    heap.schedule_keyed(Cycle(start + 10), 1, 10);
    assert_eq!(ladder.pop(), heap.pop());
    ladder.schedule_keyed(Cycle(start + WINDOW), 3, 30);
    heap.schedule_keyed(Cycle(start + WINDOW), 3, 30);
    for _ in 0..3 {
        let (l, h) = (ladder.pop(), heap.pop());
        assert_eq!(l, h);
        assert!(l.is_some());
    }
    assert_eq!(ladder.pop(), None);
    assert_eq!(heap.pop(), None);
}

#[test]
fn advance_to_near_u64_max_refills_without_overflow() {
    let mut ladder = EventQueue::new();
    let start = u64::MAX - 2 * WINDOW;
    ladder.schedule_keyed(Cycle(start), 0, "warp");
    assert!(ladder.pop().is_some());
    ladder.schedule_keyed(Cycle(u64::MAX - 4), 1, "tail");
    // Inline-dispatch advance right up to the edge of the window; the
    // refill it triggers must promote the tail event.
    ladder.advance_to(Cycle(u64::MAX - WINDOW));
    assert_eq!(ladder.pop(), Some((Cycle(u64::MAX - 4), "tail")));
    assert_eq!(ladder.now(), Cycle(u64::MAX - 4));
}
