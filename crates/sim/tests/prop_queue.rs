//! Randomized property tests for the event queue: total order and
//! stability. Cases are generated with the deterministic `SplitMix64`
//! generator so failures reproduce exactly.

use limitless_sim::{Cycle, EventQueue, SplitMix64};

const CASES: u64 = 64;

#[test]
fn pops_are_sorted() {
    // Pops come out sorted by time regardless of insertion order.
    let mut rng = SplitMix64::new(0x1001);
    for case in 0..CASES {
        let len = 1 + rng.next_below(199) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.next_below(10_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut last = Cycle::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}: pops out of order");
            last = t;
        }
    }
}

#[test]
fn equal_times_are_fifo() {
    // Equal timestamps preserve insertion order (stability), which is
    // what makes simulations deterministic.
    let mut rng = SplitMix64::new(0x1002);
    for case in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let dups: Vec<u64> = (0..len).map(|_| rng.next_below(16)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in dups.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut seen_at: std::collections::HashMap<u64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(&prev) = seen_at.get(&t.as_u64()) {
                assert!(i > prev, "case {case}: FIFO violated at t={t}");
            }
            seen_at.insert(t.as_u64(), i);
        }
    }
}

#[test]
fn conservation() {
    // Every scheduled event is popped exactly once.
    let mut rng = SplitMix64::new(0x1003);
    for case in 0..CASES {
        let len = rng.next_below(150) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.next_below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, i)) = q.pop() {
            assert!(!seen[i], "case {case}: event {i} popped twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: event lost");
    }
}
