//! Property tests for the event queue: total order and stability.

use limitless_sim::{Cycle, EventQueue};
use proptest::prelude::*;

proptest! {
    /// Pops come out sorted by time regardless of insertion order.
    #[test]
    fn pops_are_sorted(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut last = Cycle::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Equal timestamps preserve insertion order (stability), which is
    /// what makes simulations deterministic.
    #[test]
    fn equal_times_are_fifo(dups in prop::collection::vec(0u64..16, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in dups.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut seen_at: std::collections::HashMap<u64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(&prev) = seen_at.get(&t.as_u64()) {
                prop_assert!(i > prev, "FIFO violated at t={t}");
            }
            seen_at.insert(t.as_u64(), i);
        }
    }

    /// Every scheduled event is popped exactly once.
    #[test]
    fn conservation(times in prop::collection::vec(0u64..1000, 0..150)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, i)) = q.pop() {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
