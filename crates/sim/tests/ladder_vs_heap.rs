//! Differential property test: the ladder [`EventQueue`] must be
//! observationally identical to the [`HeapEventQueue`] reference under
//! randomized schedule/pop interleavings — same pop sequences, same
//! clock, same lengths — including same-time FIFO ties and
//! window-overflow boundaries.
//!
//! Over a thousand independently seeded trials run in CI; any
//! divergence prints the trial seed so the failure replays exactly.

use limitless_sim::{Cycle, EventQueue, HeapEventQueue, SplitMix64};

/// Mirror of the ladder's window size: delays are drawn to straddle
/// this boundary so migration between buckets and overflow is
/// exercised on both sides.
const WINDOW: u64 = 1024;

/// Draws a scheduling delay from a mixture that covers every regime
/// the machine model produces: zero-delay resumes, short protocol
/// latencies, window-boundary straddlers, and far-future spills.
fn random_delay(rng: &mut SplitMix64) -> u64 {
    match rng.next_below(10) {
        0 => 0,                               // same-cycle fast lane
        1..=4 => rng.next_below(64),          // hit/hop latencies
        5..=6 => rng.next_below(600),         // backoffs, handlers
        7 => WINDOW - 2 + rng.next_below(5),  // exactly at the window edge
        8 => WINDOW + rng.next_below(WINDOW), // just past the window
        _ => 5_000 + rng.next_below(100_000), // barriers, long Compute
    }
}

/// Draws a delay that straddles an arbitrary window width — the
/// wide-horizon analogue of [`random_delay`], used to exercise
/// [`EventQueue::with_window`] geometries at their own boundaries.
fn random_delay_for(rng: &mut SplitMix64, window: u64) -> u64 {
    match rng.next_below(10) {
        0 => 0,
        1..=4 => rng.next_below(64),
        5..=6 => rng.next_below(window / 2 + 1),
        7 => window - 2 + rng.next_below(5),
        8 => window + rng.next_below(window),
        _ => 5 * window + rng.next_below(100 * window),
    }
}

/// One randomized interleaving: both queues receive the identical
/// operation sequence; every observable must match at every step.
fn run_trial(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut ladder = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    let mut next_id: u64 = 0;
    let ops = 60 + rng.next_below(240);
    for op in 0..ops {
        // Bias toward scheduling early so pops have work to drain.
        let scheduling = rng.next_below(100) < if op < ops / 2 { 65 } else { 35 };
        if scheduling {
            // Schedule a burst; same-time ties are common because the
            // burst reuses one delay for several events.
            let at = Cycle(ladder.now().as_u64() + random_delay(&mut rng));
            let burst = 1 + rng.next_below(4);
            for _ in 0..burst {
                ladder.schedule(at, next_id);
                heap.schedule(at, next_id);
                next_id += 1;
            }
        } else {
            assert_eq!(
                ladder.pop(),
                heap.pop(),
                "pop diverged at op {op} (seed {seed:#x})"
            );
        }
        assert_eq!(ladder.len(), heap.len(), "len diverged (seed {seed:#x})");
        assert_eq!(
            ladder.peek_time(),
            heap.peek_time(),
            "peek diverged (seed {seed:#x})"
        );
        assert_eq!(ladder.now(), heap.now(), "clock diverged (seed {seed:#x})");
    }
    // Drain completely: the tails must agree event for event.
    loop {
        let (l, h) = (ladder.pop(), heap.pop());
        assert_eq!(l, h, "drain diverged (seed {seed:#x})");
        if l.is_none() {
            break;
        }
    }
    assert_eq!(ladder.processed(), heap.processed(), "seed {seed:#x}");
}

#[test]
fn ladder_matches_heap_on_randomized_interleavings() {
    // Independent trial seeds from the crate's deterministic RNG: the
    // whole test is reproducible, yet every trial explores a different
    // interleaving.
    let mut seeder = SplitMix64::new(0x1a_dde2_0ec4);
    for _ in 0..1_200 {
        run_trial(seeder.next_u64());
    }
}

#[test]
fn wide_window_ladders_match_heap_on_randomized_interleavings() {
    // The scaling path (`MachineConfig::event_horizon`) widens the
    // bucket window; every geometry must stay observationally
    // identical to the heap reference, with delays drawn to straddle
    // *that* window's boundary rather than the default one.
    let mut seeder = SplitMix64::new(0x71de_11a2_dde2);
    for window in [64usize, 2048, 4096, 16384] {
        for _ in 0..150 {
            let seed = seeder.next_u64();
            let mut rng = SplitMix64::new(seed);
            let mut ladder = EventQueue::with_window(window);
            let mut heap = HeapEventQueue::new();
            let mut next_id: u64 = 0;
            let ops = 60 + rng.next_below(180);
            for op in 0..ops {
                if rng.next_below(100) < if op < ops / 2 { 65 } else { 35 } {
                    let delay = random_delay_for(&mut rng, window as u64);
                    let at = Cycle(ladder.now().as_u64() + delay);
                    for _ in 0..=rng.next_below(3) {
                        let key = (rng.next_below(1 << 16) << 32) | next_id;
                        ladder.schedule_keyed(at, key, next_id);
                        heap.schedule_keyed(at, key, next_id);
                        next_id += 1;
                    }
                } else {
                    assert_eq!(
                        ladder.pop(),
                        heap.pop(),
                        "pop diverged (window {window}, seed {seed:#x})"
                    );
                }
                assert_eq!(ladder.peek(), heap.peek(), "window {window} seed {seed:#x}");
                assert_eq!(ladder.len(), heap.len(), "window {window} seed {seed:#x}");
                assert_eq!(ladder.now(), heap.now(), "window {window} seed {seed:#x}");
            }
            loop {
                let (l, h) = (ladder.pop(), heap.pop());
                assert_eq!(l, h, "drain diverged (window {window}, seed {seed:#x})");
                if l.is_none() {
                    break;
                }
            }
            assert_eq!(ladder.processed(), heap.processed(), "seed {seed:#x}");
        }
    }
}

#[test]
fn ladder_matches_heap_with_caller_keys() {
    // The sharded machine engine supplies structural tie-break keys
    // (origin node, per-origin counter) instead of scheduling-order
    // sequence numbers, so same-time keys arrive in arbitrary order.
    // Both queues must still agree on the (time, key) total order.
    let mut seeder = SplitMix64::new(0x5a_4ded_0ccb_a5e5);
    for _ in 0..400 {
        let seed = seeder.next_u64();
        let mut rng = SplitMix64::new(seed);
        let mut ladder = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_id: u64 = 0;
        for op in 0..160 {
            if rng.next_below(100) < if op < 80 { 65 } else { 35 } {
                let at = Cycle(ladder.now().as_u64() + random_delay(&mut rng));
                for _ in 0..=rng.next_below(3) {
                    // Random high bits model the origin node; low bits
                    // keep (time, key) pairs unique.
                    let key = (rng.next_below(1 << 16) << 32) | next_id;
                    ladder.schedule_keyed(at, key, next_id);
                    heap.schedule_keyed(at, key, next_id);
                    next_id += 1;
                }
            } else {
                assert_eq!(ladder.pop(), heap.pop(), "seed {seed:#x}");
            }
            assert_eq!(ladder.peek(), heap.peek(), "peek diverged (seed {seed:#x})");
        }
        loop {
            let (l, h) = (ladder.pop(), heap.pop());
            assert_eq!(l, h, "seed {seed:#x}");
            if l.is_none() {
                break;
            }
        }
    }
}

#[test]
fn ladder_matches_heap_under_advance_to() {
    // The inline-dispatch companion: advancing the clock between
    // schedules (as Machine's fast lane does) must keep both queues in
    // lockstep, including overflow refills triggered by the advance.
    let mut seeder = SplitMix64::new(0x0_0ad7_a9ce);
    for _ in 0..300 {
        let seed = seeder.next_u64();
        let mut rng = SplitMix64::new(seed);
        let mut ladder = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_id = 0u64;
        for _ in 0..120 {
            match rng.next_below(4) {
                0 => {
                    // advance_to is only legal strictly before every
                    // pending event; mirror Machine's inline rule.
                    let gap = rng.next_below(2 * WINDOW);
                    let to = Cycle(ladder.now().as_u64() + gap);
                    if ladder.peek_time().is_none_or(|pt| pt > to) {
                        ladder.advance_to(to);
                        heap.advance_to(to);
                    }
                }
                1 => {
                    assert_eq!(ladder.pop(), heap.pop(), "seed {seed:#x}");
                }
                _ => {
                    let at = Cycle(ladder.now().as_u64() + random_delay(&mut rng));
                    for _ in 0..=rng.next_below(3) {
                        ladder.schedule(at, next_id);
                        heap.schedule(at, next_id);
                        next_id += 1;
                    }
                }
            }
            assert_eq!(ladder.peek_time(), heap.peek_time(), "seed {seed:#x}");
            assert_eq!(ladder.processed(), heap.processed(), "seed {seed:#x}");
        }
        loop {
            let (l, h) = (ladder.pop(), heap.pop());
            assert_eq!(l, h, "seed {seed:#x}");
            if l.is_none() {
                break;
            }
        }
    }
}
