//! The binary-heap reference event queue.
//!
//! This was the simulator's original queue; the hot path now runs on
//! the bucketed [`EventQueue`](crate::ladder::EventQueue) ladder
//! queue. The heap implementation is retained as the independently
//! simple *reference* for differential testing: both queues must
//! produce identical pop sequences under arbitrary schedule/pop
//! interleavings (`crates/sim/tests/ladder_vs_heap.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// An entry in the queue: ordered by `(time, key)`. Keys are either
/// assigned internally in scheduling order ([`HeapEventQueue::schedule`])
/// or supplied by the caller ([`HeapEventQueue::schedule_keyed`]) when
/// the tie-break must be a *structural* property of the event rather
/// than wall-clock scheduling order.
struct Entry<E> {
    time: Cycle,
    key: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A priority queue of timestamped events with deterministic total
/// order.
///
/// Ties in simulated time are broken by the event key. With the
/// default [`schedule`](HeapEventQueue::schedule) API the key is a
/// monotone counter, so ties resolve in scheduling order (FIFO) and
/// every simulation is a pure function of its inputs — the property
/// the paper's NWO simulator relies on for controlled protocol
/// comparisons. [`schedule_keyed`](HeapEventQueue::schedule_keyed)
/// lets the caller pick keys instead, which the sharded machine engine
/// uses to make the tie order a function of *which node* scheduled the
/// event rather than of host execution order.
///
/// # Examples
///
/// ```
/// use limitless_sim::{Cycle, HeapEventQueue};
///
/// let mut q = HeapEventQueue::new();
/// q.schedule(Cycle(2), 'x');
/// q.schedule(Cycle(1), 'y');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(2), 'x')));
/// ```
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_auto: u64,
    now: Cycle,
    processed: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_auto: 0,
            now: Cycle::ZERO,
            processed: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`, breaking
    /// same-time ties in scheduling order (an internal monotone key).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time returned by
    /// [`HeapEventQueue::now`] — scheduling into the past would violate
    /// causality and indicates a simulator bug.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let key = self.next_auto;
        self.next_auto += 1;
        self.schedule_keyed(at, key, event);
    }

    /// Schedules `event` to fire at `at` with a caller-supplied
    /// tie-break key. Same-time events pop in ascending key order.
    /// Callers must not mix auto-keyed [`schedule`](Self::schedule)
    /// and keyed scheduling in one queue unless they accept the
    /// interleaved key order, and must keep `(at, key)` pairs unique.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_keyed(&mut self, at: Cycle, key: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            key,
            event,
        });
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to
    /// its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Advances the clock to `t` and counts one processed event
    /// without touching the heap (API parity with
    /// [`EventQueue::advance_to`](crate::ladder::EventQueue::advance_to)).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past; debug-asserts that no pending
    /// event is due at or before `t`.
    pub fn advance_to(&mut self, t: Cycle) {
        assert!(
            t >= self.now,
            "advance into the past: to={t}, now={}",
            self.now
        );
        debug_assert!(self.peek_time().is_none_or(|pt| pt > t));
        self.now = t;
        self.processed += 1;
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The `(time, key)` of the next pending event, if any.
    pub fn peek(&self) -> Option<(Cycle, u64)> {
        self.heap.peek().map(|e| (e.time, e.key))
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_scheduling_order() {
        let mut q = HeapEventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn keyed_ties_pop_in_key_order() {
        let mut q = HeapEventQueue::new();
        // Scheduled in descending key order; must pop ascending.
        for key in (0..50u64).rev() {
            q.schedule_keyed(Cycle(7), key, key);
        }
        for key in 0..50u64 {
            assert_eq!(q.pop(), Some((Cycle(7), key)));
        }
    }

    #[test]
    fn peek_returns_time_and_key() {
        let mut q = HeapEventQueue::new();
        assert_eq!(q.peek(), None);
        q.schedule_keyed(Cycle(9), 41, "b");
        q.schedule_keyed(Cycle(9), 7, "a");
        assert_eq!(q.peek(), Some((Cycle(9), 7)));
        assert_eq!(q.pop(), Some((Cycle(9), "a")));
        assert_eq!(q.peek(), Some((Cycle(9), 41)));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(5), ());
        q.schedule(Cycle(9), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle(5));
        q.pop();
        assert_eq!(q.now(), Cycle(9));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(10), "first");
        q.pop();
        q.schedule_after(Cycle(5), "second");
        assert_eq!(q.pop(), Some((Cycle(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(10), ());
        q.pop();
        q.schedule(Cycle(9), ());
    }

    #[test]
    fn counts_processed_events() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        q.pop();
        assert_eq!(q.processed(), 1);
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = HeapEventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle(4), ());
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two structurally identical runs must produce identical pop
        // sequences (the NWO determinism requirement).
        fn run() -> Vec<(Cycle, u32)> {
            let mut q = HeapEventQueue::new();
            let mut out = Vec::new();
            q.schedule(Cycle(0), 0u32);
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e < 50 {
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 1);
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 2);
                }
                if out.len() > 500 {
                    break;
                }
            }
            out
        }
        assert_eq!(run(), run());
    }
}
