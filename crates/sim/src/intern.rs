//! Machine-wide block interning.
//!
//! Every directory home needs a dense id per memory block so per-block
//! state can live in flat column vectors instead of hash-keyed maps.
//! Before this layer each home kept a private `FxHashMap<BlockAddr,
//! u32>` whose ids meant nothing outside that home. `BlockInterner`
//! keeps the per-home assignment (a block is only ever interned by its
//! home, and per-home event order is partition-independent — see
//! DESIGN.md §9) but numbers blocks in a *machine-wide* id space:
//! home `h` of `H` owns the ids `{local * H + h}`. Ids are therefore
//! globally unique, dense per home, and bit-identical whether the
//! machine runs on the serial engine or any sharded partition.
//!
//! # Examples
//!
//! ```
//! use limitless_sim::{BlockAddr, BlockInterner};
//!
//! let mut i = BlockInterner::new(1, 4); // home 1 of 4
//! let (a, new_a) = i.intern(BlockAddr(10));
//! let (b, _) = i.intern(BlockAddr(20));
//! assert!(new_a && a != b);
//! assert_eq!(i.intern(BlockAddr(10)), (a, false));
//! assert_eq!(i.global_id(a), 1); // 0 * 4 + 1
//! assert_eq!(i.global_id(b), 5); // 1 * 4 + 1
//! ```

use crate::hash::FxHashMap;
use crate::ids::BlockAddr;

/// Dense block → id assignment for one home node's segment of the
/// machine-wide id space.
#[derive(Clone, Debug)]
pub struct BlockInterner {
    ids: FxHashMap<BlockAddr, u32>,
    blocks: Vec<BlockAddr>,
    home: u32,
    homes: u32,
    /// One-entry cache of the last lookup: coherence traffic is bursty
    /// per block, so repeated events usually skip the hash probe.
    last: Option<(BlockAddr, u32)>,
}

impl BlockInterner {
    /// Creates the interner for home `home` of `homes`.
    ///
    /// # Panics
    ///
    /// Panics if `home >= homes` or `homes == 0`.
    pub fn new(home: u32, homes: u32) -> Self {
        assert!(homes > 0 && home < homes, "home {home} of {homes}");
        BlockInterner {
            ids: FxHashMap::default(),
            blocks: Vec::new(),
            home,
            homes,
            last: None,
        }
    }

    /// A single-segment interner (the whole machine-wide space), for
    /// standalone tables and tests.
    pub fn solo() -> Self {
        BlockInterner::new(0, 1)
    }

    /// Number of blocks ever interned by this home.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block has been interned.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Interns `block`, returning its local id and whether it was new.
    #[inline]
    pub fn intern(&mut self, block: BlockAddr) -> (u32, bool) {
        if let Some((b, id)) = self.last {
            if b == block {
                return (id, false);
            }
        }
        if let Some(&id) = self.ids.get(&block) {
            self.last = Some((block, id));
            return (id, false);
        }
        let id = u32::try_from(self.blocks.len()).expect("more than 2^32 blocks interned");
        self.ids.insert(block, id);
        self.blocks.push(block);
        self.last = Some((block, id));
        (id, true)
    }

    /// The local id for `block`, if it has ever been interned.
    #[inline]
    pub fn id_of(&self, block: BlockAddr) -> Option<u32> {
        self.ids.get(&block).copied()
    }

    /// The machine-wide id for a local id: `local * homes + home`.
    ///
    /// # Panics
    ///
    /// Panics if the product overflows `u32` (≈ 8 million blocks per
    /// home on a 512-node machine — far past any workload here).
    #[inline]
    pub fn global_id(&self, local: u32) -> u32 {
        local
            .checked_mul(self.homes)
            .and_then(|g| g.checked_add(self.home))
            .expect("machine-wide block id overflows u32")
    }

    /// Every interned block, in interning (= local id) order.
    pub fn blocks(&self) -> &[BlockAddr] {
        &self.blocks
    }

    /// Forgets every assignment while keeping the segment parameters
    /// and the hash/vector capacity — the machine-reuse reset path.
    /// After a clear the interner is indistinguishable from a freshly
    /// constructed one: ids restart at 0 in first-touch order, so the
    /// [`BlockInterner::fingerprint`] of a cleared-then-replayed
    /// interner matches a fresh one exactly.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.blocks.clear();
        self.last = None;
    }

    /// An order-sensitive fingerprint of the full id assignment, for
    /// cross-engine determinism checks (serial vs. sharded runs must
    /// agree exactly).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the block addresses in id order; the segment
        // parameters are mixed in so two homes never collide trivially.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(u64::from(self.home));
        eat(u64::from(self.homes));
        for b in &self.blocks {
            eat(b.0);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = BlockInterner::solo();
        let (a, new_a) = i.intern(BlockAddr(10));
        let (b, new_b) = i.intern(BlockAddr(20));
        assert!(new_a && new_b);
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.intern(BlockAddr(10)), (0, false));
        assert_eq!(i.id_of(BlockAddr(20)), Some(1));
        assert_eq!(i.id_of(BlockAddr(30)), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn repeated_interns_hit_the_one_entry_cache() {
        let mut i = BlockInterner::solo();
        let (id, _) = i.intern(BlockAddr(5));
        for _ in 0..10 {
            assert_eq!(i.intern(BlockAddr(5)), (id, false));
        }
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn global_ids_interleave_per_home_segments() {
        let mut a = BlockInterner::new(0, 4);
        let mut b = BlockInterner::new(3, 4);
        let (la, _) = a.intern(BlockAddr(100));
        let (lb, _) = b.intern(BlockAddr(100));
        assert_eq!(a.global_id(la), 0);
        assert_eq!(b.global_id(lb), 3);
        let (la2, _) = a.intern(BlockAddr(200));
        assert_eq!(a.global_id(la2), 4);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = BlockInterner::solo();
        a.intern(BlockAddr(1));
        a.intern(BlockAddr(2));
        let mut b = BlockInterner::solo();
        b.intern(BlockAddr(2));
        b.intern(BlockAddr(1));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = BlockInterner::solo();
        c.intern(BlockAddr(1));
        c.intern(BlockAddr(2));
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    #[should_panic(expected = "home 4 of 4")]
    fn out_of_range_home_panics() {
        BlockInterner::new(4, 4);
    }

    #[test]
    fn clear_restores_fresh_construction_behaviour() {
        let mut fresh = BlockInterner::new(1, 4);
        fresh.intern(BlockAddr(30));
        fresh.intern(BlockAddr(10));

        let mut reused = BlockInterner::new(1, 4);
        reused.intern(BlockAddr(99));
        reused.intern(BlockAddr(10));
        reused.clear();
        assert!(reused.is_empty());
        assert_eq!(reused.id_of(BlockAddr(99)), None);
        reused.intern(BlockAddr(30));
        reused.intern(BlockAddr(10));
        assert_eq!(reused.fingerprint(), fresh.fingerprint());
        assert_eq!(reused.blocks(), fresh.blocks());
    }
}
