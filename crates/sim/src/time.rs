//! Simulation time, measured in processor clock cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time (or a duration), in 33 MHz Sparcle clock
/// cycles.
///
/// `Cycle` is a transparent newtype over `u64`; arithmetic saturates
/// nowhere and panics on overflow in debug builds, like plain integer
/// arithmetic. All simulator components exchange time exclusively as
/// `Cycle` values so that raw integers with other meanings (node ids,
/// addresses) cannot be confused with timestamps.
///
/// # Examples
///
/// ```
/// use limitless_sim::Cycle;
///
/// let start = Cycle(100);
/// let latency = Cycle(38);
/// assert_eq!(start + latency, Cycle(138));
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero, the beginning of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts a cycle count to seconds, given the paper's 33 MHz
    /// clock (Table 3 reports sequential times at 33 MHz).
    pub fn as_seconds_at_33mhz(self) -> f64 {
        self.0 as f64 / 33.0e6
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.max(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
        assert_eq!(Cycle(3) + 4u64, Cycle(7));
        let mut c = Cycle(1);
        c += Cycle(2);
        c += 3u64;
        assert_eq!(c, Cycle(6));
        c -= Cycle(1);
        assert_eq!(c, Cycle(5));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycle(3).saturating_sub(Cycle(5)), Cycle::ZERO);
        assert_eq!(Cycle(5).saturating_sub(Cycle(3)), Cycle(2));
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(1).max(Cycle(2)), Cycle(2));
        assert_eq!(Cycle(7).max(Cycle(2)), Cycle(7));
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn seconds_at_33mhz_matches_paper_clock() {
        // 33M cycles == 1 second of Sparcle time.
        let one_second = Cycle(33_000_000);
        assert!((one_second.as_seconds_at_33mhz() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(42).to_string(), "42 cyc");
    }

    #[test]
    fn conversions_round_trip() {
        let c: Cycle = 99u64.into();
        let v: u64 = c.into();
        assert_eq!(v, 99);
    }
}
