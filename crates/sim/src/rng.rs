//! A small deterministic pseudo-random number generator.
//!
//! Workload generators (and nothing else in the simulator) need a
//! source of pseudo-randomness. We use SplitMix64: tiny, fast,
//! statistically adequate for shuffling work items, and — critically —
//! fully specified here so results are reproducible across platforms
//! and `rand` crate versions.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
///
/// # Examples
///
/// ```
/// use limitless_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire), which is unbiased
    /// enough for workload shuffling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And with 100 elements the identity permutation is
        // astronomically unlikely.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
