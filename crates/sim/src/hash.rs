//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a
//! per-process random seed — robust against adversarial keys, but slow
//! for the small integer keys (block addresses, node ids) that
//! dominate the simulator hot path, and randomly seeded, which is
//! hostile to reproducibility. This module provides an FxHash-style
//! multiply-and-rotate hasher (the algorithm popularized by the rustc
//! compiler) with a fixed seed: 1–2 ns per `u64` key and identical
//! iteration-independent behaviour on every run.
//!
//! Simulator determinism never *depends* on hash iteration order (the
//! event queue breaks ties by sequence number), but a fixed hasher
//! removes an entire class of accidental order dependence.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier: a 64-bit constant derived from the golden
/// ratio, chosen so multiplication mixes low-entropy integer keys.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Builds [`FxHasher`]s (all identical — the hasher is unseeded).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("block"), hash_of("block"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h: Vec<u64> = (0..64u64).map(hash_of).collect();
        let mut dedup = h.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), h.len(), "nearby keys must not collide");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_tail() {
        // Unaligned tails hash consistently with themselves.
        let mut a = FxHasher::default();
        a.write(b"abcdefghija");
        let mut b = FxHasher::default();
        b.write(b"abcdefghija");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
