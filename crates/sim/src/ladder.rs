//! The ladder (calendar) event queue: the simulator's hot-path queue.
//!
//! Nearly every event a coherence simulation schedules lands within a
//! few hundred cycles of the present — cache-hit latencies, per-hop
//! network delays, handler occupancies, BUSY backoffs. A binary heap
//! pays `O(log n)` and a cache miss or two for each of them. This
//! queue instead keeps an array of per-cycle FIFO buckets over a
//! sliding near-future *window*; scheduling into the window is an
//! `O(1)` append in the common case, and popping is an `O(1)`
//! front-dequeue after a bitmap scan for the next occupied cycle.
//! Far-future events (barrier releases, long `Compute` phases) spill
//! to a sorted overflow heap that refills the window as the clock
//! advances.
//!
//! # Ordering
//!
//! The queue preserves the exact `(time, key)` total order of the
//! [`HeapEventQueue`](crate::queue::HeapEventQueue) reference
//! implementation — the NWO-style determinism the paper's controlled
//! protocol comparisons rely on:
//!
//! * a bucket holds events of exactly one cycle, kept sorted by key
//!   (the common append-at-back case is `O(1)`; out-of-order keys —
//!   which arise when callers supply structural keys such as the
//!   sharded machine engine's per-origin-node counters — walk the
//!   bucket's short intrusive list to their insertion point);
//! * the overflow heap orders by `(time, key)`, and its events migrate
//!   into buckets the moment the window reaches them, landing in their
//!   sorted position like any other insert.
//!
//! `crates/sim/tests/ladder_vs_heap.rs` checks the equivalence under
//! thousands of randomized schedule/pop interleavings, and
//! `crates/sim/tests/wraparound.rs` repeats the exercise with
//! timestamps pinned near the top of the `u64` range.

use std::collections::BinaryHeap;

use crate::time::Cycle;

/// Default size of the near-future window in cycles. Power of two so
/// the bucket index is a mask. 1024 comfortably covers every
/// short-lived event in the machine model at CM-5-era node counts
/// (hit latencies, hop counts, handler occupancies, capped BUSY
/// backoffs); larger meshes widen the window via
/// [`EventQueue::with_window`] so long min-hop latencies and
/// log-scaled barrier releases don't degenerate into the overflow
/// heap.
pub const DEFAULT_WINDOW: usize = 1024;

/// Smallest window [`EventQueue::with_window`] accepts: one occupancy
/// bitmap word.
pub const MIN_WINDOW: usize = 64;

/// Null link in the slot arena.
const NIL: u32 = u32::MAX;

/// One event parked in a window bucket: an arena slot on its bucket's
/// intrusive singly-linked list (or on the freelist once popped, with
/// `event` taken). Freed slots are reused LIFO, so the arena's working
/// set stays as small — and as cache-hot — as the simulation's
/// in-window event population.
struct Slot<E> {
    key: u64,
    next: u32,
    event: Option<E>,
}

/// An overflow entry, min-ordered by `(time, key)`.
struct FarEntry<E> {
    time: Cycle,
    key: u64,
    event: E,
}

impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E> Eq for FarEntry<E> {}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A priority queue of timestamped events with deterministic total
/// order, implemented as a ladder/calendar queue.
///
/// Ties in simulated time are broken by the event key. With the
/// default [`schedule`](EventQueue::schedule) API the key is a
/// monotone counter, so ties resolve in scheduling order (FIFO) and
/// every simulation is a pure function of its inputs — the property
/// the paper's NWO simulator relies on for controlled protocol
/// comparisons. [`schedule_keyed`](EventQueue::schedule_keyed) lets
/// the caller pick keys instead, which the sharded machine engine uses
/// to make the tie order a function of *which node* scheduled the
/// event rather than of host execution order.
///
/// # Examples
///
/// ```
/// use limitless_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(2), 'x');
/// q.schedule(Cycle(1), 'y');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(2), 'x')));
/// ```
pub struct EventQueue<E> {
    /// The slot arena: window events and the freelist share it, linked
    /// through [`Slot::next`].
    slots: Vec<Slot<E>>,
    /// Head of the freelist through the arena.
    free_head: u32,
    /// Per-bucket list heads; bucket `t & mask` holds only events for
    /// cycle `t`, `t` in `[now, now + window)`, in ascending key order.
    heads: Vec<u32>,
    /// Per-bucket list tails (meaningful only while the bucket is
    /// non-empty), so the common monotone-key append is `O(1)`.
    tails: Vec<u32>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: Box<[u64]>,
    /// Window width in cycles (power of two, ≥ [`MIN_WINDOW`]).
    window: usize,
    /// `window - 1`: the bucket-index mask.
    mask: u64,
    /// `window / 64`: occupancy bitmap length in words.
    words: usize,
    /// Events currently sitting in window buckets.
    in_window: usize,
    /// Events at `>= now + WINDOW`, min-ordered by `(time, key)`.
    far: BinaryHeap<FarEntry<E>>,
    /// Cached location of the earliest window event: `(time, bucket)`.
    /// `None` means unknown (recomputed lazily by a bitmap scan), so
    /// peeks and pops are `O(1)` except right after a bucket drains.
    /// Invariant when `Some`: it names the minimum over *all* pending
    /// events, because eager refilling keeps every overflow event at
    /// `>= now + WINDOW`, later than anything in a bucket.
    hint: Option<(Cycle, usize)>,
    next_auto: u64,
    now: Cycle,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`] and
    /// the [`DEFAULT_WINDOW`]-cycle near-future window.
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// Creates an empty queue whose near-future window spans `window`
    /// cycles. Wider windows keep long-latency events (wide-mesh hop
    /// chains, log-scaled barriers) in `O(1)` buckets instead of the
    /// `O(log n)` overflow heap, at the cost of `window` bucket slots
    /// of memory; ordering is identical for every width.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two ≥ [`MIN_WINDOW`].
    pub fn with_window(window: usize) -> Self {
        assert!(
            window >= MIN_WINDOW && window.is_power_of_two(),
            "window must be a power of two >= {MIN_WINDOW}, got {window}"
        );
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            heads: vec![NIL; window],
            tails: vec![NIL; window],
            occupied: vec![0; window / 64].into_boxed_slice(),
            window,
            mask: window as u64 - 1,
            words: window / 64,
            in_window: 0,
            far: BinaryHeap::new(),
            hint: None,
            next_auto: 0,
            now: Cycle::ZERO,
            processed: 0,
        }
    }

    /// The near-future window width in cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of events currently parked in the overflow heap (beyond
    /// `now + window`) — the quantity a well-chosen window minimizes.
    pub fn overflow_len(&self) -> usize {
        self.far.len()
    }

    /// Schedules `event` to fire at absolute time `at`, breaking
    /// same-time ties in scheduling order (an internal monotone key).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time returned by
    /// [`EventQueue::now`] — scheduling into the past would violate
    /// causality and indicates a simulator bug.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let key = self.next_auto;
        self.next_auto += 1;
        self.schedule_keyed(at, key, event);
    }

    /// Schedules `event` to fire at `at` with a caller-supplied
    /// tie-break key. Same-time events pop in ascending key order.
    /// Callers must not mix auto-keyed [`schedule`](Self::schedule)
    /// and keyed scheduling in one queue unless they accept the
    /// interleaved key order, and must keep `(at, key)` pairs unique.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_keyed(&mut self, at: Cycle, key: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        // Distance, not absolute comparison: `now + window` may not be
        // representable when the clock runs near `u64::MAX`.
        if at.0 - self.now.0 < self.window as u64 {
            self.push_bucket(at, key, event);
        } else {
            self.far.push(FarEntry {
                time: at,
                key,
                event,
            });
        }
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Takes a slot off the freelist (or grows the arena) and fills it.
    fn alloc_slot(&mut self, key: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let s = self.free_head;
            let sl = &mut self.slots[s as usize];
            self.free_head = sl.next;
            sl.key = key;
            sl.next = NIL;
            sl.event = Some(event);
            s
        } else {
            self.slots.push(Slot {
                key,
                next: NIL,
                event: Some(event),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn push_bucket(&mut self, at: Cycle, key: u64, event: E) {
        let idx = (at.0 & self.mask) as usize;
        let s = self.alloc_slot(key, event);
        let head = self.heads[idx];
        if head == NIL {
            self.heads[idx] = s;
            self.tails[idx] = s;
        } else if self.slots[self.tails[idx] as usize].key < key {
            // Common case: monotone keys append at the back.
            let t = self.tails[idx] as usize;
            self.slots[t].next = s;
            self.tails[idx] = s;
        } else {
            // Walk to the first slot with a larger key and splice in
            // ahead of it (buckets hold a single cycle's events, so
            // these runs are short). The tail cannot move: some later
            // key follows the insertion point.
            let mut prev = NIL;
            let mut cur = head;
            while cur != NIL && self.slots[cur as usize].key < key {
                prev = cur;
                cur = self.slots[cur as usize].next;
            }
            self.slots[s as usize].next = cur;
            if prev == NIL {
                self.heads[idx] = s;
            } else {
                self.slots[prev as usize].next = s;
            }
        }
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.in_window += 1;
        // A strictly earlier event moves the cached minimum; an equal
        // time keeps the existing entry (same bucket, sorted in place).
        // A `None` hint on a non-empty window means "unknown" — an
        // earlier event may sit in a bucket we have not rescanned for —
        // so it must stay `None` until the next scan.
        match self.hint {
            Some((t, _)) if at >= t => {}
            Some(_) => self.hint = Some((at, idx)),
            None if self.in_window == 1 => self.hint = Some((at, idx)),
            None => {}
        }
    }

    /// Moves every overflow event the window now covers into its
    /// bucket. Heap pops come out in `(time, key)` order and land in
    /// their sorted bucket position, so the key tie-break is preserved.
    fn refill(&mut self) {
        while let Some(top) = self.far.peek() {
            // Far times are always >= now, so the distance check
            // cannot underflow and never overflows near u64::MAX.
            if top.time.0 - self.now.0 >= self.window as u64 {
                break;
            }
            let FarEntry { time, key, event } = self.far.pop().expect("peeked entry");
            self.push_bucket(time, key, event);
        }
    }

    /// The bucket index of the earliest non-empty bucket, scanning the
    /// occupancy bitmap circularly from the current cycle's slot.
    /// Circular distance from `now`'s slot equals distance in time, so
    /// the first hit is the earliest pending window event.
    fn first_occupied(&self) -> Option<usize> {
        let s = (self.now.0 & self.mask) as usize;
        let (word0, bit0) = (s / 64, s % 64);
        let w = self.occupied[word0] >> bit0;
        if w != 0 {
            return Some(s + w.trailing_zeros() as usize);
        }
        for k in 1..self.words {
            let wi = (word0 + k) % self.words;
            let w = self.occupied[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        // Wrapped all the way around: the low bits of the start word.
        let w = self.occupied[word0] & ((1u64 << bit0) - 1);
        if w != 0 {
            return Some(word0 * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// The absolute time of the (occupied) bucket at `idx`.
    fn time_of(&self, idx: usize) -> Cycle {
        let dist = (idx as u64).wrapping_sub(self.now.0) & self.mask;
        Cycle(self.now.0 + dist)
    }

    /// The `(time, bucket)` of the earliest window event, from the
    /// cache when valid, else by rescanning the bitmap (which happens
    /// only after a bucket drains).
    fn window_min(&mut self) -> (Cycle, usize) {
        if let Some(h) = self.hint {
            return h;
        }
        let idx = self.first_occupied().expect("window count out of sync");
        let h = (self.time_of(idx), idx);
        self.hint = Some(h);
        h
    }

    /// Removes and returns the earliest event, advancing the clock to
    /// its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.in_window == 0 {
            // Everything pending is beyond the window: the buckets are
            // empty, so the clock can hop straight to the earliest far
            // event and re-anchor the window there.
            let t = self.far.peek()?.time;
            self.now = t;
            self.refill();
        }
        let (t, idx) = self.window_min();
        let s = self.heads[idx];
        debug_assert_ne!(s, NIL, "occupied bit stale");
        let sl = &mut self.slots[s as usize];
        let event = sl.event.take().expect("freelist slot on a bucket list");
        self.heads[idx] = sl.next;
        sl.next = self.free_head;
        self.free_head = s;
        if self.heads[idx] == NIL {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
            self.hint = None;
        }
        self.in_window -= 1;
        debug_assert!(t >= self.now);
        if t > self.now {
            self.now = t;
            self.refill();
        }
        self.processed += 1;
        Some((t, event))
    }

    /// Advances the clock to `t` and counts one processed event
    /// *without* touching the queue — the companion of an inline
    /// dispatch fast path that hands an event straight to its handler
    /// when it is provably the global next event.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past; debug-asserts that no pending
    /// event is due strictly before `t` (which would make the inline
    /// dispatch reorder the simulation). An event pending *at* `t` is
    /// fine — the inline event may precede it in `(time, key)` order.
    pub fn advance_to(&mut self, t: Cycle) {
        assert!(
            t >= self.now,
            "advance into the past: to={t}, now={}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|pt| pt >= t),
            "advance_to({t}) past a pending event at {:?}",
            self.peek_time()
        );
        self.now = t;
        self.refill();
        self.processed += 1;
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.in_window + self.far.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The `(time, key)` of the next pending event, if any. Window
    /// events always precede overflow events, so the cached window
    /// minimum wins whenever the window is occupied; the key is the
    /// front of that bucket's sorted run. Takes `&mut self` to refresh
    /// the cache after a bucket drain; the observable state never
    /// changes.
    pub fn peek(&mut self) -> Option<(Cycle, u64)> {
        if self.in_window > 0 {
            let (t, idx) = self.window_min();
            let s = self.heads[idx];
            debug_assert_ne!(s, NIL, "occupied bit stale");
            let key = self.slots[s as usize].key;
            Some((t, key))
        } else {
            self.far.peek().map(|e| (e.time, e.key))
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        if self.in_window > 0 {
            Some(self.window_min().0)
        } else {
            self.far.peek().map(|e| e.time)
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("window_cycles", &self.window)
            .field("in_window", &self.in_window)
            .field("far", &self.far.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary-sensitive tests below exercise the default
    /// geometry; `wide_windows_*` repeat the discipline at other
    /// widths.
    const WINDOW: usize = DEFAULT_WINDOW;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn keyed_ties_pop_in_key_order() {
        let mut q = EventQueue::new();
        // Scheduled in descending key order; must pop ascending. This
        // exercises the sorted-insert slow path of `push_bucket`.
        for key in (0..50u64).rev() {
            q.schedule_keyed(Cycle(7), key, key);
        }
        for key in 0..50u64 {
            assert_eq!(q.pop(), Some((Cycle(7), key)));
        }
    }

    #[test]
    fn keyed_insert_interleaves_with_existing_run() {
        let mut q = EventQueue::new();
        for key in [10u64, 30, 50] {
            q.schedule_keyed(Cycle(4), key, key);
        }
        for key in [40u64, 0, 20] {
            q.schedule_keyed(Cycle(4), key, key);
        }
        for key in [0u64, 10, 20, 30, 40, 50] {
            assert_eq!(q.pop(), Some((Cycle(4), key)));
        }
    }

    #[test]
    fn peek_returns_time_and_key() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.schedule_keyed(Cycle(9), 41, "b");
        q.schedule_keyed(Cycle(9), 7, "a");
        assert_eq!(q.peek(), Some((Cycle(9), 7)));
        assert_eq!(q.pop(), Some((Cycle(9), "a")));
        assert_eq!(q.peek(), Some((Cycle(9), 41)));
        // A far-future event's key is visible too once it is the min.
        q.pop();
        q.schedule_keyed(Cycle(9 + 10 * WINDOW as u64), 3, "far");
        assert_eq!(q.peek(), Some((Cycle(9 + 10 * WINDOW as u64), 3)));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), ());
        q.schedule(Cycle(9), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle(5));
        q.pop();
        assert_eq!(q.now(), Cycle(9));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "first");
        q.pop();
        q.schedule_after(Cycle(5), "second");
        assert_eq!(q.pop(), Some((Cycle(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.pop();
        q.schedule(Cycle(9), ());
    }

    #[test]
    fn counts_processed_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        q.pop();
        assert_eq!(q.processed(), 1);
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle(4), ());
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_spill_and_return() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(50_000), "far");
        q.schedule(Cycle(3), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "near")));
        // The clock hops over the empty gap straight to the far event.
        assert_eq!(q.pop(), Some((Cycle(50_000), "far")));
        assert_eq!(q.now(), Cycle(50_000));
    }

    #[test]
    fn window_boundary_is_exact() {
        let mut q = EventQueue::new();
        // One event exactly at the last window slot, one just past it.
        q.schedule(Cycle(WINDOW as u64 - 1), "inside");
        q.schedule(Cycle(WINDOW as u64), "outside");
        assert_eq!(q.pop(), Some((Cycle(WINDOW as u64 - 1), "inside")));
        assert_eq!(q.pop(), Some((Cycle(WINDOW as u64), "outside")));
    }

    #[test]
    fn fifo_ties_survive_overflow_migration() {
        let mut q = EventQueue::new();
        let t = Cycle(2 * WINDOW as u64);
        q.schedule(t, 0); // to overflow (beyond the window)
        q.schedule(Cycle(WINDOW as u64 / 2), 99);
        q.pop(); // advance; t now inside the window, 0 migrates
        q.schedule(t, 1); // appended behind the migrated event
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn migrated_event_sorts_ahead_of_larger_direct_keys() {
        let mut q = EventQueue::new();
        let t = Cycle(2 * WINDOW as u64);
        // Key 50 spills to the overflow heap...
        q.schedule_keyed(t, 50, 50u64);
        q.schedule_keyed(Cycle(WINDOW as u64 / 2), 99, 99);
        q.pop(); // ...migrates on this advance...
        q.schedule_keyed(t, 70, 70); // ...behind it
        q.schedule_keyed(t, 10, 10); // ...and ahead of it
        assert_eq!(q.pop(), Some((t, 10)));
        assert_eq!(q.pop(), Some((t, 50)));
        assert_eq!(q.pop(), Some((t, 70)));
    }

    #[test]
    fn advance_to_counts_and_moves_clock() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), ());
        q.advance_to(Cycle(40));
        assert_eq!(q.now(), Cycle(40));
        assert_eq!(q.processed(), 1);
        assert_eq!(q.pop(), Some((Cycle(100), ())));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn advance_to_refills_the_window() {
        let mut q = EventQueue::new();
        let t = Cycle(WINDOW as u64 + 10);
        q.schedule(t, "spilled");
        q.advance_to(Cycle(20)); // window now covers t
        q.schedule(t, "direct");
        assert_eq!(q.pop(), Some((t, "spilled")));
        assert_eq!(q.pop(), Some((t, "direct")));
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two structurally identical runs must produce identical pop
        // sequences (the NWO determinism requirement).
        fn run() -> Vec<(Cycle, u32)> {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Cycle(0), 0u32);
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e < 50 {
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 1);
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 2);
                }
                if out.len() > 500 {
                    break;
                }
            }
            out
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn default_window_is_the_documented_width() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.window(), DEFAULT_WINDOW);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_panics() {
        let _: EventQueue<()> = EventQueue::with_window(1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn undersized_window_panics() {
        let _: EventQueue<()> = EventQueue::with_window(32);
    }

    #[test]
    fn wide_windows_keep_long_latencies_out_of_overflow() {
        // An event at DEFAULT_WINDOW + 10 spills under the default
        // geometry but sits in a bucket under a 4096-cycle window.
        let t = Cycle(DEFAULT_WINDOW as u64 + 10);
        let mut narrow: EventQueue<&str> = EventQueue::new();
        narrow.schedule(t, "spills");
        assert_eq!(narrow.overflow_len(), 1);
        let mut wide: EventQueue<&str> = EventQueue::with_window(4096);
        wide.schedule(t, "bucketed");
        assert_eq!(wide.overflow_len(), 0);
        assert_eq!(wide.pop(), Some((t, "bucketed")));
    }

    #[test]
    fn wide_windows_preserve_boundary_and_tie_order() {
        for window in [64usize, 2048, 8192] {
            let w = window as u64;
            let mut q = EventQueue::with_window(window);
            // Exactly at the last slot vs just past it.
            q.schedule_keyed(Cycle(w), 0, "outside");
            q.schedule_keyed(Cycle(w - 1), 1, "inside");
            assert_eq!(q.overflow_len(), 1, "window {window}");
            assert_eq!(q.pop(), Some((Cycle(w - 1), "inside")));
            assert_eq!(q.pop(), Some((Cycle(w), "outside")));
            // Keyed ties sort identically after overflow migration.
            let t = Cycle(3 * w);
            q.schedule_keyed(t, 50, "b");
            q.schedule_keyed(Cycle(2 * w + w / 2), 99, "gap");
            q.pop();
            q.schedule_keyed(t, 70, "c");
            q.schedule_keyed(t, 10, "a");
            assert_eq!(q.pop(), Some((t, "a")), "window {window}");
            assert_eq!(q.pop(), Some((t, "b")), "window {window}");
            assert_eq!(q.pop(), Some((t, "c")), "window {window}");
        }
    }

    #[test]
    fn window_widths_agree_on_pop_sequences() {
        // The same schedule must drain identically at every geometry —
        // the window only moves events between buckets and the heap.
        fn drain(window: usize) -> Vec<(Cycle, u64)> {
            let mut q = EventQueue::with_window(window);
            let mut out = Vec::new();
            for i in 0..200u64 {
                let at = (i * 97) % 7000;
                q.schedule_keyed(Cycle(at), i, i);
            }
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        }
        let reference = drain(DEFAULT_WINDOW);
        for window in [64usize, 256, 4096, 16384] {
            assert_eq!(drain(window), reference, "window {window}");
        }
    }
}
