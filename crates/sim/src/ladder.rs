//! The ladder (calendar) event queue: the simulator's hot-path queue.
//!
//! Nearly every event a coherence simulation schedules lands within a
//! few hundred cycles of the present — cache-hit latencies, per-hop
//! network delays, handler occupancies, BUSY backoffs. A binary heap
//! pays `O(log n)` and a cache miss or two for each of them. This
//! queue instead keeps an array of per-cycle FIFO buckets over a
//! sliding near-future *window*; scheduling into the window is an
//! `O(1)` append, and popping is an `O(1)` front-dequeue after a
//! bitmap scan for the next occupied cycle. Far-future events (barrier
//! releases, long `Compute` phases) spill to a sorted overflow heap
//! that refills the window as the clock advances.
//!
//! # Ordering
//!
//! The queue preserves the exact `(time, seq)` total order of the
//! [`HeapEventQueue`](crate::queue::HeapEventQueue) reference
//! implementation — the NWO-style determinism the paper's controlled
//! protocol comparisons rely on:
//!
//! * a bucket holds events of exactly one cycle, appended in `seq`
//!   order, so its FIFO order *is* the tie-break order;
//! * the overflow heap orders by `(time, seq)`, and its events migrate
//!   into buckets the moment the window reaches them — *before* any
//!   later-scheduled (higher-`seq`) event can be appended to the same
//!   bucket directly.
//!
//! `crates/sim/tests/ladder_vs_heap.rs` checks the equivalence under
//! thousands of randomized schedule/pop interleavings.

use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Size of the near-future window in cycles. Power of two so the
/// bucket index is a mask. 1024 comfortably covers every short-lived
/// event in the machine model (hit latencies, hop counts, handler
/// occupancies, capped BUSY backoffs).
const WINDOW: usize = 1024;
const MASK: u64 = WINDOW as u64 - 1;
const WORDS: usize = WINDOW / 64;

/// One event parked in a window bucket. The sequence number exists
/// only in debug builds, to assert that appends arrive in `seq` order;
/// release builds rely on the migration-order argument in the module
/// docs (checked by the differential test) and keep bucket entries a
/// bare `E`, so the hot path moves 8 fewer bytes per event.
struct Slot<E> {
    #[cfg(debug_assertions)]
    seq: u64,
    event: E,
}

impl<E> Slot<E> {
    #[cfg(debug_assertions)]
    fn new(seq: u64, event: E) -> Self {
        Slot { seq, event }
    }
    #[cfg(not(debug_assertions))]
    #[inline]
    fn new(_seq: u64, event: E) -> Self {
        Slot { event }
    }
}

/// An overflow entry, min-ordered by `(time, seq)`.
struct FarEntry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for FarEntry<E> {}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic total
/// order, implemented as a ladder/calendar queue.
///
/// Ties in simulated time are broken by scheduling order (FIFO), which
/// makes every simulation a pure function of its inputs — the property
/// the paper's NWO simulator relies on for controlled protocol
/// comparisons.
///
/// # Examples
///
/// ```
/// use limitless_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(2), 'x');
/// q.schedule(Cycle(1), 'y');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(2), 'x')));
/// ```
pub struct EventQueue<E> {
    /// One FIFO per cycle of the active window; bucket `t & MASK`
    /// holds only events for cycle `t`, `t` in `[now, now + WINDOW)`.
    buckets: Vec<VecDeque<Slot<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Events currently sitting in window buckets.
    in_window: usize,
    /// Events at `>= now + WINDOW`, min-ordered by `(time, seq)`.
    far: BinaryHeap<FarEntry<E>>,
    /// Cached location of the earliest window event: `(time, bucket)`.
    /// `None` means unknown (recomputed lazily by a bitmap scan), so
    /// peeks and pops are `O(1)` except right after a bucket drains.
    /// Invariant when `Some`: it names the minimum over *all* pending
    /// events, because eager refilling keeps every overflow event at
    /// `>= now + WINDOW`, later than anything in a bucket.
    hint: Option<(Cycle, usize)>,
    next_seq: u64,
    now: Cycle,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            in_window: 0,
            far: BinaryHeap::new(),
            hint: None,
            next_seq: 0,
            now: Cycle::ZERO,
            processed: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time returned by
    /// [`EventQueue::now`] — scheduling into the past would violate
    /// causality and indicates a simulator bug.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if at.0 - self.now.0 < WINDOW as u64 {
            self.push_bucket(at, seq, event);
        } else {
            self.far.push(FarEntry {
                time: at,
                seq,
                event,
            });
        }
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now + delay, event);
    }

    fn push_bucket(&mut self, at: Cycle, seq: u64, event: E) {
        let idx = (at.0 & MASK) as usize;
        let dq = &mut self.buckets[idx];
        // Appends must arrive in seq order for FIFO ties to hold; see
        // the module docs for why migration order guarantees this.
        #[cfg(debug_assertions)]
        debug_assert!(dq.back().is_none_or(|s| s.seq < seq));
        dq.push_back(Slot::new(seq, event));
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.in_window += 1;
        // A strictly earlier event moves the cached minimum; an equal
        // time keeps the existing entry (same bucket, FIFO order). A
        // `None` hint on a non-empty window means "unknown" — an
        // earlier event may sit in a bucket we have not rescanned for —
        // so it must stay `None` until the next scan.
        match self.hint {
            Some((t, _)) if at >= t => {}
            Some(_) => self.hint = Some((at, idx)),
            None if self.in_window == 1 => self.hint = Some((at, idx)),
            None => {}
        }
    }

    /// Moves every overflow event the window now covers into its
    /// bucket. Heap pops come out in `(time, seq)` order, so bucket
    /// appends preserve the FIFO tie-break.
    fn refill(&mut self) {
        let limit = self.now.0 + WINDOW as u64;
        while let Some(top) = self.far.peek() {
            if top.time.0 >= limit {
                break;
            }
            let FarEntry { time, seq, event } = self.far.pop().expect("peeked entry");
            self.push_bucket(time, seq, event);
        }
    }

    /// The bucket index of the earliest non-empty bucket, scanning the
    /// occupancy bitmap circularly from the current cycle's slot.
    /// Circular distance from `now`'s slot equals distance in time, so
    /// the first hit is the earliest pending window event.
    fn first_occupied(&self) -> Option<usize> {
        let s = (self.now.0 & MASK) as usize;
        let (word0, bit0) = (s / 64, s % 64);
        let w = self.occupied[word0] >> bit0;
        if w != 0 {
            return Some(s + w.trailing_zeros() as usize);
        }
        for k in 1..WORDS {
            let wi = (word0 + k) % WORDS;
            let w = self.occupied[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        // Wrapped all the way around: the low bits of the start word.
        let w = self.occupied[word0] & ((1u64 << bit0) - 1);
        if w != 0 {
            return Some(word0 * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// The absolute time of the (occupied) bucket at `idx`.
    fn time_of(&self, idx: usize) -> Cycle {
        let dist = (idx as u64).wrapping_sub(self.now.0) & MASK;
        Cycle(self.now.0 + dist)
    }

    /// The `(time, bucket)` of the earliest window event, from the
    /// cache when valid, else by rescanning the bitmap (which happens
    /// only after a bucket drains).
    fn window_min(&mut self) -> (Cycle, usize) {
        if let Some(h) = self.hint {
            return h;
        }
        let idx = self.first_occupied().expect("window count out of sync");
        let h = (self.time_of(idx), idx);
        self.hint = Some(h);
        h
    }

    /// Removes and returns the earliest event, advancing the clock to
    /// its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.in_window == 0 {
            // Everything pending is beyond the window: the buckets are
            // empty, so the clock can hop straight to the earliest far
            // event and re-anchor the window there.
            let t = self.far.peek()?.time;
            self.now = t;
            self.refill();
        }
        let (t, idx) = self.window_min();
        let Slot { event, .. } = self.buckets[idx].pop_front().expect("occupied bit stale");
        if self.buckets[idx].is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
            self.hint = None;
        }
        self.in_window -= 1;
        debug_assert!(t >= self.now);
        if t > self.now {
            self.now = t;
            self.refill();
        }
        self.processed += 1;
        Some((t, event))
    }

    /// Advances the clock to `t` and counts one processed event
    /// *without* touching the queue — the companion of an inline
    /// dispatch fast path that hands an event straight to its handler
    /// when it is provably the global next event.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past; debug-asserts that no pending
    /// event is due at or before `t` (which would make the inline
    /// dispatch reorder the simulation).
    pub fn advance_to(&mut self, t: Cycle) {
        assert!(
            t >= self.now,
            "advance into the past: to={t}, now={}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|pt| pt > t),
            "advance_to({t}) past a pending event at {:?}",
            self.peek_time()
        );
        self.now = t;
        self.refill();
        self.processed += 1;
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.in_window + self.far.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The timestamp of the next pending event, if any. Window events
    /// always precede overflow events (`t < now + WINDOW <=` every far
    /// time), so the cached window minimum wins whenever the window is
    /// occupied. Takes `&mut self` to refresh the cache after a bucket
    /// drain; the observable state never changes.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        if self.in_window > 0 {
            Some(self.window_min().0)
        } else {
            self.far.peek().map(|e| e.time)
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("window", &self.in_window)
            .field("far", &self.far.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), ());
        q.schedule(Cycle(9), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle(5));
        q.pop();
        assert_eq!(q.now(), Cycle(9));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "first");
        q.pop();
        q.schedule_after(Cycle(5), "second");
        assert_eq!(q.pop(), Some((Cycle(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.pop();
        q.schedule(Cycle(9), ());
    }

    #[test]
    fn counts_processed_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        q.pop();
        assert_eq!(q.processed(), 1);
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle(4), ());
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_spill_and_return() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(50_000), "far");
        q.schedule(Cycle(3), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "near")));
        // The clock hops over the empty gap straight to the far event.
        assert_eq!(q.pop(), Some((Cycle(50_000), "far")));
        assert_eq!(q.now(), Cycle(50_000));
    }

    #[test]
    fn window_boundary_is_exact() {
        let mut q = EventQueue::new();
        // One event exactly at the last window slot, one just past it.
        q.schedule(Cycle(WINDOW as u64 - 1), "inside");
        q.schedule(Cycle(WINDOW as u64), "outside");
        assert_eq!(q.pop(), Some((Cycle(WINDOW as u64 - 1), "inside")));
        assert_eq!(q.pop(), Some((Cycle(WINDOW as u64), "outside")));
    }

    #[test]
    fn fifo_ties_survive_overflow_migration() {
        let mut q = EventQueue::new();
        let t = Cycle(2 * WINDOW as u64);
        q.schedule(t, 0); // to overflow (beyond the window)
        q.schedule(Cycle(WINDOW as u64 / 2), 99);
        q.pop(); // advance; t now inside the window, 0 migrates
        q.schedule(t, 1); // appended behind the migrated event
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn advance_to_counts_and_moves_clock() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), ());
        q.advance_to(Cycle(40));
        assert_eq!(q.now(), Cycle(40));
        assert_eq!(q.processed(), 1);
        assert_eq!(q.pop(), Some((Cycle(100), ())));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn advance_to_refills_the_window() {
        let mut q = EventQueue::new();
        let t = Cycle(WINDOW as u64 + 10);
        q.schedule(t, "spilled");
        q.advance_to(Cycle(20)); // window now covers t
        q.schedule(t, "direct");
        assert_eq!(q.pop(), Some((t, "spilled")));
        assert_eq!(q.pop(), Some((t, "direct")));
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two structurally identical runs must produce identical pop
        // sequences (the NWO determinism requirement).
        fn run() -> Vec<(Cycle, u32)> {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Cycle(0), 0u32);
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e < 50 {
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 1);
                    q.schedule(t + Cycle(u64::from(e % 3)), e + 2);
                }
                if out.len() > 500 {
                    break;
                }
            }
            out
        }
        assert_eq!(run(), run());
    }
}
