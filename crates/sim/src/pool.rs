//! A recycling buffer pool for message payloads.
//!
//! The protocol engine's hot path builds short-lived `Vec`s — spilled
//! send lists, handler message queues — at a rate of one or two per
//! software trap. `MessagePool` keeps the spent buffers on a free list
//! so the steady state performs zero payload allocations: a buffer is
//! checked out with [`MessagePool::get`], filled, handed around by
//! value, and eventually returned with [`MessagePool::put`], which
//! clears it but keeps its capacity.
//!
//! # Examples
//!
//! ```
//! use limitless_sim::MessagePool;
//!
//! let mut pool: MessagePool<u32> = MessagePool::new();
//! let mut buf = pool.get();
//! buf.extend([1, 2, 3]);
//! pool.put(buf);
//! let again = pool.get(); // same backing storage, now empty
//! assert!(again.is_empty());
//! assert!(again.capacity() >= 3);
//! ```

/// Free list of reusable `Vec<T>` buffers.
#[derive(Clone, Debug)]
pub struct MessagePool<T> {
    free: Vec<Vec<T>>,
    /// Bound on the free list so a one-off burst cannot pin memory
    /// forever.
    max_free: usize,
}

impl<T> Default for MessagePool<T> {
    fn default() -> Self {
        MessagePool::new()
    }
}

impl<T> MessagePool<T> {
    /// An empty pool with the default free-list bound.
    pub fn new() -> Self {
        MessagePool {
            free: Vec::new(),
            max_free: 64,
        }
    }

    /// Checks out a buffer (empty, but with whatever capacity its last
    /// user grew it to).
    #[inline]
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. The contents are dropped; the
    /// capacity is kept for the next checkout.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        if self.free.len() < self.max_free {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// How many buffers are parked on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_with_capacity() {
        let mut pool: MessagePool<u8> = MessagePool::new();
        let mut a = pool.get();
        a.extend([1, 2, 3, 4]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.free_len(), 1);
        let b = pool.get();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool: MessagePool<u8> = MessagePool::new();
        for _ in 0..1000 {
            pool.put(Vec::with_capacity(8));
        }
        assert!(pool.free_len() <= 64);
    }
}
