//! Vocabulary types shared by every simulator component: node
//! identities and memory addresses.
//!
//! These live in the base crate so that the cache, directory, protocol
//! and machine layers can exchange them without depending on each
//! other.

use std::fmt;

/// Identifies one processing node (processor + cache + CMMU + memory)
/// in the machine. Nodes are numbered `0..n`.
///
/// # Examples
///
/// ```
/// use limitless_sim::NodeId;
///
/// let home = NodeId(3);
/// assert_eq!(home.index(), 3);
/// assert_eq!(home.to_string(), "n3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Sentinel for "no node" in dense column storage, where an
    /// `Option<NodeId>` would double the column width. Real machines
    /// are capped at `u16::MAX` nodes so the top value is free.
    pub const NONE: NodeId = NodeId(u16::MAX);

    /// The node number as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the [`NodeId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == NodeId::NONE
    }

    /// Converts the sentinel encoding back to an `Option`.
    #[inline]
    pub fn get(self) -> Option<NodeId> {
        if self.is_none() {
            None
        } else {
            Some(self)
        }
    }

    /// Converts an `Option` to the sentinel encoding.
    #[inline]
    pub fn from_option(o: Option<NodeId>) -> NodeId {
        o.unwrap_or(NodeId::NONE)
    }

    /// Constructs a `NodeId` from a table index.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `u16::MAX` (machines are at most 65 536
    /// nodes; the paper simulates up to 256).
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u16::try_from(i).expect("node index out of range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A byte address in the globally shared address space.
///
/// The shared address space is flat; the home node of an address is
/// determined by the machine's block-interleaving policy, not encoded
/// in the address itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The memory block (cache line) containing this address, given
    /// `line_bytes` (a power of two).
    #[inline]
    pub fn block(self, line_bytes: u64) -> BlockAddr {
        debug_assert!(line_bytes.is_power_of_two());
        // Shift, not divide: `line_bytes` is a runtime value, so the
        // compiler cannot strength-reduce the division itself, and
        // this runs on every memory access the simulator models.
        BlockAddr(self.0 >> line_bytes.trailing_zeros())
    }

    /// Byte offset within the block.
    #[inline]
    pub fn offset(self, line_bytes: u64) -> u64 {
        self.0 & (line_bytes - 1)
    }
}

/// `x % n`, strength-reduced to a mask when `n` is a power of two.
///
/// Home-node interleaving (`block % nodes`) sits on the per-event hot
/// path, and the node count is a runtime value the compiler cannot
/// reduce; benchmark machines are power-of-two sized, so the branch is
/// perfectly predicted and the divide almost never executes.
#[inline]
pub fn fast_mod(x: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n & (n - 1) == 0 {
        x & (n - 1)
    } else {
        x % n
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A memory-block (cache-line) address: the unit of coherence.
///
/// `BlockAddr(b)` covers byte addresses `[b * line, (b + 1) * line)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first byte address of the block.
    #[inline]
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let n = NodeId::from_index(255);
        assert_eq!(n.index(), 255);
        assert_eq!(n, NodeId(255));
    }

    #[test]
    #[should_panic(expected = "node index out of range")]
    fn node_id_overflow_panics() {
        NodeId::from_index(70_000);
    }

    #[test]
    fn addr_block_and_offset() {
        let a = Addr(0x1234);
        assert_eq!(a.block(16), BlockAddr(0x123));
        assert_eq!(a.offset(16), 4);
        assert_eq!(a.block(16).base(16), Addr(0x1230));
    }

    #[test]
    fn block_base_round_trip() {
        for line in [16u64, 32, 64] {
            let a = Addr(7 * line + 3);
            let b = a.block(line);
            assert!(b.base(line).0 <= a.0);
            assert!(a.0 < b.base(line).0 + line);
        }
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(BlockAddr(255).to_string(), "blk:0xff");
    }
}
