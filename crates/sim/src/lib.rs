//! Deterministic discrete-event simulation engine for the `limitless`
//! coherence simulator.
//!
//! This crate provides the substrate that plays the role of NWO, the
//! cycle-level Alewife simulator used in Chaiken & Agarwal (ISCA 1994):
//! a totally-ordered event queue with cycle-resolution timestamps, and a
//! deterministic pseudo-random number generator for workload generation.
//!
//! Determinism is a hard requirement of the paper's methodology (§3.2):
//! two runs with the same configuration must produce *identical* cycle
//! counts, so that protocol comparisons are controlled experiments. The
//! engine guarantees this by breaking timestamp ties with a monotone
//! sequence number assigned at scheduling time.
//!
//! Two queue implementations share that contract: the bucketed
//! [`ladder::EventQueue`] (the default — O(1) near-future scheduling
//! and pops) and the [`queue::HeapEventQueue`] binary-heap reference
//! it is differentially tested against.
//!
//! # Examples
//!
//! ```
//! use limitless_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle(10), "b");
//! q.schedule(Cycle(5), "a");
//! q.schedule(Cycle(10), "c"); // same time as "b": FIFO order preserved
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b")));
//! assert_eq!(q.pop(), Some((Cycle(10), "c")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod hash;
pub mod ids;
pub mod intern;
pub mod ladder;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod time;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{fast_mod, Addr, BlockAddr, NodeId};
pub use intern::BlockInterner;
pub use ladder::{EventQueue, DEFAULT_WINDOW, MIN_WINDOW};
pub use pool::MessagePool;
pub use queue::HeapEventQueue;
pub use rng::SplitMix64;
pub use time::Cycle;
