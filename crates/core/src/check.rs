//! `limitless-check`: the opt-in coherence sanitizer.
//!
//! The protocol spectrum's defining promise is that the hardware
//! pointer count changes *performance*, never *values read*. This
//! module holds the knobs and diagnostics for verifying that promise
//! at run time:
//!
//! * [`CheckLevel`] — how much invariant checking the simulator
//!   performs (`Off` costs nothing; `Basic` validates every directory
//!   transition and the cross-layer copy sets; `Full` adds per-access
//!   permission checks and the read-stream log the differential oracle
//!   compares);
//! * [`EventHistory`] — a bounded per-block ring of directory events,
//!   recorded only while checking is enabled and formatted lazily on
//!   the panic path, so an invariant violation or a retry-watchdog
//!   fire reports *how the block got here* instead of a bare state.

use std::collections::VecDeque;

use limitless_dir::HwState;
use limitless_sim::{BlockAddr, NodeId};

use crate::engine::DirEvent;

/// How much coherence checking the simulator performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckLevel {
    /// No checking and no bookkeeping: the sanitizer is compiled in
    /// but every hook reduces to one predictable branch.
    #[default]
    Off,
    /// Structural checking: per-event directory invariants with block
    /// history, the shadow copy registry, invalidation/acknowledgment
    /// balance, the bounded-retry watchdog and the quiesce-time
    /// cross-layer audit.
    Basic,
    /// Everything in `Basic`, plus per-access permission checks
    /// (reads/writes validated against the registry's ownership view)
    /// and the per-node read-stream log consumed by the
    /// `limitless-bench check` differential oracle. Deferred
    /// violations (e.g. lock-grant conflicts) become immediate panics.
    Full,
}

impl CheckLevel {
    /// Whether any checking is enabled.
    pub fn enabled(self) -> bool {
        self != CheckLevel::Off
    }

    /// Whether the per-access layer (permission checks, read-stream
    /// log, hard panics on deferred violations) is enabled.
    pub fn is_full(self) -> bool {
        self == CheckLevel::Full
    }
}

/// Directory events retained per block for diagnostics.
pub const HISTORY_DEPTH: usize = 32;

/// One retained directory event: what arrived and a compact snapshot
/// of the entry after handling it.
#[derive(Clone, Copy, Debug)]
pub struct HistoryRecord {
    /// The event that was handled.
    pub event: DirEvent,
    /// Hardware state after handling.
    pub state: HwState,
    /// Outstanding acknowledgments after handling.
    pub acks: u32,
    /// Hardware pointers in use after handling.
    pub ptr_count: u8,
    /// Software-extended readers after handling.
    pub sw_readers: u16,
    /// One-bit local pointer.
    pub local_bit: bool,
    /// Overflow meta-state.
    pub overflowed: bool,
    /// Owner awaited by a Flush/Downgrade, if any.
    pub owner_fetch: Option<NodeId>,
    /// The event was ignored as stale.
    pub stale: bool,
}

/// Bounded per-block event histories, indexed by the directory
/// table's interned block ids.
#[derive(Debug, Default)]
pub struct EventHistory {
    rings: Vec<VecDeque<HistoryRecord>>,
}

impl EventHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        EventHistory::default()
    }

    /// Appends `rec` to block id `id`'s ring, evicting the oldest
    /// entry past [`HISTORY_DEPTH`].
    pub fn record(&mut self, id: u32, rec: HistoryRecord) {
        let id = id as usize;
        if id >= self.rings.len() {
            self.rings.resize_with(id + 1, VecDeque::new);
        }
        let ring = &mut self.rings[id];
        if ring.len() == HISTORY_DEPTH {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Drops every retained record while keeping the per-block ring
    /// allocations (the machine-reuse reset path; block ids restart at
    /// 0 after a reset, so stale rings must not leak across runs).
    pub fn clear(&mut self) {
        for ring in &mut self.rings {
            ring.clear();
        }
    }

    /// Formats block id `id`'s retained history for a panic message
    /// (oldest first).
    pub fn dump(&self, block: BlockAddr, id: u32) -> String {
        let ring = self.rings.get(id as usize);
        match ring {
            None => format!("no directory events recorded for {block}"),
            Some(r) if r.is_empty() => format!("no directory events recorded for {block}"),
            Some(r) => {
                let mut s = format!("last {} directory event(s) for {block}:", r.len());
                for rec in r {
                    s.push_str(&format!(
                        "\n  {:?} -> {:?} acks={} ptrs={} sw={}{}{}{}{}",
                        rec.event,
                        rec.state,
                        rec.acks,
                        rec.ptr_count,
                        rec.sw_readers,
                        if rec.local_bit { " local" } else { "" },
                        if rec.overflowed { " overflowed" } else { "" },
                        match rec.owner_fetch {
                            Some(o) => format!(" fetching({o})"),
                            None => String::new(),
                        },
                        if rec.stale { " STALE" } else { "" },
                    ));
                }
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_disables_everything() {
        assert_eq!(CheckLevel::default(), CheckLevel::Off);
        assert!(!CheckLevel::Off.enabled());
        assert!(!CheckLevel::Off.is_full());
        assert!(CheckLevel::Basic.enabled());
        assert!(!CheckLevel::Basic.is_full());
        assert!(CheckLevel::Full.enabled());
        assert!(CheckLevel::Full.is_full());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(CheckLevel::Off < CheckLevel::Basic);
        assert!(CheckLevel::Basic < CheckLevel::Full);
    }

    fn rec(n: u16) -> HistoryRecord {
        HistoryRecord {
            event: DirEvent::Read { from: NodeId(n) },
            state: HwState::ReadOnly,
            acks: 0,
            ptr_count: 1,
            sw_readers: 0,
            local_bit: false,
            overflowed: false,
            owner_fetch: None,
            stale: false,
        }
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut h = EventHistory::new();
        for i in 0..(HISTORY_DEPTH + 5) {
            h.record(0, rec(i as u16));
        }
        let dump = h.dump(BlockAddr(7), 0);
        assert!(dump.contains(&format!("last {HISTORY_DEPTH} directory event(s)")));
        // The oldest entries were evicted.
        assert!(!dump.contains("NodeId(0)") || HISTORY_DEPTH > 32);
    }

    #[test]
    fn empty_history_dumps_placeholder() {
        let h = EventHistory::new();
        assert!(h.dump(BlockAddr(1), 3).contains("no directory events"));
    }
}
