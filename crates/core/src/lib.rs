//! The LimitLESS protocol spectrum — the primary contribution of
//! *Chaiken & Agarwal, "Software-Extended Coherent Shared Memory:
//! Performance and Cost" (ISCA 1994)*.
//!
//! A software-extended directory protocol implements a small number of
//! sharer pointers per memory block in hardware and traps to *protocol
//! extension software* on the home node when they are exhausted. This
//! crate provides:
//!
//! * [`ProtocolSpec`] — the `Dir_i H_X S_{Y,A}` notation covering the
//!   whole spectrum, from the software-only directory
//!   (`Dir_nH_0S_{NB,ACK}`) through the LimitLESS family
//!   (`Dir_nH_XS_{NB}`), the three one-pointer acknowledgment variants,
//!   the broadcast protocol (`Dir_1H_1S_{B,LACK}`), up to full-map
//!   (`Dir_nH_{NB}S_-`);
//! * [`DirEngine`] — the home-side coherence state machine: hardware
//!   transitions, trap boundary, acknowledgment counting modes,
//!   transient-state BUSY handling;
//! * the **flexible coherence interface** ([`iface`]) — the services a
//!   software handler composes protocols from, each billed at the
//!   cycle costs measured in the paper's Table 2;
//! * [`cost`] — the C and assembly handler cost models themselves.
//!
//! # Examples
//!
//! ```
//! use limitless_core::{DirEngine, DirEvent, ProtocolSpec};
//! use limitless_core::cost::HandlerImpl;
//! use limitless_sim::{BlockAddr, NodeId};
//!
//! // Alewife's default boot protocol: five hardware pointers.
//! let spec = ProtocolSpec::limitless(5);
//! let mut home = DirEngine::new(NodeId(0), 64, spec, HandlerImpl::FlexibleC);
//!
//! // Five readers fit in hardware; the sixth overflows into software.
//! for n in 1..=5 {
//!     let out = home.handle(BlockAddr(7), DirEvent::Read { from: NodeId(n) });
//!     assert!(out.trap.is_none());
//! }
//! let out = home.handle(BlockAddr(7), DirEvent::Read { from: NodeId(6) });
//! assert!(out.trap.is_some()); // the LimitLESS trap
//! ```

pub mod check;
pub mod cost;
pub mod engine;
pub mod enhancements;
pub mod iface;
pub mod msg;
pub mod spec;
pub mod table;

pub use check::{CheckLevel, EventHistory, HistoryRecord};
pub use cost::{CostModel, HandlerImpl, HandlerKind, TrapBill};
pub use engine::{DirEngine, DirEvent, EngineStats, HwTiming, Outcome, Send, SendTiming};
pub use enhancements::{AdaptiveBroadcastHandler, MigratoryHandler, ProfilingHandler};
pub use iface::{BroadcastHandler, ExtensionHandler, HandlerCtx, LimitlessHandler};
pub use msg::{BlockMsg, ProtoMsg};
pub use spec::{AckMode, ProtocolSpec, SwMode};
pub use table::{BlockStateMut, BlockStateRef, DirectoryTable};
