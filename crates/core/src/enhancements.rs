//! Protocol enhancements built on the flexible coherence interface
//! (paper §7).
//!
//! The paper argues that "the true power of the software-extension
//! approach lies in deviating from the basic implementation" and lists
//! the research directions its group was pursuing. This module
//! implements the protocol-level ones as stock [`ExtensionHandler`]s:
//!
//! * [`ProfilingHandler`] — the "profile, detect and optimize" mode: a
//!   transparent wrapper that classifies blocks (read-only,
//!   migratory, widely shared) during a development run, producing the
//!   report a compiler or programmer would use to add annotations.
//! * [`MigratoryHandler`] — "dynamic detection" of migratory data: a
//!   block that keeps moving whole from writer to writer is handed
//!   over eagerly instead of paying a read-then-invalidate round trip.
//! * [`AdaptiveBroadcastHandler`] — dynamic selection of sequential or
//!   parallel invalidation: blocks that repeatedly overflow are
//!   treated as widely-shared (synchronization objects, work queues,
//!   frequently-written globals) and invalidated by broadcast rather
//!   than by walking the software directory.
//!
//! The machine-level §7 enhancements (the FIFO lock data type and the
//! fast barrier) live in `limitless-machine`.

use std::collections::HashMap;

use limitless_sim::{BlockAddr, NodeId};

use crate::iface::{ExtensionHandler, HandlerCtx, LimitlessHandler};

// ---------------------------------------------------------------------
// Profile, detect, optimize
// ---------------------------------------------------------------------

/// How a block behaved during a profiled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockClass {
    /// Overflowed on reads but was never written after overflow:
    /// widely-shared read-only data — the §7 candidate for replication
    /// or a read-only coherence type.
    WidelySharedReadOnly,
    /// Write overflows whose worker set was repeatedly a single other
    /// node: migratory data.
    Migratory,
    /// Write overflows with large worker sets: a widely-shared
    /// read-write object (synchronization variable, work queue, …).
    WidelySharedReadWrite,
}

/// Per-block profile counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockProfile {
    /// Read-overflow traps observed.
    pub read_overflows: u64,
    /// Write-overflow traps observed.
    pub write_overflows: u64,
    /// Largest sharer set seen at a write overflow.
    pub max_worker_set: usize,
    /// Write overflows whose sharer set was exactly one node.
    pub single_sharer_writes: u64,
}

impl BlockProfile {
    /// Classifies the block, or `None` if it never troubled the
    /// software.
    pub fn classify(&self) -> Option<BlockClass> {
        if self.read_overflows == 0 && self.write_overflows == 0 {
            return None;
        }
        if self.write_overflows == 0 {
            return Some(BlockClass::WidelySharedReadOnly);
        }
        if self.single_sharer_writes * 2 > self.write_overflows {
            return Some(BlockClass::Migratory);
        }
        Some(BlockClass::WidelySharedReadWrite)
    }
}

/// A transparent profiling wrapper around any extension handler: the
/// protocol behaves exactly like the inner handler, while per-block
/// profiles accumulate for post-run analysis (the development-phase
/// mode of §7's "profile, detect, and optimize").
#[derive(Debug, Default)]
pub struct ProfilingHandler<H> {
    inner: H,
    profiles: HashMap<BlockAddr, BlockProfile>,
}

impl<H: ExtensionHandler> ProfilingHandler<H> {
    /// Wraps `inner`.
    pub fn new(inner: H) -> Self {
        ProfilingHandler {
            inner,
            profiles: HashMap::new(),
        }
    }

    /// The profile gathered for `block`, if it ever trapped.
    pub fn profile(&self, block: BlockAddr) -> Option<&BlockProfile> {
        self.profiles.get(&block)
    }

    /// All `(block, classification)` pairs, sorted by block for
    /// deterministic reporting.
    pub fn report(&self) -> Vec<(BlockAddr, BlockClass)> {
        let mut out: Vec<(BlockAddr, BlockClass)> = self
            .profiles
            .iter()
            .filter_map(|(&b, p)| p.classify().map(|c| (b, c)))
            .collect();
        out.sort_by_key(|&(b, _)| b);
        out
    }
}

/// Convenience: a profiling wrapper around the stock LimitLESS
/// handler.
pub type ProfilingLimitless = ProfilingHandler<LimitlessHandler>;

impl<H: ExtensionHandler> ExtensionHandler for ProfilingHandler<H> {
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId) {
        self.profiles.entry(ctx.block()).or_default().read_overflows += 1;
        self.inner.read_overflow(ctx, from);
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        from: NodeId,
        sharers: &[NodeId],
    ) -> u32 {
        let p = self.profiles.entry(ctx.block()).or_default();
        p.write_overflows += 1;
        p.max_worker_set = p.max_worker_set.max(sharers.len());
        if sharers.len() == 1 {
            p.single_sharer_writes += 1;
        }
        self.inner.write_overflow(ctx, from, sharers)
    }
}

// ---------------------------------------------------------------------
// Dynamic detection of migratory data
// ---------------------------------------------------------------------

/// Dynamic migratory-data detection (§7, after Cox & Fowler and
/// Stenström et al.): when a block's write overflows repeatedly find a
/// single sharer — the previous writer — the block is migrating from
/// node to node. The handler then skips the general directory walk
/// (hash lookup, free-list churn) and performs a minimal
/// invalidate-and-hand-over, charging only the lean path.
#[derive(Debug, Default)]
pub struct MigratoryHandler {
    base: LimitlessHandler,
    /// Consecutive single-sharer write overflows per block.
    streak: HashMap<BlockAddr, u32>,
    /// Blocks currently treated as migratory.
    migratory: HashMap<BlockAddr, bool>,
    /// Write overflows served by the lean migratory path.
    pub fast_handoffs: u64,
}

/// Single-sharer write overflows before a block is declared migratory.
const MIGRATORY_THRESHOLD: u32 = 2;

impl MigratoryHandler {
    /// Creates a detector with the default threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `block` is currently classified migratory.
    pub fn is_migratory(&self, block: BlockAddr) -> bool {
        self.migratory.get(&block).copied().unwrap_or(false)
    }
}

impl ExtensionHandler for MigratoryHandler {
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId) {
        // A read overflow means genuine multi-reader sharing: the block
        // is not migrating.
        self.streak.insert(ctx.block(), 0);
        self.migratory.insert(ctx.block(), false);
        self.base.read_overflow(ctx, from);
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        from: NodeId,
        sharers: &[NodeId],
    ) -> u32 {
        let block = ctx.block();
        if sharers.len() == 1 {
            let streak = self.streak.entry(block).or_insert(0);
            *streak += 1;
            if *streak >= MIGRATORY_THRESHOLD {
                self.migratory.insert(block, true);
            }
        } else {
            self.streak.insert(block, 0);
            self.migratory.insert(block, false);
        }

        if self.is_migratory(block) && sharers.len() == 1 {
            // Lean hand-over: one invalidation, no hash-table or
            // free-list traffic (the directory state for a migratory
            // block is a single pointer the handler patches in place).
            self.fast_handoffs += 1;
            ctx.decode_directory();
            let prev = sharers[0];
            let mut acks = 0;
            if prev == ctx.home() {
                ctx.invalidate_local();
            } else if prev != from {
                ctx.send_inv(prev);
                acks = 1;
            }
            ctx.release_to_hardware();
            ctx.arm_ack_counter(acks);
            return acks;
        }
        self.base.write_overflow(ctx, from, sharers)
    }
}

// ---------------------------------------------------------------------
// Adaptive sequential/parallel invalidation
// ---------------------------------------------------------------------

/// Dynamic selection between the sequential software directory walk
/// and a parallel broadcast (§7: "protocol extension software may
/// improve performance for this type of data by dynamically selecting
/// sequential or parallel invalidation procedures"). Blocks whose
/// write overflows repeatedly involve at least half the machine are
/// classed as widely-shared and invalidated by broadcast; everything
/// else takes the stock LimitLESS path.
#[derive(Debug, Default)]
pub struct AdaptiveBroadcastHandler {
    base: LimitlessHandler,
    wide_writes: HashMap<BlockAddr, u32>,
    /// Write overflows served by broadcast.
    pub broadcasts: u64,
}

/// Wide write overflows before switching a block to broadcast.
const BROADCAST_THRESHOLD: u32 = 2;

impl AdaptiveBroadcastHandler {
    /// Creates the adaptive handler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExtensionHandler for AdaptiveBroadcastHandler {
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId) {
        self.base.read_overflow(ctx, from);
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        from: NodeId,
        sharers: &[NodeId],
    ) -> u32 {
        let block = ctx.block();
        let wide = sharers.len() * 2 >= ctx.nodes();
        let count = self.wide_writes.entry(block).or_insert(0);
        if wide {
            *count += 1;
        } else {
            *count = 0;
        }
        if *count >= BROADCAST_THRESHOLD {
            self.broadcasts += 1;
            ctx.decode_directory();
            ctx.store_write_state();
            let mut acks = 0;
            for i in 0..ctx.nodes() {
                let dst = NodeId::from_index(i);
                if dst == from {
                    continue;
                }
                if dst == ctx.home() {
                    ctx.invalidate_local();
                    continue;
                }
                ctx.send_inv(dst);
                acks += 1;
            }
            ctx.release_to_hardware();
            ctx.arm_ack_counter(acks);
            return acks;
        }
        self.base.write_overflow(ctx, from, sharers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, HandlerImpl, HandlerKind};
    use crate::spec::ProtocolSpec;
    use limitless_dir::{HwDirTable, SwDirectory};

    fn table() -> HwDirTable {
        let mut t = HwDirTable::new(2);
        t.push_row();
        t
    }

    fn ctx_fixture<'a>(hw: &'a mut HwDirTable, sw: &'a mut SwDirectory) -> HandlerCtx<'a> {
        HandlerCtx::new(
            NodeId(0),
            16,
            ProtocolSpec::limitless(2),
            BlockAddr(7),
            hw.row_mut(0),
            sw,
        )
    }

    #[test]
    fn profiler_classifies_read_only_blocks() {
        let mut h = ProfilingHandler::new(LimitlessHandler);
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        for n in 1..4 {
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            h.read_overflow(&mut ctx, NodeId(n));
        }
        let p = h.profile(BlockAddr(7)).expect("profiled");
        assert_eq!(p.read_overflows, 3);
        assert_eq!(p.classify(), Some(BlockClass::WidelySharedReadOnly));
        assert_eq!(
            h.report(),
            vec![(BlockAddr(7), BlockClass::WidelySharedReadOnly)]
        );
    }

    #[test]
    fn profiler_classifies_migratory_blocks() {
        let mut h = ProfilingHandler::new(LimitlessHandler);
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        for n in 1..4 {
            hw.row_mut(0).set_overflowed(true);
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            h.write_overflow(&mut ctx, NodeId(n), &[NodeId(n + 1)]);
        }
        assert_eq!(
            h.profile(BlockAddr(7)).unwrap().classify(),
            Some(BlockClass::Migratory)
        );
    }

    #[test]
    fn profiler_classifies_wide_rw_blocks() {
        let mut h = ProfilingHandler::new(LimitlessHandler);
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        let sharers: Vec<NodeId> = (2..10).map(NodeId).collect();
        let mut ctx = ctx_fixture(&mut hw, &mut sw);
        h.write_overflow(&mut ctx, NodeId(1), &sharers);
        let p = h.profile(BlockAddr(7)).unwrap();
        assert_eq!(p.max_worker_set, 8);
        assert_eq!(p.classify(), Some(BlockClass::WidelySharedReadWrite));
    }

    #[test]
    fn unprofiled_blocks_have_no_class() {
        assert_eq!(BlockProfile::default().classify(), None);
    }

    #[test]
    fn migratory_detector_switches_to_fast_handoffs() {
        let mut h = MigratoryHandler::new();
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        // The first write arms the streak; from the second on the
        // block is migratory and takes the lean path.
        for n in 1..5u16 {
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            let acks = h.write_overflow(&mut ctx, NodeId(n), &[NodeId(n + 1)]);
            assert_eq!(acks, 1);
        }
        assert!(h.is_migratory(BlockAddr(7)));
        assert_eq!(h.fast_handoffs, 3);
    }

    #[test]
    fn migratory_detector_resets_on_wide_sharing() {
        let mut h = MigratoryHandler::new();
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        for n in 1..4u16 {
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            h.write_overflow(&mut ctx, NodeId(n), &[NodeId(n + 1)]);
        }
        assert!(h.is_migratory(BlockAddr(7)));
        // A read overflow (multi-reader sharing) demotes it.
        let mut ctx = ctx_fixture(&mut hw, &mut sw);
        h.read_overflow(&mut ctx, NodeId(9));
        assert!(!h.is_migratory(BlockAddr(7)));
    }

    #[test]
    fn migratory_fast_path_is_cheaper_than_stock() {
        let costs = CostModel::new(HandlerImpl::FlexibleC);
        let mut h = MigratoryHandler::new();
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        // Arm, then measure the lean bill.
        for n in 1..3u16 {
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            h.write_overflow(&mut ctx, NodeId(n), &[NodeId(n + 1)]);
        }
        let mut ctx = ctx_fixture(&mut hw, &mut sw);
        h.write_overflow(&mut ctx, NodeId(5), &[NodeId(6)]);
        let (lean, ..) = ctx.finish(HandlerKind::WriteExtend, true, &costs, false);
        let stock = costs.write_extend(1);
        assert!(
            lean.total() < stock.total(),
            "lean {} vs stock {}",
            lean.total(),
            stock.total()
        );
    }

    #[test]
    fn adaptive_broadcast_triggers_on_wide_blocks_only() {
        let mut h = AdaptiveBroadcastHandler::new();
        let (mut hw, mut sw) = (table(), SwDirectory::new());
        let wide: Vec<NodeId> = (1..10).map(NodeId).collect();
        // The first wide write takes the stock path; once the counter
        // reaches the threshold the handler broadcasts.
        for w in 0..3 {
            let mut ctx = ctx_fixture(&mut hw, &mut sw);
            let acks = h.write_overflow(&mut ctx, NodeId(12), &wide);
            if w == 0 {
                assert_eq!(acks as usize, wide.len());
            } else {
                // Broadcast: everyone except writer and home.
                assert_eq!(acks, 14);
            }
        }
        assert_eq!(h.broadcasts, 2);
        // Narrow writes reset the counter.
        let mut ctx = ctx_fixture(&mut hw, &mut sw);
        let acks = h.write_overflow(&mut ctx, NodeId(12), &[NodeId(1)]);
        assert_eq!(acks, 1);
    }
}
