//! The `Dir_i H_X S_{Y,A}` protocol notation and specification
//! (paper §2.5).
//!
//! The notation captures the division of labour between hardware and
//! software across the whole spectrum of software-extended protocols:
//!
//! * `i` — total explicit pointers recorded (hardware + software);
//! * `H_X` — pointers implemented in hardware (`NB` = all of them,
//!   i.e. no software extension exists);
//! * `S_Y` — `NB` if the combination records `i` explicit pointers,
//!   `B` if software broadcasts when more than `i` copies exist,
//!   `-` if no extension software exists;
//! * `A` — `ACK` if software traps on *every* acknowledgment, `LACK`
//!   if only on the *last*, absent if hardware keeps the count.

use std::fmt;
use std::str::FromStr;

/// How invalidation acknowledgments are collected after a
/// software-directed invalidation round (paper §2.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AckMode {
    /// Hardware counts every acknowledgment and completes the
    /// transaction itself. For a one-pointer protocol this needs a
    /// second pointer's worth of storage (requester id + counter), so
    /// `Dir_nH_1S_{NB}` costs as much directory memory as
    /// `Dir_nH_2S_{NB}`.
    #[default]
    Hardware,
    /// Hardware counts all but the last acknowledgment; the last one
    /// traps to software, which transmits the data to the requester.
    /// The most pointer-efficient one-pointer variant.
    LastAckTrap,
    /// Every acknowledgment traps to software ("the hardware pointer
    /// is unused" during the transaction). Subject to livelock; relies
    /// on the watchdog.
    EveryAckTrap,
}

/// What the software extension records when hardware pointers overflow
/// (the `Y` parameter).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SwMode {
    /// Software extends the directory to all `n` pointers: no
    /// broadcasts ever (`S_NB`). The LimitLESS family.
    #[default]
    NoBroadcast,
    /// Software records nothing beyond the hardware pointers and
    /// resorts to broadcasting invalidations when more copies exist
    /// (`S_B`). The Dir₁SW / cooperative-shared-memory family.
    Broadcast,
}

/// A point in the spectrum of software-extended coherence protocols.
///
/// Use the named constructors; they cover every protocol evaluated in
/// the paper.
///
/// # Examples
///
/// ```
/// use limitless_core::ProtocolSpec;
///
/// assert_eq!(ProtocolSpec::limitless(5).to_string(), "DirnH5SNB");
/// assert_eq!(ProtocolSpec::full_map().to_string(), "DirnHNBS-");
/// assert_eq!(ProtocolSpec::zero_ptr().to_string(), "DirnH0SNB,ACK");
/// assert_eq!(ProtocolSpec::one_ptr_lack().to_string(), "DirnH1SNB,LACK");
/// let parsed: ProtocolSpec = "DirnH5SNB".parse()?;
/// assert_eq!(parsed, ProtocolSpec::limitless(5));
/// # Ok::<(), limitless_core::spec::ParseProtocolError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProtocolSpec {
    /// Hardware pointer count (`X`). Ignored when `full_map`.
    pub hw_ptrs: usize,
    /// Full-map directory: one pointer per node, no extension software.
    pub full_map: bool,
    /// Acknowledgment collection mode.
    pub ack: AckMode,
    /// Software extension policy.
    pub sw: SwMode,
    /// Whether the directory implements the dedicated one-bit pointer
    /// for the home node's own copy (paper §3.1). All Alewife
    /// protocols except `Dir_nH_0S_{NB,ACK}` use it.
    pub local_bit: bool,
}

impl ProtocolSpec {
    /// The full-map protocol `Dir_nH_{NB}S_-` (DASH-style): `n`
    /// hardware pointers, no software ever.
    pub fn full_map() -> Self {
        ProtocolSpec {
            hw_ptrs: usize::MAX,
            full_map: true,
            ack: AckMode::Hardware,
            sw: SwMode::NoBroadcast,
            local_bit: true,
        }
    }

    /// A LimitLESS protocol `Dir_nH_XS_{NB}` with `x ≥ 1` hardware
    /// pointers and software extension to `n` (the Alewife hardware
    /// supports 1..=5; its default boot configuration is
    /// `limitless(5)`).
    ///
    /// `limitless(1)` is `Dir_nH_1S_{NB}`, the one-pointer variant
    /// whose acknowledgments are handled entirely in hardware.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero (use [`ProtocolSpec::zero_ptr`]).
    pub fn limitless(x: usize) -> Self {
        assert!(x >= 1, "limitless protocols need at least one pointer");
        ProtocolSpec {
            hw_ptrs: x,
            full_map: false,
            ack: AckMode::Hardware,
            sw: SwMode::NoBroadcast,
            local_bit: true,
        }
    }

    /// The software-only directory `Dir_nH_0S_{NB,ACK}`: no hardware
    /// pointers, every inter-node access handled by software, one
    /// extra bit per block marking remotely-accessed blocks (§2.3).
    pub fn zero_ptr() -> Self {
        ProtocolSpec {
            hw_ptrs: 0,
            full_map: false,
            ack: AckMode::EveryAckTrap,
            sw: SwMode::NoBroadcast,
            local_bit: false,
        }
    }

    /// `Dir_nH_1S_{NB,ACK}`: one pointer, software traps on every
    /// acknowledgment (§2.4, first variation).
    pub fn one_ptr_ack() -> Self {
        ProtocolSpec {
            ack: AckMode::EveryAckTrap,
            ..Self::limitless(1)
        }
    }

    /// `Dir_nH_1S_{NB,LACK}`: one pointer, hardware counts all but the
    /// last acknowledgment (§2.4, second variation; the most
    /// cost-efficient use of the pointer).
    pub fn one_ptr_lack() -> Self {
        ProtocolSpec {
            ack: AckMode::LastAckTrap,
            ..Self::limitless(1)
        }
    }

    /// `Dir_nH_1S_{NB}`: one pointer, acknowledgments fully in
    /// hardware (§2.4, third variation — needs two pointers' worth of
    /// storage, so it is a baseline rather than a protocol one would
    /// build).
    pub fn one_ptr_hw() -> Self {
        Self::limitless(1)
    }

    /// `Dir_1H_1S_{B,LACK}`: the Dir₁SW-style protocol of Hill et al. /
    /// Wood et al. — one explicit pointer total, software *broadcasts*
    /// invalidations when more than one copy exists, hardware counts
    /// acks, software traps on the last one. Never traps on reads.
    pub fn dir1_sw() -> Self {
        ProtocolSpec {
            hw_ptrs: 1,
            full_map: false,
            ack: AckMode::LastAckTrap,
            sw: SwMode::Broadcast,
            local_bit: true,
        }
    }

    /// Whether any extension software exists (false only for the
    /// full-map protocol).
    pub fn has_software(&self) -> bool {
        !self.full_map
    }

    /// The effective hardware pointer capacity for a machine of `n`
    /// nodes.
    pub fn capacity(&self, n: usize) -> usize {
        if self.full_map {
            n
        } else {
            self.hw_ptrs
        }
    }

    /// Directory storage cost in pointer-widths per memory block for a
    /// machine of `n` nodes (the "cost" axis of the paper's figures).
    /// The `Dir_nH_1S_{NB}` baseline counts as 2 because its ack
    /// counter and requester id occupy a second pointer's storage.
    pub fn storage_pointers(&self, n: usize) -> usize {
        if self.full_map {
            return n;
        }
        match (self.hw_ptrs, self.ack) {
            (1, AckMode::Hardware) => 2,
            (x, _) => x,
        }
    }

    /// The canonical spectrum evaluated in Figure 4: pointer counts
    /// 0, 1, 2, 3, 4, 5 and full-map. The one-pointer entry is
    /// `Dir_nH_1S_{NB,ACK}` ("all of the figures in this section show
    /// `Dir_nH_1S_{NB,ACK}` performance for the one-pointer
    /// protocol").
    pub fn spectrum() -> Vec<ProtocolSpec> {
        vec![
            Self::zero_ptr(),
            Self::one_ptr_ack(),
            Self::limitless(2),
            Self::limitless(3),
            Self::limitless(4),
            Self::limitless(5),
            Self::full_map(),
        ]
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.full_map {
            return write!(f, "DirnHNBS-");
        }
        let i = match self.sw {
            SwMode::NoBroadcast => "n".to_string(),
            SwMode::Broadcast => self.hw_ptrs.to_string(),
        };
        let y = match self.sw {
            SwMode::NoBroadcast => "NB",
            SwMode::Broadcast => "B",
        };
        let a = match self.ack {
            AckMode::Hardware => "",
            AckMode::LastAckTrap => ",LACK",
            AckMode::EveryAckTrap => ",ACK",
        };
        write!(f, "Dir{i}H{}S{y}{a}", self.hw_ptrs)
    }
}

/// Error returned when parsing an unknown protocol name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProtocolError {
    input: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized protocol name `{}`", self.input)
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for ProtocolSpec {
    type Err = ParseProtocolError;

    /// Parses the compact notation produced by `Display`
    /// (case-insensitive, underscores and spaces ignored).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| !matches!(c, '_' | ' '))
            .collect::<String>()
            .to_ascii_uppercase();
        let err = || ParseProtocolError {
            input: s.to_string(),
        };
        if norm == "DIRNHNBS-" || norm == "FULLMAP" {
            return Ok(Self::full_map());
        }
        if norm == "DIR1H1SB,LACK" {
            return Ok(Self::dir1_sw());
        }
        let rest = norm.strip_prefix("DIRNH").ok_or_else(err)?;
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let x: usize = digits.parse().map_err(|_| err())?;
        let tail = &rest[digits.len()..];
        match (x, tail) {
            (0, "SNB,ACK") => Ok(Self::zero_ptr()),
            (1, "SNB,ACK") => Ok(Self::one_ptr_ack()),
            (1, "SNB,LACK") => Ok(Self::one_ptr_lack()),
            (x, "SNB") if x >= 1 => Ok(Self::limitless(x)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProtocolSpec::full_map().to_string(), "DirnHNBS-");
        assert_eq!(ProtocolSpec::limitless(2).to_string(), "DirnH2SNB");
        assert_eq!(ProtocolSpec::limitless(5).to_string(), "DirnH5SNB");
        assert_eq!(ProtocolSpec::zero_ptr().to_string(), "DirnH0SNB,ACK");
        assert_eq!(ProtocolSpec::one_ptr_ack().to_string(), "DirnH1SNB,ACK");
        assert_eq!(ProtocolSpec::one_ptr_lack().to_string(), "DirnH1SNB,LACK");
        assert_eq!(ProtocolSpec::one_ptr_hw().to_string(), "DirnH1SNB");
        assert_eq!(ProtocolSpec::dir1_sw().to_string(), "Dir1H1SB,LACK");
    }

    #[test]
    fn parse_round_trips_every_constructor() {
        let all = [
            ProtocolSpec::full_map(),
            ProtocolSpec::limitless(1),
            ProtocolSpec::limitless(2),
            ProtocolSpec::limitless(5),
            ProtocolSpec::limitless(7),
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::one_ptr_ack(),
            ProtocolSpec::one_ptr_lack(),
            ProtocolSpec::dir1_sw(),
        ];
        for p in all {
            let s = p.to_string();
            assert_eq!(s.parse::<ProtocolSpec>().unwrap(), p, "round trip {s}");
        }
    }

    #[test]
    fn parse_is_lenient_about_case_and_underscores() {
        assert_eq!(
            "dir_n h_5 s_nb".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::limitless(5)
        );
        assert_eq!(
            "fullmap".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::full_map()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("DirnH5".parse::<ProtocolSpec>().is_err());
        assert!("".parse::<ProtocolSpec>().is_err());
        assert!("DirnHxSNB".parse::<ProtocolSpec>().is_err());
        let e = "bogus".parse::<ProtocolSpec>().unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn zero_ptr_has_no_local_bit() {
        assert!(!ProtocolSpec::zero_ptr().local_bit);
        assert!(ProtocolSpec::limitless(1).local_bit);
    }

    #[test]
    fn storage_cost_counts_the_hidden_second_pointer() {
        assert_eq!(ProtocolSpec::one_ptr_hw().storage_pointers(64), 2);
        assert_eq!(ProtocolSpec::one_ptr_lack().storage_pointers(64), 1);
        assert_eq!(ProtocolSpec::one_ptr_ack().storage_pointers(64), 1);
        assert_eq!(ProtocolSpec::zero_ptr().storage_pointers(64), 0);
        assert_eq!(ProtocolSpec::limitless(5).storage_pointers(64), 5);
        assert_eq!(ProtocolSpec::full_map().storage_pointers(64), 64);
    }

    #[test]
    fn capacity_is_n_for_full_map() {
        assert_eq!(ProtocolSpec::full_map().capacity(64), 64);
        assert_eq!(ProtocolSpec::limitless(5).capacity(64), 5);
        assert_eq!(ProtocolSpec::zero_ptr().capacity(64), 0);
    }

    #[test]
    fn spectrum_is_ordered_by_cost() {
        let spectrum = ProtocolSpec::spectrum();
        assert_eq!(spectrum.len(), 7);
        assert_eq!(spectrum[0], ProtocolSpec::zero_ptr());
        assert_eq!(*spectrum.last().unwrap(), ProtocolSpec::full_map());
        let costs: Vec<usize> = spectrum.iter().map(|p| p.storage_pointers(64)).collect();
        let mut sorted = costs.clone();
        sorted.sort_unstable();
        assert_eq!(costs, sorted);
    }

    #[test]
    #[should_panic(expected = "at least one pointer")]
    fn limitless_zero_panics() {
        ProtocolSpec::limitless(0);
    }

    #[test]
    fn full_map_has_no_software() {
        assert!(!ProtocolSpec::full_map().has_software());
        assert!(ProtocolSpec::limitless(5).has_software());
    }
}
