//! Handler cost models: how many home-processor cycles each software
//! trap consumes, broken down by activity.
//!
//! The paper measured two implementations of the protocol extension
//! software on cycle-by-cycle traces (Table 2, 8 readers / 1 writer
//! per block):
//!
//! | Activity                      | C rd | asm rd | C wr | asm wr |
//! |-------------------------------|------|--------|------|--------|
//! | trap dispatch                 | 11   | 11     | 9    | 11     |
//! | system message dispatch       | 14   | 15     | 14   | 15     |
//! | protocol-specific dispatch    | 10   | n/a    | 10   | n/a    |
//! | decode/modify hw directory    | 22   | 17     | 52   | 40     |
//! | save state for function calls | 24   | n/a    | 17   | n/a    |
//! | memory management             | 60   | 65     | 28   | 11     |
//! | hash table administration     | 80   | n/a    | 74   | n/a    |
//! | store ptrs into extended dir  | 235  | 74     | 99   | 45     |
//! | invalidation lookup/transmit  | n/a  | n/a    | 419  | 251    |
//! | support for non-Alewife prot. | 10   | n/a    | 6    | n/a    |
//! | trap return                   | 14   | 11     | 9    | 11     |
//! | **total (median)**            | 480  | 193    | 737  | 384    |
//!
//! This module reproduces those ledgers exactly at the Table 2
//! operating point (a read trap that stores 6 pointers; a write trap
//! that transmits 8 invalidations) and scales the per-pointer and
//! per-invalidation activities linearly elsewhere, which is how
//! Table 1's mild dependence on worker-set size arises.
//!
//! Handlers written against the flexible coherence interface do not
//! call these formulas directly: the interface records which billed
//! services a handler used ([`ComposeInputs`]) and
//! [`CostModel::compose`] turns that usage into a [`TrapBill`].

use std::fmt;

/// Which software implementation services protocol traps (paper §4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HandlerImpl {
    /// The C implementation built on the flexible coherence interface:
    /// general, supports the whole protocol spectrum, roughly 2x
    /// slower.
    #[default]
    FlexibleC,
    /// The hand-tuned assembly implementation: `Dir_nH_5S_{NB}` only
    /// in real Alewife, but its cost profile is applied to whichever
    /// protocol is configured.
    TunedAsm,
}

impl fmt::Display for HandlerImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerImpl::FlexibleC => write!(f, "C"),
            HandlerImpl::TunedAsm => write!(f, "assembly"),
        }
    }
}

/// One line of the Table 2 activity ledger.
///
/// The discriminants are the row indices of Table 2 (see
/// [`Activity::ALL`]), which lets [`TrapBill`] store its ledger as a
/// fixed dense array indexed by `activity as usize`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Activity {
    /// Invoke the hardware exception/interrupt handler.
    TrapDispatch,
    /// System-level message dispatch.
    SysMsgDispatch,
    /// Extra dispatch setting up the C environment (flexible interface
    /// only).
    ProtoDispatch,
    /// Decode and modify the hardware directory entry.
    DecodeModifyDir,
    /// Save registers for C function calls (flexible interface only).
    SaveState,
    /// Free-list memory manager.
    MemoryMgmt,
    /// Hash-table administration (flexible interface only; the
    /// assembly version exploits the directory format instead).
    HashAdmin,
    /// Store pointers into the extended directory (scales with the
    /// number of pointers stored).
    StorePtrs,
    /// Look up sharers and transmit invalidations (scales with the
    /// number of invalidations).
    InvTransmit,
    /// Transmit a data reply from software (LACK/ACK completions; not
    /// a Table 2 line — modelled).
    DataTransmit,
    /// Checks supporting the simulator-only protocols (flexible
    /// interface only).
    NonAlewife,
    /// Return from trap to user code.
    TrapReturn,
}

impl Activity {
    /// Every activity, in Table 2 order.
    pub const ALL: [Activity; 12] = [
        Activity::TrapDispatch,
        Activity::SysMsgDispatch,
        Activity::ProtoDispatch,
        Activity::DecodeModifyDir,
        Activity::SaveState,
        Activity::MemoryMgmt,
        Activity::HashAdmin,
        Activity::StorePtrs,
        Activity::InvTransmit,
        Activity::DataTransmit,
        Activity::NonAlewife,
        Activity::TrapReturn,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Activity::TrapDispatch => "trap dispatch",
            Activity::SysMsgDispatch => "system message dispatch",
            Activity::ProtoDispatch => "protocol-specific dispatch",
            Activity::DecodeModifyDir => "decode and modify hardware directory",
            Activity::SaveState => "save state for function calls",
            Activity::MemoryMgmt => "memory management",
            Activity::HashAdmin => "hash table administration",
            Activity::StorePtrs => "store pointers into extended directory",
            Activity::InvTransmit => "invalidation lookup and transmit",
            Activity::DataTransmit => "data transmit from software",
            Activity::NonAlewife => "support for non-Alewife protocols",
            Activity::TrapReturn => "trap return",
        }
    }
}

/// What kind of software handler ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HandlerKind {
    /// Read request overflowed the hardware pointers: empty them into
    /// the software directory and record the requester.
    ReadExtend,
    /// Write request to an overflowed block: look up all sharers and
    /// transmit invalidations.
    WriteExtend,
    /// One acknowledgment arrived and trapped (`S_{NB,ACK}` mode).
    AckTrap,
    /// The final acknowledgment trapped; software transmits the data
    /// (`S_{NB,LACK}` mode).
    LastAckTrap,
    /// A request arrived during a software-managed transaction and had
    /// to be bounced with BUSY by software.
    BusyTrap,
}

impl HandlerKind {
    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            HandlerKind::ReadExtend => "read extend",
            HandlerKind::WriteExtend => "write extend",
            HandlerKind::AckTrap => "ack trap",
            HandlerKind::LastAckTrap => "last-ack trap",
            HandlerKind::BusyTrap => "busy trap",
        }
    }
}

/// Which billed flexible-interface services a handler used and how
/// many scaled operations it performed; the input to
/// [`CostModel::compose`].
#[derive(Clone, Debug, Default)]
pub struct ComposeInputs {
    /// Decoded/modified the hardware directory.
    pub decode: bool,
    /// Saved state for C function calls.
    pub save_state: bool,
    /// Used the free-listing memory manager.
    pub mem_mgmt: bool,
    /// Administered the hash table.
    pub hash_admin: bool,
    /// Ran the simulator-only protocol support checks.
    pub non_alewife: bool,
    /// Pointers stored into the extended directory.
    pub ptrs_stored: usize,
    /// Stored fixed write-transaction state.
    pub wrote_state: bool,
    /// Invalidations transmitted.
    pub invs: usize,
    /// Non-invalidation messages transmitted from software.
    pub data_sends: usize,
    /// Custom extra charges.
    pub extra: Vec<(Activity, u64)>,
    /// Small-worker-set memory optimization in effect.
    pub small_opt: bool,
}

/// The bill for one software handler invocation: which handler ran,
/// its activity ledger, and derived timing for messages it sends.
///
/// The ledger is a fixed dense array indexed by [`Activity`]
/// discriminant — `Copy`, no heap storage, so billing a trap on the
/// simulator's hot path allocates nothing and merging two bills is an
/// elementwise add.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapBill {
    /// Handler kind.
    pub kind: HandlerKind,
    /// Cycles per activity, indexed by `Activity as usize` (Table 2
    /// row order).
    ledger: [u64; Activity::ALL.len()],
    pre_send: u64,
    per_inv: u64,
    inv_total: u64,
    per_data: u64,
}

impl TrapBill {
    /// Total processor occupancy in cycles.
    pub fn total(&self) -> u64 {
        self.ledger.iter().sum()
    }

    /// Cycles for a specific activity (0 if absent).
    #[inline]
    pub fn activity(&self, a: Activity) -> u64 {
        self.ledger[a as usize]
    }

    /// The non-zero ledger lines in Table 2 row order.
    pub fn lines(&self) -> impl Iterator<Item = (Activity, u64)> + '_ {
        Activity::ALL
            .iter()
            .map(|&a| (a, self.ledger[a as usize]))
            .filter(|&(_, c)| c > 0)
    }

    /// Folds `other`'s ledger into this bill (used when several
    /// software actions bill one event: the home processor is occupied
    /// for the combined total). Send-timing fields keep the first
    /// bill's values.
    pub fn absorb(&mut self, other: &TrapBill) {
        for (mine, theirs) in self.ledger.iter_mut().zip(other.ledger.iter()) {
            *mine += theirs;
        }
    }

    /// Cycle offset, relative to handler start, at which the `i`-th
    /// invalidation leaves the node (software transmits sequentially —
    /// the root of the serial invalidation cost).
    pub fn inv_offset(&self, i: usize) -> u64 {
        self.pre_send + self.per_inv * (i as u64 + 1)
    }

    /// Cycle offset at which the `j`-th non-invalidation message (data
    /// grant, busy reply) leaves, after all invalidations.
    pub fn data_offset(&self, j: usize) -> u64 {
        self.pre_send + self.inv_total + self.per_data * (j as u64 + 1)
    }
}

/// Per-activity cost constants for one implementation.
#[derive(Clone, Copy, Debug)]
struct Costs {
    trap_dispatch: (u64, u64), // (read, write)
    sys_msg: (u64, u64),
    proto_dispatch: (u64, u64),
    decode: (u64, u64),
    save_state: (u64, u64),
    mem_mgmt: (u64, u64),
    hash_admin: (u64, u64),
    /// Per-pointer store cost as a ratio (numerator at the Table 2
    /// operating point, pointer count at that point).
    store_ptrs_read: (u64, u64),
    store_ptrs_write: u64,
    /// Per-invalidation cost ratio (numerator, inv count at the
    /// operating point).
    inv_transmit: (u64, u64),
    data_transmit: u64,
    non_alewife: (u64, u64),
    trap_return: (u64, u64),
}

const C_COSTS: Costs = Costs {
    trap_dispatch: (11, 9),
    sys_msg: (14, 14),
    proto_dispatch: (10, 10),
    decode: (22, 52),
    save_state: (24, 17),
    mem_mgmt: (60, 28),
    hash_admin: (80, 74),
    store_ptrs_read: (235, 6),
    store_ptrs_write: 99,
    inv_transmit: (419, 8),
    data_transmit: 30,
    non_alewife: (10, 6),
    trap_return: (14, 9),
};

const ASM_COSTS: Costs = Costs {
    trap_dispatch: (11, 11),
    sys_msg: (15, 15),
    proto_dispatch: (0, 0),
    decode: (17, 40),
    save_state: (0, 0),
    mem_mgmt: (65, 11),
    hash_admin: (0, 0),
    store_ptrs_read: (74, 6),
    store_ptrs_write: 45,
    inv_transmit: (251, 8),
    data_transmit: 18,
    non_alewife: (0, 0),
    trap_return: (11, 11),
};

/// Computes [`TrapBill`]s for a given handler implementation.
///
/// # Examples
///
/// ```
/// use limitless_core::cost::{CostModel, HandlerImpl};
///
/// let c = CostModel::new(HandlerImpl::FlexibleC);
/// let asm = CostModel::new(HandlerImpl::TunedAsm);
/// // Table 2's bottom line: 480 vs 193 cycles for the median read
/// // trap, 737 vs 384 for the median write trap.
/// assert_eq!(c.read_extend(6, false).total(), 480);
/// assert_eq!(asm.read_extend(6, false).total(), 193);
/// assert_eq!(c.write_extend(8).total(), 737);
/// assert_eq!(asm.write_extend(8).total(), 384);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    imp: HandlerImpl,
}

impl CostModel {
    /// Creates the cost model for `imp`.
    pub fn new(imp: HandlerImpl) -> Self {
        CostModel { imp }
    }

    /// Which implementation this model prices.
    pub fn implementation(&self) -> HandlerImpl {
        self.imp
    }

    fn costs(&self) -> &'static Costs {
        match self.imp {
            HandlerImpl::FlexibleC => &C_COSTS,
            HandlerImpl::TunedAsm => &ASM_COSTS,
        }
    }

    /// Builds a bill from flexible-interface usage. The dispatch and
    /// return sequences are always charged (they bracket every trap);
    /// everything else is charged only if the handler used it.
    ///
    /// The ledger is filled branch-free: every Table 2 row is written
    /// unconditionally, with usage booleans folded in as 0/1 cost
    /// multipliers and the small-worker-set halving applied as a
    /// conditional shift — no data-dependent branches on the billing
    /// path.
    pub fn compose(&self, kind: HandlerKind, is_write: bool, inp: ComposeInputs) -> TrapBill {
        let k = self.costs();
        let sel = |pair: (u64, u64)| if is_write { pair.1 } else { pair.0 };
        let mut ledger = [0u64; Activity::ALL.len()];
        ledger[Activity::TrapDispatch as usize] = sel(k.trap_dispatch);
        ledger[Activity::SysMsgDispatch as usize] = sel(k.sys_msg);
        ledger[Activity::ProtoDispatch as usize] = sel(k.proto_dispatch);
        ledger[Activity::DecodeModifyDir as usize] = sel(k.decode) * u64::from(inp.decode);
        ledger[Activity::SaveState as usize] = sel(k.save_state) * u64::from(inp.save_state);
        ledger[Activity::MemoryMgmt as usize] = sel(k.mem_mgmt) * u64::from(inp.mem_mgmt);
        ledger[Activity::HashAdmin as usize] = sel(k.hash_admin) * u64::from(inp.hash_admin);
        // Small-worker-set optimization: halving the pointer-store cost
        // is a shift by the condition bit.
        let store = k.store_ptrs_read.0 * inp.ptrs_stored as u64 / k.store_ptrs_read.1;
        let halve = u32::from(inp.small_opt && inp.ptrs_stored <= 4);
        ledger[Activity::StorePtrs as usize] =
            (store >> halve) + k.store_ptrs_write * u64::from(inp.wrote_state);
        let inv_total = k.inv_transmit.0 * inp.invs as u64 / k.inv_transmit.1;
        ledger[Activity::InvTransmit as usize] = inv_total;
        let data_total = k.data_transmit * inp.data_sends as u64;
        ledger[Activity::DataTransmit as usize] = data_total;
        ledger[Activity::NonAlewife as usize] = sel(k.non_alewife) * u64::from(inp.non_alewife);
        ledger[Activity::TrapReturn as usize] = sel(k.trap_return);
        for (a, c) in inp.extra {
            ledger[a as usize] += c;
        }
        let total: u64 = ledger.iter().sum();
        let per_inv = if inp.invs > 0 {
            inv_total / inp.invs as u64
        } else {
            0
        };
        TrapBill {
            kind,
            ledger,
            pre_send: total - inv_total - data_total - sel(k.trap_return),
            per_inv,
            inv_total,
            per_data: k.data_transmit,
        }
    }

    /// Bill for the canonical read-overflow handler storing
    /// `ptrs_stored` pointers. `small_opt` applies the
    /// small-worker-set memory-usage optimization (implemented in the
    /// `LACK`, `ACK` and zero-pointer protocols; paper §5), which
    /// halves the pointer-store cost for sets of four or fewer.
    pub fn read_extend(&self, ptrs_stored: usize, small_opt: bool) -> TrapBill {
        self.compose(
            HandlerKind::ReadExtend,
            false,
            ComposeInputs {
                decode: true,
                save_state: true,
                mem_mgmt: true,
                hash_admin: true,
                non_alewife: true,
                ptrs_stored,
                small_opt,
                ..ComposeInputs::default()
            },
        )
    }

    /// Bill for the canonical write-overflow handler transmitting
    /// `invs` invalidations.
    pub fn write_extend(&self, invs: usize) -> TrapBill {
        self.compose(
            HandlerKind::WriteExtend,
            true,
            ComposeInputs {
                decode: true,
                save_state: true,
                mem_mgmt: true,
                hash_admin: true,
                non_alewife: true,
                wrote_state: true,
                invs,
                ..ComposeInputs::default()
            },
        )
    }

    /// Bill for a per-acknowledgment trap (`S_{NB,ACK}` mode).
    pub fn ack_trap(&self) -> TrapBill {
        self.compose(
            HandlerKind::AckTrap,
            true,
            ComposeInputs {
                decode: true,
                ..ComposeInputs::default()
            },
        )
    }

    /// Bill for the last-acknowledgment trap, which also transmits the
    /// data to the waiting requester (`S_{NB,LACK}` and `S_{NB,ACK}`
    /// completions).
    pub fn last_ack_trap(&self) -> TrapBill {
        self.compose(
            HandlerKind::LastAckTrap,
            true,
            ComposeInputs {
                decode: true,
                data_sends: 1,
                ..ComposeInputs::default()
            },
        )
    }

    /// Bill for bouncing a request with BUSY from software (needed
    /// when the transaction itself is software-managed, as in the
    /// zero-pointer protocol and `S_{NB,ACK}` transactions).
    pub fn busy_trap(&self) -> TrapBill {
        self.compose(
            HandlerKind::BusyTrap,
            true,
            ComposeInputs {
                decode: true,
                data_sends: 1,
                ..ComposeInputs::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_read_ledger_matches_paper_exactly() {
        let bill = CostModel::new(HandlerImpl::FlexibleC).read_extend(6, false);
        assert_eq!(bill.activity(Activity::TrapDispatch), 11);
        assert_eq!(bill.activity(Activity::SysMsgDispatch), 14);
        assert_eq!(bill.activity(Activity::ProtoDispatch), 10);
        assert_eq!(bill.activity(Activity::DecodeModifyDir), 22);
        assert_eq!(bill.activity(Activity::SaveState), 24);
        assert_eq!(bill.activity(Activity::MemoryMgmt), 60);
        assert_eq!(bill.activity(Activity::HashAdmin), 80);
        assert_eq!(bill.activity(Activity::StorePtrs), 235);
        assert_eq!(bill.activity(Activity::NonAlewife), 10);
        assert_eq!(bill.activity(Activity::TrapReturn), 14);
        assert_eq!(bill.total(), 480);
    }

    #[test]
    fn table2_write_ledger_matches_paper_exactly() {
        let bill = CostModel::new(HandlerImpl::FlexibleC).write_extend(8);
        assert_eq!(bill.activity(Activity::TrapDispatch), 9);
        assert_eq!(bill.activity(Activity::DecodeModifyDir), 52);
        assert_eq!(bill.activity(Activity::SaveState), 17);
        assert_eq!(bill.activity(Activity::MemoryMgmt), 28);
        assert_eq!(bill.activity(Activity::HashAdmin), 74);
        assert_eq!(bill.activity(Activity::StorePtrs), 99);
        assert_eq!(bill.activity(Activity::InvTransmit), 419);
        assert_eq!(bill.activity(Activity::NonAlewife), 6);
        assert_eq!(bill.activity(Activity::TrapReturn), 9);
        assert_eq!(bill.total(), 737);
    }

    #[test]
    fn table2_assembly_totals_match_paper() {
        let m = CostModel::new(HandlerImpl::TunedAsm);
        assert_eq!(m.read_extend(6, false).total(), 193);
        assert_eq!(m.write_extend(8).total(), 384);
        // Assembly omits the flexible-interface activities entirely.
        let r = m.read_extend(6, false);
        assert_eq!(r.activity(Activity::ProtoDispatch), 0);
        assert_eq!(r.activity(Activity::SaveState), 0);
        assert_eq!(r.activity(Activity::HashAdmin), 0);
        assert_eq!(r.activity(Activity::NonAlewife), 0);
    }

    #[test]
    fn hand_tuning_buys_about_a_factor_of_two() {
        // Paper: "In most cases, the hand-tuned version of the software
        // reduces the latency of protocol request handlers by about a
        // factor of two."
        let c = CostModel::new(HandlerImpl::FlexibleC);
        let asm = CostModel::new(HandlerImpl::TunedAsm);
        let ratio_r =
            c.read_extend(6, false).total() as f64 / asm.read_extend(6, false).total() as f64;
        let ratio_w = c.write_extend(8).total() as f64 / asm.write_extend(8).total() as f64;
        assert!(ratio_r > 1.7 && ratio_r < 2.8, "read ratio {ratio_r}");
        assert!(ratio_w > 1.5 && ratio_w < 2.5, "write ratio {ratio_w}");
    }

    #[test]
    fn costs_scale_with_pointers_and_invs() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        assert!(m.read_extend(12, false).total() > m.read_extend(6, false).total());
        assert!(m.write_extend(16).total() > m.write_extend(8).total());
    }

    #[test]
    fn small_worker_set_optimization_reduces_read_cost() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        assert!(m.read_extend(3, true).total() < m.read_extend(3, false).total());
        // No effect above four pointers.
        assert_eq!(
            m.read_extend(6, true).total(),
            m.read_extend(6, false).total()
        );
    }

    #[test]
    fn ack_traps_are_much_cheaper_than_full_handlers() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        assert!(m.ack_trap().total() < 120);
        assert!(m.ack_trap().total() < m.read_extend(1, false).total());
        assert!(m.last_ack_trap().total() > m.ack_trap().total());
        assert_eq!(m.busy_trap().kind, HandlerKind::BusyTrap);
    }

    #[test]
    fn inv_offsets_are_increasing_and_within_bill() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let bill = m.write_extend(8);
        let mut prev = 0;
        for i in 0..8 {
            let off = bill.inv_offset(i);
            assert!(off > prev);
            prev = off;
        }
        assert!(prev <= bill.total());
    }

    #[test]
    fn data_offsets_follow_invalidations() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let bill = m.write_extend(4);
        assert!(bill.data_offset(0) > bill.inv_offset(3));
    }

    #[test]
    fn lines_skip_zero_rows_and_sum_to_total() {
        let m = CostModel::new(HandlerImpl::TunedAsm);
        for bill in [
            m.read_extend(6, false),
            m.write_extend(8),
            m.ack_trap(),
            m.last_ack_trap(),
        ] {
            assert!(bill.lines().all(|(_, c)| c > 0));
            assert_eq!(bill.lines().map(|(_, c)| c).sum::<u64>(), bill.total());
            // Assembly omits the flexible-interface rows, so the line
            // listing is strictly shorter than the full table.
            assert!(bill.lines().count() < Activity::ALL.len());
        }
    }

    #[test]
    fn absorb_adds_ledgers_elementwise() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let mut bill = m.write_extend(8);
        let extra = m.ack_trap();
        let want_total = bill.total() + extra.total();
        let want_decode =
            bill.activity(Activity::DecodeModifyDir) + extra.activity(Activity::DecodeModifyDir);
        bill.absorb(&extra);
        assert_eq!(bill.total(), want_total);
        assert_eq!(bill.activity(Activity::DecodeModifyDir), want_decode);
        assert_eq!(bill.kind, HandlerKind::WriteExtend);
    }

    #[test]
    fn handler_kind_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = [
            HandlerKind::ReadExtend,
            HandlerKind::WriteExtend,
            HandlerKind::AckTrap,
            HandlerKind::LastAckTrap,
            HandlerKind::BusyTrap,
        ]
        .into_iter()
        .map(HandlerKind::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn zero_invalidations_write_bill_is_finite() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let bill = m.write_extend(0);
        assert!(bill.total() > 0);
        assert_eq!(bill.activity(Activity::InvTransmit), 0);
    }

    #[test]
    fn activity_labels_match_table2_rows() {
        assert_eq!(
            Activity::StorePtrs.label(),
            "store pointers into extended directory"
        );
        assert_eq!(
            Activity::InvTransmit.label(),
            "invalidation lookup and transmit"
        );
        assert_eq!(Activity::ALL.len(), 12);
    }

    #[test]
    fn compose_with_extra_charges() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let bill = m.compose(
            HandlerKind::ReadExtend,
            false,
            ComposeInputs {
                extra: vec![(Activity::DataTransmit, 200)],
                ..ComposeInputs::default()
            },
        );
        assert!(bill.activity(Activity::DataTransmit) >= 200);
    }
}
