//! The flexible coherence interface (paper §4.1).
//!
//! The C version of Alewife's protocol extension software is built on
//! an interface that provides "C macros for hardware directory
//! manipulation, protocol message transmission, a free-listing memory
//! manager, and hash table administration", letting a protocol
//! designer treat every protocol event as an asynchronous inter-node
//! request without understanding the hardware. This module is that
//! interface: [`HandlerCtx`] exposes those services to an
//! [`ExtensionHandler`], and bills every service at the measured
//! Table 2 activity costs so that flexibility has its measured price.
//!
//! Two handlers cover the paper's spectrum: [`LimitlessHandler`]
//! (`S_{NB}`: extend the directory to `n` pointers in software) and
//! [`BroadcastHandler`] (`S_B`: record nothing, broadcast
//! invalidations). Users can implement [`ExtensionHandler`] themselves
//! to build the §7 enhancements (application-specific protocols,
//! dynamic invalidation strategies, …).

use limitless_dir::{HwEntryMut, SwDirectory};
use limitless_sim::{BlockAddr, NodeId};

use crate::cost::{Activity, ComposeInputs, CostModel, HandlerKind, TrapBill};
use crate::msg::ProtoMsg;
use crate::spec::ProtocolSpec;

/// A message queued by a software handler, with its position in the
/// handler's sequential transmit order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedSend {
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: ProtoMsg,
    /// True if this send is part of the invalidation sequence (paced
    /// at the per-invalidation cost); false for data/completion sends
    /// (paced at the data-transmit cost, after the invalidations).
    pub is_inv: bool,
}

/// The environment a software protocol handler runs in: directory
/// manipulation, message transmission, memory management and hash
/// administration — each billed at the measured activity costs.
///
/// A `HandlerCtx` is created by the protocol engine for the duration
/// of one trap; the engine turns its accumulated effects into a
/// [`TrapBill`] and a set of timed message sends.
#[derive(Debug)]
pub struct HandlerCtx<'a> {
    home: NodeId,
    nodes: usize,
    spec: ProtocolSpec,
    block: BlockAddr,
    /// The block's dense per-home interner id — the software
    /// directory's key (identity-hashed open addressing needs no
    /// `BlockAddr` hash).
    id: u32,
    hw: HwEntryMut<'a>,
    sw: &'a mut SwDirectory,
    // --- accumulated effects ---
    sends: Vec<QueuedSend>,
    ptrs_stored: usize,
    wrote_state: bool,
    used: ActivityFlags,
    extra: Vec<(Activity, u64)>,
    ack_counter: Option<u32>,
    invalidate_local: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct ActivityFlags {
    decode: bool,
    save_state: bool,
    mem_mgmt: bool,
    hash_admin: bool,
    non_alewife: bool,
}

impl<'a> HandlerCtx<'a> {
    #[cfg(test)]
    pub(crate) fn new(
        home: NodeId,
        nodes: usize,
        spec: ProtocolSpec,
        block: BlockAddr,
        hw: HwEntryMut<'a>,
        sw: &'a mut SwDirectory,
    ) -> Self {
        // Test fixtures have no interner; the block address doubles as
        // the dense id.
        let id = block.0 as u32;
        HandlerCtx::with_send_buf(home, nodes, spec, block, id, hw, sw, Vec::new())
    }

    /// Like [`HandlerCtx::new`], but the caller supplies the block's
    /// interned id and the send queue reuses a recycled buffer (the
    /// engine's message pool) so steady-state traps allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_send_buf(
        home: NodeId,
        nodes: usize,
        spec: ProtocolSpec,
        block: BlockAddr,
        id: u32,
        hw: HwEntryMut<'a>,
        sw: &'a mut SwDirectory,
        sends: Vec<QueuedSend>,
    ) -> Self {
        debug_assert!(sends.is_empty());
        HandlerCtx {
            home,
            nodes,
            spec,
            block,
            id,
            hw,
            sw,
            sends,
            ptrs_stored: 0,
            wrote_state: false,
            used: ActivityFlags::default(),
            extra: Vec::new(),
            ack_counter: None,
            invalidate_local: false,
        }
    }

    /// The node this handler runs on (the block's home).
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Machine size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The protocol being run.
    pub fn spec(&self) -> ProtocolSpec {
        self.spec
    }

    /// The block this trap concerns.
    pub fn block(&self) -> BlockAddr {
        self.block
    }

    // ---- hardware directory manipulation ----

    /// Decodes and (later) modifies the hardware directory entry.
    /// Handlers must call this before touching the entry; it charges
    /// the `decode and modify hardware directory` activity.
    pub fn decode_directory(&mut self) -> &mut HwEntryMut<'a> {
        self.used.decode = true;
        &mut self.hw
    }

    /// Read-only view of the hardware entry (free: the trap already
    /// received the decoded state from hardware).
    pub fn hw_entry(&self) -> &HwEntryMut<'a> {
        &self.hw
    }

    /// Empties all hardware pointers into the software directory
    /// (billed per pointer stored). Returns how many moved.
    ///
    /// On <= 64-node machines both sides store presence bitmasks, so
    /// the whole transfer is one word moved ([`HwEntryMut::take_ptr_mask`]
    /// into [`SwDirectory::record_reader_mask`]). On larger machines
    /// whose hardware table runs the word-parallel slab regime the
    /// transfer moves 64 presence bits per step ([`HwEntryMut::ptr_words`]
    /// ORed in place into [`SwDirectory::record_reader_words`]). Only
    /// the Fixed8 regime (> 64 nodes, <= 8 pointers) streams pointers
    /// one at a time — and it has at most 8 to move. No path allocates
    /// or copies through an intermediate buffer.
    pub fn drain_hw_to_sw(&mut self) -> usize {
        let HandlerCtx { hw, sw, id, .. } = self;
        let n = match hw.take_ptr_mask() {
            Some(mask) => sw.record_reader_mask(*id, mask),
            None => match hw
                .ptr_words()
                .map(|words| sw.record_reader_words(*id, words))
            {
                Some(n) => {
                    hw.clear_ptrs();
                    n
                }
                None => {
                    let n = hw.ptr_iter().filter(|&p| sw.record_reader(*id, p)).count();
                    hw.clear_ptrs();
                    n
                }
            },
        };
        self.ptrs_stored += n;
        n
    }

    /// Records one pointer in the software directory (billed per
    /// pointer).
    pub fn record_sw(&mut self, node: NodeId) {
        if self.sw.record_reader(self.id, node) {
            self.ptrs_stored += 1;
        }
    }

    /// Stores the handler's write-transaction state into the extended
    /// directory (the fixed `store pointers` cost of a write handler).
    pub fn store_write_state(&mut self) {
        self.wrote_state = true;
    }

    /// All sharers of the block — hardware pointers, software-extended
    /// pointers and (if set) the home node via its one-bit pointer —
    /// deduplicated. Requires [`HandlerCtx::hash_admin`]-style lookup,
    /// which is billed separately by the handler.
    pub fn sharers(&mut self) -> Vec<NodeId> {
        let mut all = Vec::new();
        self.sharers_into(&mut all);
        all
    }

    /// [`HandlerCtx::sharers`] into a caller-provided buffer (cleared
    /// first) — the engine's allocation-free path.
    pub fn sharers_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.hw.ptr_iter());
        self.sw.extend_readers(self.id, out);
        if self.hw.local_bit() {
            out.push(self.home);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Drops the software-extended record for the block (freeing it to
    /// the free list) and clears the overflow meta-state; the entry is
    /// back under pure hardware control.
    pub fn release_to_hardware(&mut self) {
        self.sw.clear_readers(self.id);
        self.hw.set_overflowed(false);
    }

    /// Requests invalidation of the home node's own cached copy (the
    /// one-bit local pointer, or the zero-pointer protocol's
    /// first-remote-access flush). Clears the local bit.
    pub fn invalidate_local(&mut self) {
        self.hw.set_local_bit(false);
        self.invalidate_local = true;
    }

    // ---- protocol message transmission ----

    /// Queues an invalidation to `dst` (billed per invalidation,
    /// transmitted sequentially).
    pub fn send_inv(&mut self, dst: NodeId) {
        self.sends.push(QueuedSend {
            dst,
            msg: ProtoMsg::Inv,
            is_inv: true,
        });
    }

    /// Queues a non-invalidation message (data grant, busy, …) to be
    /// transmitted after the handler's bookkeeping.
    pub fn send_msg(&mut self, dst: NodeId, msg: ProtoMsg) {
        self.sends.push(QueuedSend {
            dst,
            msg,
            is_inv: false,
        });
    }

    /// Hands the directory back to hardware in acknowledgment-
    /// collection mode: `n` acknowledgments outstanding for
    /// `requester`, which will be granted `upgrade`-style (permission
    /// only) or with data.
    pub fn arm_ack_counter(&mut self, n: u32) {
        self.ack_counter = Some(n);
    }

    // ---- billed flexible-interface services ----

    /// Saves processor state for C function calls (flexible interface
    /// overhead; free for the assembly implementation).
    pub fn save_state(&mut self) {
        self.used.save_state = true;
    }

    /// Uses the free-listing memory manager (allocation/free of
    /// extended directory records).
    pub fn memory_mgmt(&mut self) {
        self.used.mem_mgmt = true;
    }

    /// Administers the block → extended-record hash table.
    pub fn hash_admin(&mut self) {
        self.used.hash_admin = true;
    }

    /// The checks supporting simulator-only protocols.
    pub fn non_alewife_support(&mut self) {
        self.used.non_alewife = true;
    }

    /// Charges arbitrary extra cycles (for custom protocol handlers
    /// whose work has no Table 2 analogue).
    pub fn charge(&mut self, activity: Activity, cycles: u64) {
        self.extra.push((activity, cycles));
    }

    /// Number of invalidations queued so far.
    pub fn invs_queued(&self) -> usize {
        self.sends.iter().filter(|s| s.is_inv).count()
    }

    pub(crate) fn finish(
        self,
        kind: HandlerKind,
        is_write: bool,
        costs: &CostModel,
        small_opt: bool,
    ) -> (TrapBill, Vec<QueuedSend>, Option<u32>, bool) {
        let invs = self.sends.iter().filter(|s| s.is_inv).count();
        let extras = self.sends.len() - invs;
        let bill = costs.compose(
            kind,
            is_write,
            ComposeInputs {
                decode: self.used.decode,
                save_state: self.used.save_state,
                mem_mgmt: self.used.mem_mgmt,
                hash_admin: self.used.hash_admin,
                non_alewife: self.used.non_alewife,
                ptrs_stored: self.ptrs_stored,
                wrote_state: self.wrote_state,
                invs,
                data_sends: extras,
                extra: self.extra,
                small_opt,
            },
        );
        (bill, self.sends, self.ack_counter, self.invalidate_local)
    }
}

/// A software protocol extension handler: the code the CMMU traps to
/// when the hardware directory needs help.
///
/// Implementations receive a [`HandlerCtx`] whose services are billed
/// at measured costs; whatever they do through the context becomes
/// both the functional protocol behaviour and its price.
pub trait ExtensionHandler: std::fmt::Debug + Send {
    /// A read request from `from` overflowed the hardware pointer
    /// array. The hardware has already sent the data; the handler only
    /// needs to extend the directory.
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId);

    /// A write request from `from` hit a block whose directory has
    /// overflowed into software: look up every sharer, transmit
    /// invalidations, and hand the acknowledgment count back to
    /// hardware. `sharers` is pre-deduplicated and excludes `from`.
    /// Returns the number of acknowledgments to expect.
    fn write_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId, sharers: &[NodeId])
        -> u32;
}

/// The LimitLESS `S_{NB}` handler: software extends the directory to
/// all `n` pointers, never broadcasts.
#[derive(Clone, Copy, Debug, Default)]
pub struct LimitlessHandler;

impl ExtensionHandler for LimitlessHandler {
    fn read_overflow(&mut self, ctx: &mut HandlerCtx<'_>, from: NodeId) {
        ctx.decode_directory();
        ctx.save_state();
        ctx.memory_mgmt(); // allocate/locate the extension record
        ctx.hash_admin(); // find it again next time
        ctx.drain_hw_to_sw();
        ctx.record_sw(from);
        ctx.decode_directory().set_overflowed(true);
        ctx.non_alewife_support();
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        _from: NodeId,
        sharers: &[NodeId],
    ) -> u32 {
        ctx.decode_directory();
        ctx.save_state();
        ctx.memory_mgmt(); // free the extension record
        ctx.hash_admin();
        ctx.store_write_state();
        let mut acks = 0u32;
        for &s in sharers {
            if s == ctx.home() {
                // The home's own copy dies synchronously via the local
                // cache; no network round trip, no acknowledgment.
                ctx.invalidate_local();
            } else {
                ctx.send_inv(s);
                acks += 1;
            }
        }
        ctx.release_to_hardware();
        ctx.arm_ack_counter(acks);
        ctx.non_alewife_support();
        acks
    }
}

/// The `S_B` handler (Dir₁SW-style): software records nothing beyond
/// the hardware pointers and broadcasts invalidations to every node
/// when a write hits an overflowed block.
#[derive(Clone, Copy, Debug, Default)]
pub struct BroadcastHandler;

impl ExtensionHandler for BroadcastHandler {
    fn read_overflow(&mut self, _ctx: &mut HandlerCtx<'_>, _from: NodeId) {
        // Never called: in broadcast mode the hardware just sets the
        // overflow bit without trapping (Dir₁SW does not trap on read
        // requests).
        unreachable!("broadcast protocols do not trap on reads");
    }

    fn write_overflow(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        from: NodeId,
        _sharers: &[NodeId],
    ) -> u32 {
        ctx.decode_directory();
        ctx.store_write_state();
        let mut acks = 0u32;
        for i in 0..ctx.nodes() {
            let dst = NodeId::from_index(i);
            if dst == from {
                continue;
            }
            if dst == ctx.home() {
                ctx.invalidate_local();
                continue;
            }
            ctx.send_inv(dst);
            acks += 1;
        }
        ctx.release_to_hardware();
        ctx.arm_ack_counter(acks);
        acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HandlerImpl;
    use limitless_dir::HwDirTable;

    fn fixture() -> (HwDirTable, SwDirectory) {
        let mut t = HwDirTable::new(2);
        t.push_row();
        (t, SwDirectory::new())
    }

    #[test]
    fn limitless_read_overflow_extends_directory() {
        let (mut t, mut sw) = fixture();
        let mut hw = t.row_mut(0);
        hw.record_reader(NodeId(1));
        hw.record_reader(NodeId(2));
        let spec = ProtocolSpec::limitless(2);
        let mut ctx = HandlerCtx::new(NodeId(0), 16, spec, BlockAddr(7), hw, &mut sw);
        LimitlessHandler.read_overflow(&mut ctx, NodeId(3));
        let (bill, sends, counter, local) = ctx.finish(
            HandlerKind::ReadExtend,
            false,
            &CostModel::new(HandlerImpl::FlexibleC),
            false,
        );
        assert!(bill.total() > 0);
        assert!(sends.is_empty());
        assert_eq!(counter, None);
        assert!(!local);
        assert!(t.row(0).overflowed());
        assert_eq!(t.row(0).ptr_count(), 0);
        let readers = sw.readers_vec(7);
        assert_eq!(readers, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn limitless_write_overflow_invalidates_all_sharers() {
        let (mut t, mut sw) = fixture();
        let mut hw = t.row_mut(0);
        hw.set_overflowed(true);
        sw.record_reader(7, NodeId(1));
        sw.record_reader(7, NodeId(2));
        hw.record_reader(NodeId(3));
        let spec = ProtocolSpec::limitless(2);
        let mut ctx = HandlerCtx::new(NodeId(0), 16, spec, BlockAddr(7), hw, &mut sw);
        let sharers = ctx.sharers();
        let acks = LimitlessHandler.write_overflow(&mut ctx, NodeId(9), &sharers);
        assert_eq!(acks, 3);
        let (bill, sends, counter, _) = ctx.finish(
            HandlerKind::WriteExtend,
            true,
            &CostModel::new(HandlerImpl::FlexibleC),
            false,
        );
        assert_eq!(sends.iter().filter(|s| s.is_inv).count(), 3);
        assert_eq!(counter, Some(3));
        assert!(bill.total() > 0);
        assert!(!t.row(0).overflowed());
        assert_eq!(sw.reader_count(7), 0);
    }

    #[test]
    fn limitless_write_overflow_kills_local_copy_without_ack() {
        let (mut t, mut sw) = fixture();
        let mut hw = t.row_mut(0);
        hw.set_overflowed(true);
        hw.set_local_bit(true);
        sw.record_reader(7, NodeId(1));
        let spec = ProtocolSpec::limitless(2);
        let mut ctx = HandlerCtx::new(NodeId(0), 16, spec, BlockAddr(7), hw, &mut sw);
        let sharers = ctx.sharers();
        assert!(sharers.contains(&NodeId(0)));
        let acks = LimitlessHandler.write_overflow(&mut ctx, NodeId(9), &sharers);
        assert_eq!(acks, 1); // local copy invalidated synchronously
        let (_, _, _, local) = ctx.finish(
            HandlerKind::WriteExtend,
            true,
            &CostModel::new(HandlerImpl::FlexibleC),
            false,
        );
        assert!(local);
        assert!(!t.row(0).local_bit());
    }

    #[test]
    fn broadcast_write_invalidates_everyone_but_writer() {
        let (mut t, mut sw) = fixture();
        let mut hw = t.row_mut(0);
        hw.set_overflowed(true);
        let spec = ProtocolSpec::dir1_sw();
        let mut ctx = HandlerCtx::new(NodeId(0), 8, spec, BlockAddr(7), hw, &mut sw);
        let acks = BroadcastHandler.write_overflow(&mut ctx, NodeId(3), &[]);
        // 8 nodes minus the writer minus the home = 6 network invs.
        assert_eq!(acks, 6);
        let (_, sends, counter, local) = ctx.finish(
            HandlerKind::WriteExtend,
            true,
            &CostModel::new(HandlerImpl::FlexibleC),
            false,
        );
        assert_eq!(sends.len(), 6);
        assert!(local); // home's own copy handled locally
        assert_eq!(counter, Some(6));
        assert!(sends
            .iter()
            .all(|s| s.dst != NodeId(3) && s.dst != NodeId(0)));
    }

    #[test]
    fn sharers_deduplicates_hw_and_sw() {
        let (mut t, mut sw) = fixture();
        let mut hw = t.row_mut(0);
        hw.record_reader(NodeId(1));
        sw.record_reader(7, NodeId(1));
        sw.record_reader(7, NodeId(2));
        let spec = ProtocolSpec::limitless(2);
        let mut ctx = HandlerCtx::new(NodeId(0), 16, spec, BlockAddr(7), hw, &mut sw);
        assert_eq!(ctx.sharers(), vec![NodeId(1), NodeId(2)]);
        let mut buf = vec![NodeId(9)];
        ctx.sharers_into(&mut buf);
        assert_eq!(buf, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn custom_charges_show_up_in_the_bill() {
        let (mut t, mut sw) = fixture();
        let spec = ProtocolSpec::limitless(2);
        let mut ctx = HandlerCtx::new(NodeId(0), 16, spec, BlockAddr(7), t.row_mut(0), &mut sw);
        ctx.charge(Activity::DataTransmit, 123);
        let (bill, ..) = ctx.finish(
            HandlerKind::ReadExtend,
            false,
            &CostModel::new(HandlerImpl::FlexibleC),
            false,
        );
        assert!(bill.total() >= 123);
    }
}
