//! The unified per-block directory table, stored as struct-of-arrays.
//!
//! Each directory event used to consult up to five parallel
//! `HashMap<BlockAddr, …>`s; PR 1 collapsed them into one dense
//! `Vec<BlockState>` keyed by an interned id. This revision goes one
//! step further: the fat `BlockState` record is split into parallel
//! columns — the hardware entries live in a [`HwDirTable`] (packed
//! flag bits, sentinel-encoded options, one flat pointer slab), and
//! the engine-side booleans are packed into a one-byte bitset column
//! beside a sentinel-encoded owner-fetch column — so a directory event
//! touches a few adjacent bytes instead of a fat struct. Interning is
//! delegated to the machine-wide [`BlockInterner`], whose ids are
//! globally unique across homes and bit-identical between the serial
//! and sharded engines.
//!
//! [`BlockStateMut`]/[`BlockStateRef`] are row views: `hw` is a public
//! field exposing the hardware entry's method set, and the packed
//! engine flags are reached through accessors.

use limitless_dir::{HwDirTable, HwEntryMut, HwEntryRef};
use limitless_sim::{BlockAddr, BlockInterner, NodeId};

/// Bit positions in the packed per-block engine-flag column.
mod flag {
    /// Zero-pointer protocol: the block has been accessed by a remote
    /// node (the per-block extra bit of §2.3). Never reset.
    pub const REMOTE_ACCESSED: u8 = 1 << 0;
    /// The in-flight write transaction grants an upgrade (permission
    /// without data).
    pub const UPGRADE_PENDING: u8 = 1 << 1;
    /// The current write transaction was initiated by software
    /// (determines LACK/ACK behaviour on completion).
    pub const SW_TRANSACTION: u8 = 1 << 2;
}

/// Mutable row view: everything the home node tracks about one block.
#[derive(Debug)]
pub struct BlockStateMut<'a> {
    /// The hardware directory entry (state machine, pointer storage,
    /// local bit, overflow bit, transaction bookkeeping).
    pub hw: HwEntryMut<'a>,
    flags: &'a mut u8,
    owner_fetch: &'a mut NodeId,
}

impl<'a> BlockStateMut<'a> {
    /// Zero-pointer protocol: has a remote node ever accessed the
    /// block?
    #[inline]
    pub fn remote_accessed(&self) -> bool {
        *self.flags & flag::REMOTE_ACCESSED != 0
    }

    /// Marks the block as remotely accessed (never reset).
    #[inline]
    pub fn set_remote_accessed(&mut self) {
        *self.flags |= flag::REMOTE_ACCESSED;
    }

    /// Whether the in-flight write transaction grants an upgrade.
    #[inline]
    pub fn upgrade_pending(&self) -> bool {
        *self.flags & flag::UPGRADE_PENDING != 0
    }

    /// Sets or clears the upgrade-pending flag.
    #[inline]
    pub fn set_upgrade_pending(&mut self, v: bool) {
        if v {
            *self.flags |= flag::UPGRADE_PENDING;
        } else {
            *self.flags &= !flag::UPGRADE_PENDING;
        }
    }

    /// Reads and clears the upgrade-pending flag.
    #[inline]
    pub fn take_upgrade_pending(&mut self) -> bool {
        let v = self.upgrade_pending();
        self.set_upgrade_pending(false);
        v
    }

    /// Whether the current write transaction was initiated by software.
    #[inline]
    pub fn sw_transaction(&self) -> bool {
        *self.flags & flag::SW_TRANSACTION != 0
    }

    /// Sets or clears the software-transaction flag.
    #[inline]
    pub fn set_sw_transaction(&mut self, v: bool) {
        if v {
            *self.flags |= flag::SW_TRANSACTION;
        } else {
            *self.flags &= !flag::SW_TRANSACTION;
        }
    }

    /// The owner this block is waiting on for a Flush/Downgrade
    /// response, if any.
    #[inline]
    pub fn owner_fetch(&self) -> Option<NodeId> {
        self.owner_fetch.get()
    }

    /// Sets or clears the owner-fetch target.
    #[inline]
    pub fn set_owner_fetch(&mut self, o: Option<NodeId>) {
        *self.owner_fetch = NodeId::from_option(o);
    }

    /// Downgrades to a shared row view.
    #[inline]
    pub fn as_ref(&self) -> BlockStateRef<'_> {
        BlockStateRef {
            hw: self.hw.as_ref(),
            flags: *self.flags,
            owner_fetch: *self.owner_fetch,
        }
    }
}

/// Shared row view (the engine-flag bits are copied out by value).
#[derive(Clone, Copy, Debug)]
pub struct BlockStateRef<'a> {
    /// The hardware directory entry.
    pub hw: HwEntryRef<'a>,
    flags: u8,
    owner_fetch: NodeId,
}

impl<'a> BlockStateRef<'a> {
    /// Zero-pointer protocol: has a remote node ever accessed the
    /// block?
    #[inline]
    pub fn remote_accessed(&self) -> bool {
        self.flags & flag::REMOTE_ACCESSED != 0
    }

    /// Whether the in-flight write transaction grants an upgrade.
    #[inline]
    pub fn upgrade_pending(&self) -> bool {
        self.flags & flag::UPGRADE_PENDING != 0
    }

    /// Whether the current write transaction was initiated by software.
    #[inline]
    pub fn sw_transaction(&self) -> bool {
        self.flags & flag::SW_TRANSACTION != 0
    }

    /// The owner this block is waiting on for a Flush/Downgrade
    /// response, if any.
    #[inline]
    pub fn owner_fetch(&self) -> Option<NodeId> {
        self.owner_fetch.get()
    }
}

/// Dense, interned, column-oriented storage of per-block directory
/// state for one home node.
#[derive(Clone, Debug)]
pub struct DirectoryTable {
    interner: BlockInterner,
    hw: HwDirTable,
    flags: Vec<u8>,
    owner_fetch: Vec<NodeId>,
}

impl DirectoryTable {
    /// Creates an empty table for home `home` of `homes`, whose
    /// hardware entries have `capacity` pointers each (a per-machine
    /// constant: the protocol's pointer count). `homes` is the machine
    /// node count, which picks the hardware pointer-storage regime
    /// (bitmask on <= 64 nodes; see [`HwDirTable::with_nodes`]).
    pub fn new(capacity: usize, home: u32, homes: u32) -> Self {
        DirectoryTable {
            interner: BlockInterner::new(home, homes),
            hw: HwDirTable::with_nodes(capacity, homes as usize),
            flags: Vec::new(),
            owner_fetch: Vec::new(),
        }
    }

    /// A standalone single-home table (for tests and tools).
    pub fn solo(capacity: usize) -> Self {
        DirectoryTable::new(capacity, 0, 1)
    }

    /// Number of blocks ever touched.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether no block has been touched.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// The machine-wide interner segment backing this table.
    pub fn interner(&self) -> &BlockInterner {
        &self.interner
    }

    /// The uniform hardware pointer capacity.
    pub fn capacity(&self) -> usize {
        self.hw.capacity()
    }

    /// Interns `block`, creating fresh column rows on first touch.
    /// Returns the block's local id (dense per home; see
    /// [`BlockInterner::global_id`] for the machine-wide id).
    pub fn intern(&mut self, block: BlockAddr) -> u32 {
        let (id, new) = self.interner.intern(block);
        if new {
            let row = self.hw.push_row();
            debug_assert_eq!(row, id);
            self.flags.push(0);
            self.owner_fetch.push(NodeId::NONE);
        }
        id
    }

    /// The interned id for `block`, if it has ever been touched.
    pub fn id_of(&self, block: BlockAddr) -> Option<u32> {
        self.interner.id_of(block)
    }

    /// Forgets every block while keeping the home parameters and the
    /// column capacity — the machine-reuse reset path. Ids restart at
    /// 0 in first-touch order, so a cleared table replaying the same
    /// event sequence reproduces the same id assignment (and the same
    /// interner fingerprint) as a freshly constructed one.
    pub fn clear(&mut self) {
        self.interner.clear();
        self.hw.clear();
        self.flags.clear();
        self.owner_fetch.clear();
    }

    /// Iterates every touched block in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, u32, BlockStateRef<'_>)> + '_ {
        self.interner
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i as u32, self.state(i as u32)))
    }

    /// Mutable row view for an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`DirectoryTable::intern`].
    #[inline]
    pub fn state_mut(&mut self, id: u32) -> BlockStateMut<'_> {
        BlockStateMut {
            hw: self.hw.row_mut(id),
            flags: &mut self.flags[id as usize],
            owner_fetch: &mut self.owner_fetch[id as usize],
        }
    }

    /// Shared row view for an interned id.
    #[inline]
    pub fn state(&self, id: u32) -> BlockStateRef<'_> {
        BlockStateRef {
            hw: self.hw.row(id),
            flags: self.flags[id as usize],
            owner_fetch: self.owner_fetch[id as usize],
        }
    }

    /// One-lookup combined intern + fetch.
    pub fn entry(&mut self, block: BlockAddr) -> BlockStateMut<'_> {
        let id = self.intern(block);
        self.state_mut(id)
    }

    /// Read-only lookup without interning (for `&self` queries on
    /// blocks that may never have been touched).
    pub fn get(&self, block: BlockAddr) -> Option<BlockStateRef<'_>> {
        self.interner.id_of(block).map(|id| self.state(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = DirectoryTable::solo(5);
        let a = t.intern(BlockAddr(10));
        let b = t.intern(BlockAddr(20));
        assert_ne!(a, b);
        assert_eq!(t.intern(BlockAddr(10)), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_state_is_inert() {
        let mut t = DirectoryTable::solo(3);
        let st = t.entry(BlockAddr(1));
        assert!(!st.remote_accessed());
        assert!(!st.upgrade_pending());
        assert!(st.owner_fetch().is_none());
        assert!(!st.sw_transaction());
        assert_eq!(st.hw.ptr_count(), 0);
    }

    #[test]
    fn iteration_follows_interning_order() {
        let mut t = DirectoryTable::solo(5);
        t.intern(BlockAddr(10));
        t.intern(BlockAddr(20));
        let seen: Vec<_> = t.iter().map(|(b, id, _)| (b, id)).collect();
        assert_eq!(seen, vec![(BlockAddr(10), 0), (BlockAddr(20), 1)]);
        assert_eq!(t.id_of(BlockAddr(20)), Some(1));
        assert_eq!(t.id_of(BlockAddr(30)), None);
    }

    #[test]
    fn state_persists_across_lookups() {
        let mut t = DirectoryTable::solo(3);
        t.entry(BlockAddr(1)).set_remote_accessed();
        t.entry(BlockAddr(2)).set_owner_fetch(Some(NodeId(7)));
        assert!(t.get(BlockAddr(1)).unwrap().remote_accessed());
        assert_eq!(t.get(BlockAddr(2)).unwrap().owner_fetch(), Some(NodeId(7)));
        assert!(t.get(BlockAddr(3)).is_none());
    }

    #[test]
    fn packed_flags_are_independent() {
        let mut t = DirectoryTable::solo(2);
        let mut st = t.entry(BlockAddr(9));
        st.set_remote_accessed();
        st.set_upgrade_pending(true);
        st.set_sw_transaction(true);
        assert!(st.remote_accessed() && st.upgrade_pending() && st.sw_transaction());
        assert!(st.take_upgrade_pending());
        assert!(!st.upgrade_pending());
        assert!(st.remote_accessed() && st.sw_transaction());
        st.set_sw_transaction(false);
        assert!(st.remote_accessed());
        let shared = st.as_ref();
        assert!(shared.remote_accessed() && !shared.sw_transaction());
    }

    #[test]
    fn ids_reach_the_machine_wide_space() {
        let mut t = DirectoryTable::new(5, 2, 8);
        let a = t.intern(BlockAddr(40));
        assert_eq!(t.interner().global_id(a), 2);
        let b = t.intern(BlockAddr(48));
        assert_eq!(t.interner().global_id(b), 10);
    }
}
