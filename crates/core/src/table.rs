//! The unified per-block directory table.
//!
//! Each directory event used to consult up to five parallel
//! `HashMap<BlockAddr, …>`s (hardware entry, zero-pointer
//! remote-access bit, upgrade-pending flag, owner-fetch target,
//! software-transaction flag). `DirectoryTable` collapses them into a
//! single [`BlockState`] record held in dense storage and keyed by an
//! interned block id, so one lookup pins down everything the engine
//! knows about a block. The interning map uses the deterministic
//! [`FxHashMap`] — one fast hash per event instead of up to five
//! SipHash probes.

use limitless_dir::HwDirEntry;
use limitless_sim::{BlockAddr, FxHashMap, NodeId};

/// Everything the home node tracks about one block.
#[derive(Clone, Debug)]
pub struct BlockState {
    /// The hardware directory entry (state machine, pointer array,
    /// local bit, overflow bit, transaction bookkeeping).
    pub hw: HwDirEntry,
    /// Zero-pointer protocol: the block has been accessed by a remote
    /// node (the per-block extra bit of §2.3). Never reset.
    pub remote_accessed: bool,
    /// The in-flight write transaction grants an upgrade (permission
    /// without data).
    pub upgrade_pending: bool,
    /// The owner this block is waiting on for a Flush/Downgrade
    /// response, if any.
    pub owner_fetch: Option<NodeId>,
    /// The current write transaction was initiated by software
    /// (determines LACK/ACK behaviour on completion).
    pub sw_transaction: bool,
}

impl BlockState {
    fn new(capacity: usize) -> Self {
        BlockState {
            hw: HwDirEntry::new(capacity),
            remote_accessed: false,
            upgrade_pending: false,
            owner_fetch: None,
            sw_transaction: false,
        }
    }
}

/// Dense, interned storage of [`BlockState`] records for one home
/// node.
///
/// Block addresses are interned to consecutive `u32` ids on first
/// touch; the ids index a dense `Vec`, so repeated events on the same
/// block (the common case — coherence traffic is bursty per block)
/// cost one hash and one bounds-checked index.
#[derive(Clone, Debug, Default)]
pub struct DirectoryTable {
    ids: FxHashMap<BlockAddr, u32>,
    states: Vec<BlockState>,
    blocks: Vec<BlockAddr>,
}

impl DirectoryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DirectoryTable::default()
    }

    /// Number of blocks ever touched.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no block has been touched.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Interns `block`, creating a fresh [`BlockState`] with hardware
    /// pointer capacity `capacity` on first touch.
    pub fn intern(&mut self, block: BlockAddr, capacity: usize) -> u32 {
        if let Some(&id) = self.ids.get(&block) {
            return id;
        }
        let id = u32::try_from(self.states.len()).expect("more than 2^32 blocks interned");
        self.ids.insert(block, id);
        self.states.push(BlockState::new(capacity));
        self.blocks.push(block);
        id
    }

    /// The interned id for `block`, if it has ever been touched.
    pub fn id_of(&self, block: BlockAddr) -> Option<u32> {
        self.ids.get(&block).copied()
    }

    /// Iterates every touched block in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, u32, &BlockState)> + '_ {
        self.blocks
            .iter()
            .zip(&self.states)
            .enumerate()
            .map(|(i, (&b, st))| (b, i as u32, st))
    }

    /// The state for an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`DirectoryTable::intern`].
    pub fn state_mut(&mut self, id: u32) -> &mut BlockState {
        &mut self.states[id as usize]
    }

    /// Shared view of the state for an interned id.
    pub fn state(&self, id: u32) -> &BlockState {
        &self.states[id as usize]
    }

    /// One-lookup combined intern + fetch.
    pub fn entry(&mut self, block: BlockAddr, capacity: usize) -> &mut BlockState {
        let id = self.intern(block, capacity);
        &mut self.states[id as usize]
    }

    /// Read-only lookup without interning (for `&self` queries on
    /// blocks that may never have been touched).
    pub fn get(&self, block: BlockAddr) -> Option<&BlockState> {
        self.ids.get(&block).map(|&id| &self.states[id as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = DirectoryTable::new();
        let a = t.intern(BlockAddr(10), 5);
        let b = t.intern(BlockAddr(20), 5);
        assert_ne!(a, b);
        assert_eq!(t.intern(BlockAddr(10), 5), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_state_is_inert() {
        let mut t = DirectoryTable::new();
        let st = t.entry(BlockAddr(1), 3);
        assert!(!st.remote_accessed);
        assert!(!st.upgrade_pending);
        assert!(st.owner_fetch.is_none());
        assert!(!st.sw_transaction);
        assert_eq!(st.hw.ptr_count(), 0);
    }

    #[test]
    fn iteration_follows_interning_order() {
        let mut t = DirectoryTable::new();
        t.intern(BlockAddr(10), 5);
        t.intern(BlockAddr(20), 5);
        let seen: Vec<_> = t.iter().map(|(b, id, _)| (b, id)).collect();
        assert_eq!(seen, vec![(BlockAddr(10), 0), (BlockAddr(20), 1)]);
        assert_eq!(t.id_of(BlockAddr(20)), Some(1));
        assert_eq!(t.id_of(BlockAddr(30)), None);
    }

    #[test]
    fn state_persists_across_lookups() {
        let mut t = DirectoryTable::new();
        t.entry(BlockAddr(1), 3).remote_accessed = true;
        t.entry(BlockAddr(2), 3).owner_fetch = Some(NodeId(7));
        assert!(t.get(BlockAddr(1)).unwrap().remote_accessed);
        assert_eq!(t.get(BlockAddr(2)).unwrap().owner_fetch, Some(NodeId(7)));
        assert!(t.get(BlockAddr(3)).is_none());
    }
}
