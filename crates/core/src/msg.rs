//! The coherence message vocabulary.
//!
//! These are the payloads that travel between CMMUs. Message size on
//! the wire is determined by whether a memory block rides along
//! ([`ProtoMsg::flits`]).

use limitless_net::FlitCount;
use limitless_sim::BlockAddr;

/// A coherence protocol message concerning one memory block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtoMsg {
    /// Requester → home: read miss.
    ReadReq,
    /// Requester → home: write miss or upgrade request.
    WriteReq,
    /// Home → requester: read-only data.
    ReadData,
    /// Home → requester: exclusive data (write permission).
    WriteData,
    /// Home → requester: write permission without data (requester
    /// already holds the line `Shared`).
    UpgradeAck,
    /// Home → requester: directory busy with a transaction on this
    /// block; retry later. Alewife's livelock-free alternative to
    /// queueing requests at the home.
    Busy,
    /// Home → sharer: invalidate your read-only copy and acknowledge.
    Inv,
    /// Sharer → home: invalidation acknowledgment.
    InvAck,
    /// Home → owner: return the dirty data and invalidate (a writer is
    /// waiting).
    Flush,
    /// Owner → home: flush response. `had_data` is false if the owner
    /// had already written the line back (the stale-message case).
    FlushAck {
        /// Whether the message carries the dirty block.
        had_data: bool,
    },
    /// Home → owner: return the dirty data but keep a read-only copy
    /// (a reader is waiting).
    Downgrade,
    /// Owner → home: downgrade response (see [`ProtoMsg::FlushAck`]
    /// about `had_data`).
    DowngradeAck {
        /// Whether the message carries the dirty block.
        had_data: bool,
    },
    /// Owner → home: unsolicited writeback of a dirty line being
    /// replaced.
    Wb,
}

impl ProtoMsg {
    /// The size of this message on the wire.
    pub fn flits(self) -> FlitCount {
        match self {
            ProtoMsg::ReadData
            | ProtoMsg::WriteData
            | ProtoMsg::Wb
            | ProtoMsg::FlushAck { had_data: true }
            | ProtoMsg::DowngradeAck { had_data: true } => FlitCount::DATA,
            _ => FlitCount::CONTROL,
        }
    }

    /// Whether this message is a request that may be answered with
    /// [`ProtoMsg::Busy`].
    pub fn is_request(self) -> bool {
        matches!(self, ProtoMsg::ReadReq | ProtoMsg::WriteReq)
    }
}

/// A coherence message bound to its block: the unit the machine layer
/// moves through the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMsg {
    /// The memory block this message concerns.
    pub block: BlockAddr,
    /// The protocol message.
    pub msg: ProtoMsg,
}

impl BlockMsg {
    /// Creates a block-bound message.
    pub fn new(block: BlockAddr, msg: ProtoMsg) -> Self {
        BlockMsg { block, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_carrying_messages_are_data_sized() {
        assert_eq!(ProtoMsg::ReadData.flits(), FlitCount::DATA);
        assert_eq!(ProtoMsg::WriteData.flits(), FlitCount::DATA);
        assert_eq!(ProtoMsg::Wb.flits(), FlitCount::DATA);
        assert_eq!(
            ProtoMsg::FlushAck { had_data: true }.flits(),
            FlitCount::DATA
        );
        assert_eq!(
            ProtoMsg::DowngradeAck { had_data: false }.flits(),
            FlitCount::CONTROL
        );
    }

    #[test]
    fn control_messages_are_control_sized() {
        for m in [
            ProtoMsg::ReadReq,
            ProtoMsg::WriteReq,
            ProtoMsg::UpgradeAck,
            ProtoMsg::Busy,
            ProtoMsg::Inv,
            ProtoMsg::InvAck,
            ProtoMsg::Flush,
            ProtoMsg::Downgrade,
        ] {
            assert_eq!(m.flits(), FlitCount::CONTROL, "{m:?}");
        }
    }

    #[test]
    fn only_read_write_reqs_are_requests() {
        assert!(ProtoMsg::ReadReq.is_request());
        assert!(ProtoMsg::WriteReq.is_request());
        assert!(!ProtoMsg::Inv.is_request());
        assert!(!ProtoMsg::Busy.is_request());
    }

    #[test]
    fn block_msg_binds_block() {
        let m = BlockMsg::new(BlockAddr(9), ProtoMsg::Inv);
        assert_eq!(m.block, BlockAddr(9));
        assert_eq!(m.msg, ProtoMsg::Inv);
    }
}
