//! The home-side coherence engine: one per node, owning the directory
//! entries for the blocks whose home is that node.
//!
//! The engine is the CMMU's protocol state machine plus the trap
//! boundary into extension software. It is *timing-annotated but
//! time-free*: given a protocol event it returns an [`Outcome`]
//! describing the messages to send (with relative timing), whether the
//! home's own cache must invalidate a line, and the [`TrapBill`] of
//! any software handler that ran. The machine layer turns outcomes
//! into scheduled events and processor occupancy.

use limitless_dir::{HwState, PtrStoreOutcome, SwDirectory};
use limitless_sim::{BlockAddr, MessagePool, NodeId};

use crate::check::{CheckLevel, EventHistory, HistoryRecord};
use crate::cost::{CostModel, HandlerImpl, HandlerKind, TrapBill};
use crate::iface::{BroadcastHandler, ExtensionHandler, HandlerCtx, LimitlessHandler, QueuedSend};
use crate::msg::ProtoMsg;
use crate::spec::{AckMode, ProtocolSpec, SwMode};
use crate::table::DirectoryTable;

/// Fixed hardware latencies of the CMMU datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwTiming {
    /// Directory lookup / state-machine transition.
    pub dir_cycles: u64,
    /// DRAM access to read or write a memory block.
    pub dram_cycles: u64,
    /// Per-message pacing when hardware transmits a burst of
    /// invalidations.
    pub inv_pipeline: u64,
}

impl Default for HwTiming {
    fn default() -> Self {
        HwTiming {
            dir_cycles: 4,
            dram_cycles: 10,
            inv_pipeline: 2,
        }
    }
}

/// A protocol event arriving at a home node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirEvent {
    /// A read request (cache-miss fill).
    Read {
        /// Requesting node.
        from: NodeId,
    },
    /// A write request (write miss or upgrade).
    Write {
        /// Requesting node.
        from: NodeId,
    },
    /// An invalidation acknowledgment.
    InvAck {
        /// Acknowledging node.
        from: NodeId,
    },
    /// The owner's response to a `Flush` or `Downgrade`.
    OwnerAck {
        /// Responding node.
        from: NodeId,
        /// Whether the response carried the dirty block.
        had_data: bool,
        /// True for `DowngradeAck` (owner keeps a shared copy), false
        /// for `FlushAck`.
        downgrade: bool,
    },
    /// An unsolicited writeback of a replaced dirty line.
    Writeback {
        /// The evicting owner.
        from: NodeId,
    },
}

/// When a message produced by the engine actually leaves the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendTiming {
    /// Sent by hardware: `offset` cycles after the event is processed.
    Hw {
        /// Cycles after event processing starts.
        offset: u64,
    },
    /// Sent by the software handler: `offset` cycles after the handler
    /// begins running on the home processor.
    Sw {
        /// Cycles after handler start.
        offset: u64,
    },
}

/// One outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Send {
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: ProtoMsg,
    /// When it departs.
    pub timing: SendTiming,
}

/// The outgoing messages of one [`Outcome`].
///
/// A small-buffer list: the common case (zero to a handful of sends —
/// a data reply, a few hardware invalidations) lives inline with no
/// heap allocation, which matters because every protocol event on the
/// simulator's hottest path builds one of these. Bursts larger than
/// the inline capacity (full-map invalidations, broadcasts) spill to a
/// `Vec`. Derefs to `[Send]`, so indexing, `len` and iteration read
/// like a slice.
#[derive(Clone, Debug)]
pub enum SendList {
    /// Up to `INLINE` sends stored in place.
    Inline {
        /// The storage; only `..len` is meaningful.
        buf: [Send; SendList::INLINE],
        /// Number of live entries.
        len: u8,
    },
    /// Spilled storage for large bursts.
    Heap(Vec<Send>),
}

impl SendList {
    /// Inline capacity: covers a data reply plus the deepest
    /// hardware-invalidation burst of the five-pointer protocol.
    pub const INLINE: usize = 6;

    const DUMMY: Send = Send {
        dst: NodeId(0),
        msg: ProtoMsg::ReadReq,
        timing: SendTiming::Hw { offset: 0 },
    };

    /// Appends a send, spilling to the heap when the inline buffer
    /// fills.
    pub fn push(&mut self, s: Send) {
        match self {
            SendList::Inline { buf, len } => {
                let l = usize::from(*len);
                if l < SendList::INLINE {
                    buf[l] = s;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * SendList::INLINE);
                    v.extend_from_slice(buf);
                    v.push(s);
                    *self = SendList::Heap(v);
                }
            }
            SendList::Heap(v) => v.push(s),
        }
    }

    /// Moves the list to heap storage backed by `spare` (an empty
    /// recycled vector) when appending `extra` more sends would spill
    /// the inline buffer; hands `spare` back unused otherwise. Lets
    /// the engine source burst storage from its recycling pool instead
    /// of a fresh allocation.
    pub(crate) fn spill_into(&mut self, spare: Vec<Send>, extra: usize) -> Option<Vec<Send>> {
        debug_assert!(spare.is_empty());
        match self {
            SendList::Inline { buf, len } if usize::from(*len) + extra > SendList::INLINE => {
                let mut v = spare;
                v.extend_from_slice(&buf[..usize::from(*len)]);
                *self = SendList::Heap(v);
                None
            }
            _ => Some(spare),
        }
    }
}

impl Default for SendList {
    fn default() -> Self {
        SendList::Inline {
            buf: [SendList::DUMMY; SendList::INLINE],
            len: 0,
        }
    }
}

impl std::ops::Deref for SendList {
    type Target = [Send];
    fn deref(&self) -> &[Send] {
        match self {
            SendList::Inline { buf, len } => &buf[..usize::from(*len)],
            SendList::Heap(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a SendList {
    type Item = &'a Send;
    type IntoIter = std::slice::Iter<'a, Send>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The result of handling one directory event.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Messages to transmit.
    pub sends: SendList,
    /// The home node must invalidate this block in its own cache
    /// (one-bit local pointer invalidation, or the zero-pointer
    /// protocol's first-remote-access flush). Dirty data is written
    /// to local memory synchronously.
    pub invalidate_local: bool,
    /// The software handler that ran, if any: the home processor is
    /// occupied for `trap.total()` cycles.
    pub trap: Option<TrapBill>,
    /// Hardware processing cycles for this event (directory + DRAM as
    /// applicable), charged before any `SendTiming::Hw` offsets.
    pub hw_cycles: u64,
    /// The event was stale (e.g. a `FlushAck` that raced with a
    /// writeback) and was ignored.
    pub stale: bool,
}

impl Outcome {
    fn hw_send(&mut self, dst: NodeId, msg: ProtoMsg, offset: u64) {
        self.sends.push(Send {
            dst,
            msg,
            timing: SendTiming::Hw { offset },
        });
    }

    /// Clears the outcome for reuse without releasing its storage: a
    /// heap-spilled send list keeps its capacity, so a caller that
    /// feeds the same `Outcome` back into
    /// [`DirEngine::handle_into`] performs no per-event allocation
    /// *and* no per-event copy of this (large) struct.
    pub fn reset(&mut self) {
        match &mut self.sends {
            SendList::Inline { len, .. } => *len = 0,
            SendList::Heap(v) => v.clear(),
        }
        self.invalidate_local = false;
        self.trap = None;
        self.hw_cycles = 0;
        self.stale = false;
    }
}

/// Counters describing protocol behaviour at one home node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Read requests processed.
    pub read_reqs: u64,
    /// Write requests processed.
    pub write_reqs: u64,
    /// Software traps, total.
    pub traps: u64,
    /// Read-overflow traps.
    pub read_extend_traps: u64,
    /// Write-overflow traps.
    pub write_extend_traps: u64,
    /// Per-acknowledgment traps.
    pub ack_traps: u64,
    /// Last-acknowledgment traps.
    pub last_ack_traps: u64,
    /// Software BUSY bounces.
    pub busy_traps: u64,
    /// Cycles the home processor spent in protocol handlers.
    pub trap_cycles: u64,
    /// Invalidations transmitted (hardware and software).
    pub invs_sent: u64,
    /// BUSY replies (hardware and software).
    pub busys_sent: u64,
    /// Stale messages ignored.
    pub stale_msgs: u64,
}

/// The per-node directory engine.
///
/// # Examples
///
/// ```
/// use limitless_core::{DirEngine, DirEvent, ProtocolSpec};
/// use limitless_core::cost::HandlerImpl;
/// use limitless_sim::{BlockAddr, NodeId};
///
/// let mut home = DirEngine::new(NodeId(0), 16, ProtocolSpec::limitless(5), HandlerImpl::FlexibleC);
/// let out = home.handle(BlockAddr(42), DirEvent::Read { from: NodeId(3) });
/// // An uncached block: the hardware answers with data, no trap.
/// assert_eq!(out.sends.len(), 1);
/// assert!(out.trap.is_none());
/// ```
#[derive(Debug)]
pub struct DirEngine {
    home: NodeId,
    nodes: usize,
    spec: ProtocolSpec,
    costs: CostModel,
    timing: HwTiming,
    /// All per-block state — hardware entry, zero-pointer
    /// remote-access bit, upgrade/owner-fetch/software-transaction
    /// bookkeeping — in one interned record per block.
    table: DirectoryTable,
    sw: SwDirectory,
    handler: Box<dyn ExtensionHandler>,
    stats: EngineStats,
    /// Scratch sharer set reused across events: invalidation rounds
    /// collect their targets here instead of allocating.
    scratch_sharers: Vec<NodeId>,
    /// Recycled handler send queues ([`HandlerCtx::with_send_buf`]).
    send_pool: MessagePool<QueuedSend>,
    /// Recycled heap storage for spilled [`SendList`]s; refilled by
    /// [`DirEngine::recycle`].
    spill_pool: MessagePool<Send>,
    /// Sanitizer level. At `Off` (the default) the only cost is one
    /// predictable branch per event.
    check: CheckLevel,
    /// Bounded per-block event history, populated only while the
    /// sanitizer is enabled; dumped on invariant-violation panics.
    history: EventHistory,
}

impl DirEngine {
    /// Creates the engine for `home` in a machine of `nodes` nodes.
    pub fn new(home: NodeId, nodes: usize, spec: ProtocolSpec, imp: HandlerImpl) -> Self {
        let handler: Box<dyn ExtensionHandler> = match spec.sw {
            SwMode::NoBroadcast => Box::new(LimitlessHandler),
            SwMode::Broadcast => Box::new(BroadcastHandler),
        };
        DirEngine {
            home,
            nodes,
            spec,
            costs: CostModel::new(imp),
            timing: HwTiming::default(),
            table: DirectoryTable::new(spec.capacity(nodes), u32::from(home.0), nodes as u32),
            sw: SwDirectory::for_nodes(nodes),
            handler: Box::new(LimitlessHandler),
            stats: EngineStats::default(),
            scratch_sharers: Vec::new(),
            send_pool: MessagePool::new(),
            spill_pool: MessagePool::new(),
            check: CheckLevel::Off,
            history: EventHistory::new(),
        }
        .with_handler(handler)
    }

    fn with_handler(mut self, h: Box<dyn ExtensionHandler>) -> Self {
        self.handler = h;
        self
    }

    /// Replaces the extension handler with a custom protocol (the §7
    /// enhancement hook).
    pub fn set_handler(&mut self, h: Box<dyn ExtensionHandler>) {
        self.handler = h;
    }

    /// Reinitializes the engine in place for a fresh run: the
    /// directory table (interner + hardware columns), the software
    /// extension, the statistics and the diagnostic history all return
    /// to their just-constructed state, while the column vectors, the
    /// open-addressed extension slots and the recycled send/spill
    /// pools keep their capacity. A reset engine replaying the same
    /// event sequence is bit-identical to a freshly constructed one —
    /// including the interner fingerprint — which the machine-level
    /// reset property test asserts. A custom [`ExtensionHandler`]
    /// installed via [`DirEngine::set_handler`] is replaced by the
    /// spec's default handler, exactly as construction would.
    pub fn reset(&mut self) {
        self.table.clear();
        self.sw.clear();
        self.handler = match self.spec.sw {
            SwMode::NoBroadcast => Box::new(LimitlessHandler),
            SwMode::Broadcast => Box::new(BroadcastHandler),
        };
        self.stats = EngineStats::default();
        self.scratch_sharers.clear();
        self.history.clear();
    }

    /// Sets the coherence-sanitizer level (default
    /// [`CheckLevel::Off`]). When enabled, every event is followed by
    /// a directory-invariant validation pass and recorded in a bounded
    /// per-block history that violation panics dump.
    pub fn set_check_level(&mut self, level: CheckLevel) {
        self.check = level;
    }

    /// The protocol this engine runs.
    pub fn spec(&self) -> ProtocolSpec {
        self.spec
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Live software-extension records (for memory-overhead studies).
    pub fn sw_entries(&self) -> usize {
        self.sw.live_entries()
    }

    /// Order-sensitive fingerprint of this home's block-id assignment
    /// (see [`limitless_sim::BlockInterner::fingerprint`]): serial and
    /// sharded runs must agree exactly, which the cross-engine
    /// property tests assert.
    pub fn interner_fingerprint(&self) -> u64 {
        self.table.interner().fingerprint()
    }

    /// Zero-pointer protocol: whether `block` still qualifies for the
    /// uniprocessor fast path (never accessed by a remote node). For
    /// all other protocols this returns `false` — they have real
    /// hardware directories and take the normal path.
    pub fn local_fast_path(&self, block: BlockAddr) -> bool {
        self.spec.hw_ptrs == 0
            && !self.spec.full_map
            && !self.table.get(block).is_some_and(|st| st.remote_accessed())
    }

    /// Whether every event on this protocol traps to software (the
    /// software-only directory).
    fn all_software(&self) -> bool {
        self.spec.hw_ptrs == 0 && !self.spec.full_map
    }

    /// The current sharer count visible to the directory (hardware +
    /// software + local bit), for tests and instrumentation.
    pub fn sharer_count(&self, block: BlockAddr) -> usize {
        let Some(id) = self.table.id_of(block) else {
            return 0;
        };
        let st = self.table.state(id);
        let mut set: Vec<NodeId> = st.hw.ptrs_vec();
        self.sw.extend_readers(id, &mut set);
        if st.hw.local_bit() {
            set.push(self.home);
        }
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Handles one protocol event for `block`, returning what must
    /// happen.
    ///
    /// The block is interned exactly once here — one hash probe —
    /// and every helper then reaches the block's
    /// [`crate::table::BlockStateMut`] row by dense index.
    ///
    /// # Panics
    ///
    /// Panics on protocol-invariant violations (e.g. an
    /// acknowledgment when none is outstanding), which indicate
    /// simulator bugs rather than recoverable conditions.
    pub fn handle(&mut self, block: BlockAddr, event: DirEvent) -> Outcome {
        let mut out = Outcome::default();
        self.handle_into(block, event, &mut out);
        out
    }

    /// [`DirEngine::handle`] without the by-value return: the outcome
    /// is built in `out` (which is [`Outcome::reset`] first). Hot-path
    /// callers keep one `Outcome` alive across events so neither the
    /// ~300-byte struct copy nor the re-initialization of its inline
    /// send buffer is paid per event, and a send list that once
    /// spilled to the heap keeps servicing later bursts from the same
    /// allocation.
    pub fn handle_into(&mut self, block: BlockAddr, event: DirEvent, out: &mut Outcome) {
        out.reset();
        let id = self.table.intern(block);
        self.dispatch(block, id, event, out);
        if self.check.enabled() {
            self.record_and_validate(block, id, event, out);
        }
    }

    /// Returns an outcome's heap-spilled send storage to the engine's
    /// recycling pool. Hot-path callers (the machine's trap boundary,
    /// the micro-benchmarks) hand outcomes back after consuming them
    /// so steady-state operation performs zero payload allocations.
    pub fn recycle(&mut self, out: Outcome) {
        if let SendList::Heap(v) = out.sends {
            self.spill_pool.put(v);
        }
    }

    #[inline]
    fn dispatch(&mut self, block: BlockAddr, id: u32, event: DirEvent, out: &mut Outcome) {
        match event {
            DirEvent::Read { from } => self.handle_read(block, id, from, out),
            DirEvent::Write { from } => self.handle_write(block, id, from, out),
            DirEvent::InvAck { from } => self.handle_inv_ack(id, from, out),
            DirEvent::OwnerAck {
                from,
                had_data,
                downgrade,
            } => self.handle_owner_ack(block, id, from, had_data, downgrade, out),
            DirEvent::Writeback { from } => self.handle_writeback(block, id, from, out),
        }
    }

    // ---------------------------------------------------------- reads

    fn handle_read(&mut self, block: BlockAddr, id: u32, from: NodeId, out: &mut Outcome) {
        self.stats.read_reqs += 1;
        let all_sw = self.all_software();
        let home = self.home;
        let spec = self.spec;
        let timing = self.timing;
        let mut st = self.table.state_mut(id);
        let first_remote = all_sw && from != home && !st.remote_accessed();
        if all_sw {
            st.set_remote_accessed();
        }

        match st.hw.state() {
            HwState::Uncached | HwState::ReadOnly => {
                st.hw.set_state(HwState::ReadOnly);
                let data_off = timing.dir_cycles + timing.dram_cycles;
                if from == home && spec.local_bit {
                    // The dedicated one-bit pointer: the home's own
                    // copy never consumes (or overflows) the pointer
                    // array.
                    st.hw.set_local_bit(true);
                    out.hw_send(from, ProtoMsg::ReadData, data_off);
                    out.hw_cycles = timing.dir_cycles;
                    return;
                }
                match st.hw.record_reader(from) {
                    PtrStoreOutcome::Stored if !all_sw => {
                        out.hw_send(from, ProtoMsg::ReadData, data_off);
                        out.hw_cycles = timing.dir_cycles;
                    }
                    _ => {
                        // Overflow (or the software-only directory,
                        // where every access extends in software).
                        if spec.sw == SwMode::Broadcast {
                            // Dir₁SW never traps on reads: hardware
                            // just sets the broadcast bit.
                            st.hw.set_overflowed(true);
                            out.hw_send(from, ProtoMsg::ReadData, data_off);
                            out.hw_cycles = timing.dir_cycles;
                        } else {
                            // The hardware still returns the data; the
                            // software only records the request.
                            out.hw_send(from, ProtoMsg::ReadData, data_off);
                            out.hw_cycles = timing.dir_cycles;
                            if first_remote {
                                out.invalidate_local = true;
                            }
                            self.run_read_overflow(block, id, from, out);
                        }
                    }
                }
            }
            HwState::ReadWrite => {
                let owner = st.hw.owner().expect("ReadWrite entry without owner");
                if owner == from {
                    // Under FIFO delivery the owner's writeback always
                    // precedes its next request, so this indicates the
                    // owner silently lost the line; re-grant data.
                    out.hw_send(
                        from,
                        ProtoMsg::ReadData,
                        timing.dir_cycles + timing.dram_cycles,
                    );
                    out.hw_cycles = timing.dir_cycles;
                } else {
                    st.hw
                        .begin_transaction(HwState::ReadTransaction, 1, Some(from), false);
                    st.set_owner_fetch(Some(owner));
                    out.hw_send(owner, ProtoMsg::Downgrade, timing.dir_cycles);
                    out.hw_cycles = timing.dir_cycles;
                    if all_sw {
                        self.bill(out, self.costs.ack_trap());
                    }
                }
            }
            HwState::ReadTransaction | HwState::WriteTransaction => {
                self.send_busy(id, from, out);
            }
        }
    }

    fn run_read_overflow(&mut self, block: BlockAddr, id: u32, from: NodeId, out: &mut Outcome) {
        let buf = self.send_pool.get();
        let st = self.table.state_mut(id);
        let mut ctx = HandlerCtx::with_send_buf(
            self.home,
            self.nodes,
            self.spec,
            block,
            id,
            st.hw,
            &mut self.sw,
            buf,
        );
        self.handler.read_overflow(&mut ctx, from);
        let small_opt = self.spec.small_set_opt();
        let (bill, sends, _, local) =
            ctx.finish(HandlerKind::ReadExtend, false, &self.costs, small_opt);
        if self.check.enabled() {
            assert!(
                sends.is_empty(),
                "coherence sanitizer: read handler transmitted {} message(s) for {block}",
                sends.len()
            );
        } else {
            debug_assert!(sends.is_empty(), "read handlers do not transmit");
        }
        self.send_pool.put(sends);
        out.invalidate_local |= local;
        self.bill(out, bill);
    }

    // --------------------------------------------------------- writes

    fn handle_write(&mut self, block: BlockAddr, id: u32, from: NodeId, out: &mut Outcome) {
        self.stats.write_reqs += 1;
        let all_sw = self.all_software();
        let home = self.home;
        let timing = self.timing;
        let mut st = self.table.state_mut(id);
        let first_remote = all_sw && from != home && !st.remote_accessed();
        if all_sw {
            st.set_remote_accessed();
        }

        match st.hw.state() {
            HwState::Uncached | HwState::ReadOnly => {
                let overflowed = st.hw.overflowed() || all_sw;
                if first_remote {
                    out.invalidate_local = true;
                }
                if !overflowed {
                    self.hw_write_path(id, from, out);
                } else {
                    self.sw_write_path(block, id, from, out);
                }
            }
            HwState::ReadWrite => {
                let owner = st.hw.owner().expect("ReadWrite entry without owner");
                if owner == from {
                    out.hw_send(
                        from,
                        ProtoMsg::WriteData,
                        timing.dir_cycles + timing.dram_cycles,
                    );
                    out.hw_cycles = timing.dir_cycles;
                } else {
                    st.hw
                        .begin_transaction(HwState::WriteTransaction, 1, Some(from), true);
                    st.set_owner_fetch(Some(owner));
                    st.set_upgrade_pending(false);
                    out.hw_send(owner, ProtoMsg::Flush, timing.dir_cycles);
                    out.hw_cycles = timing.dir_cycles;
                    if all_sw {
                        self.bill(out, self.costs.ack_trap());
                    }
                }
            }
            HwState::ReadTransaction | HwState::WriteTransaction => {
                self.send_busy(id, from, out);
            }
        }
    }

    /// Write serviced entirely by the hardware directory: invalidate
    /// the (hardware-tracked) sharers, count acknowledgments in
    /// hardware, grant.
    fn hw_write_path(&mut self, id: u32, from: NodeId, out: &mut Outcome) {
        let home = self.home;
        let timing = self.timing;
        self.scratch_sharers.clear();
        let mut st = self.table.state_mut(id);
        st.hw.take_ptrs_into(&mut self.scratch_sharers);
        if st.hw.local_bit() && home != from {
            // Kill the home's copy synchronously (no network, no ack).
            st.hw.set_local_bit(false);
            out.invalidate_local = true;
        }
        let was_sharer =
            self.scratch_sharers.contains(&from) || (from == home && st.hw.local_bit());
        st.hw.set_local_bit(false);
        self.scratch_sharers.retain(|&s| s != from);
        self.scratch_sharers.sort_unstable();
        self.scratch_sharers.dedup();

        out.hw_cycles = timing.dir_cycles;
        if self.scratch_sharers.is_empty() {
            // No remote copies: grant immediately.
            st.hw.set_sole_owner(from);
            let grant = if was_sharer {
                ProtoMsg::UpgradeAck
            } else {
                ProtoMsg::WriteData
            };
            let off = timing.dir_cycles + if was_sharer { 0 } else { timing.dram_cycles };
            out.hw_send(from, grant, off);
            return;
        }

        // Hardware invalidation round. Under `EveryAckTrap` the
        // pointer is unused and software will field the acks; either
        // way the hardware transmits these invalidations.
        let acks = self.scratch_sharers.len() as u32;
        if let Some(spare) = out
            .sends
            .spill_into(self.spill_pool.get(), self.scratch_sharers.len())
        {
            self.spill_pool.put(spare);
        }
        for (i, &s) in self.scratch_sharers.iter().enumerate() {
            out.hw_send(
                s,
                ProtoMsg::Inv,
                timing.dir_cycles + timing.inv_pipeline * (i as u64 + 1),
            );
        }
        self.stats.invs_sent += acks as u64;
        let mut st = self.table.state_mut(id);
        st.hw
            .begin_transaction(HwState::WriteTransaction, acks, Some(from), true);
        st.set_upgrade_pending(was_sharer);
        st.set_sw_transaction(false);
    }

    /// Write to an overflowed block: trap to the extension software.
    fn sw_write_path(&mut self, block: BlockAddr, id: u32, from: NodeId, out: &mut Outcome) {
        let home = self.home;
        let nodes = self.nodes;
        let spec = self.spec;
        let buf = self.send_pool.get();
        let st = self.table.state_mut(id);

        let mut ctx =
            HandlerCtx::with_send_buf(home, nodes, spec, block, id, st.hw, &mut self.sw, buf);
        ctx.sharers_into(&mut self.scratch_sharers);
        let was_sharer = self.scratch_sharers.contains(&from);
        self.scratch_sharers.retain(|&s| s != from);
        let acks = self
            .handler
            .write_overflow(&mut ctx, from, &self.scratch_sharers);
        let (bill, sends, counter, local) =
            ctx.finish(HandlerKind::WriteExtend, true, &self.costs, false);
        out.invalidate_local |= local;

        // Software transmits the invalidations sequentially.
        if let Some(spare) = out.sends.spill_into(self.spill_pool.get(), sends.len() + 1) {
            self.spill_pool.put(spare);
        }
        let mut inv_i = 0usize;
        for s in &sends {
            let offset = if s.is_inv {
                let o = bill.inv_offset(inv_i);
                inv_i += 1;
                o
            } else {
                bill.data_offset(0)
            };
            out.sends.push(Send {
                dst: s.dst,
                msg: s.msg,
                timing: SendTiming::Sw { offset },
            });
        }
        self.stats.invs_sent += inv_i as u64;
        self.send_pool.put(sends);

        let acks = counter.unwrap_or(acks);
        let mut st = self.table.state_mut(id);
        if acks == 0 {
            // Nothing to invalidate: grant directly from software.
            st.hw.set_sole_owner(from);
            st.hw.set_overflowed(false);
            let grant = if was_sharer {
                ProtoMsg::UpgradeAck
            } else {
                ProtoMsg::WriteData
            };
            out.sends.push(Send {
                dst: from,
                msg: grant,
                timing: SendTiming::Sw {
                    offset: bill.data_offset(0),
                },
            });
        } else {
            st.hw
                .begin_transaction(HwState::WriteTransaction, acks, Some(from), true);
            st.set_upgrade_pending(was_sharer);
            st.set_sw_transaction(true);
        }
        self.bill(out, bill);
    }

    // ----------------------------------------------- acknowledgments

    fn handle_inv_ack(&mut self, id: u32, _from: NodeId, out: &mut Outcome) {
        let timing = self.timing;
        let mut st = self.table.state_mut(id);
        if st.hw.state() != HwState::WriteTransaction || st.hw.acks_pending() == 0 {
            self.stats.stale_msgs += 1;
            out.stale = true;
            return;
        }
        let remaining = st.hw.count_ack();
        let sw_round = st.sw_transaction();
        out.hw_cycles = timing.dir_cycles;

        // Which acknowledgments trap? Every one under `EveryAckTrap`
        // (if the round was software-initiated, i.e. the pointer is
        // unused); only the last under `LastAckTrap`; none under
        // hardware counting.
        let traps_this_ack = match self.spec.ack {
            AckMode::EveryAckTrap => true,
            AckMode::LastAckTrap => remaining == 0,
            AckMode::Hardware => false,
        };

        if remaining > 0 {
            if traps_this_ack {
                self.bill(out, self.costs.ack_trap());
            }
            return;
        }

        // Transaction complete: grant to the waiting requester.
        let mut st = self.table.state_mut(id);
        let requester = st
            .hw
            .pending_requester()
            .expect("write transaction without requester");
        let upgrade = st.take_upgrade_pending();
        st.hw.end_transaction();
        st.hw.set_sole_owner(requester);
        st.hw.set_overflowed(false);
        st.set_sw_transaction(false);
        let grant = if upgrade {
            ProtoMsg::UpgradeAck
        } else {
            ProtoMsg::WriteData
        };
        if traps_this_ack {
            let bill = self.costs.last_ack_trap();
            out.sends.push(Send {
                dst: requester,
                msg: grant,
                timing: SendTiming::Sw {
                    offset: bill.data_offset(0),
                },
            });
            self.bill(out, bill);
        } else {
            let off = timing.dir_cycles + if upgrade { 0 } else { timing.dram_cycles };
            out.hw_send(requester, grant, off);
        }
        let _ = sw_round;
    }

    fn handle_owner_ack(
        &mut self,
        block: BlockAddr,
        id: u32,
        from: NodeId,
        had_data: bool,
        downgrade: bool,
        out: &mut Outcome,
    ) {
        let timing = self.timing;
        let all_sw = self.all_software();
        let mut st = self.table.state_mut(id);
        let expecting = st.owner_fetch() == Some(from);
        let in_fetch = expecting
            && matches!(
                st.hw.state(),
                HwState::ReadTransaction | HwState::WriteTransaction
            );
        if !in_fetch || !had_data {
            // Stale response: the owner's writeback raced ahead (and,
            // under FIFO delivery, already completed the transaction).
            self.stats.stale_msgs += 1;
            out.stale = true;
            return;
        }
        st.set_owner_fetch(None);
        let requester = st
            .hw
            .pending_requester()
            .expect("owner fetch without requester");
        let was_read = st.hw.state() == HwState::ReadTransaction;
        st.hw.end_transaction();
        out.hw_cycles = timing.dir_cycles + timing.dram_cycles;

        if was_read {
            debug_assert!(downgrade, "read transaction answered by FlushAck");
            st.hw.set_state(HwState::ReadOnly);
            st.hw.clear_owner();
            // The owner keeps a shared copy; record owner then
            // requester, extending in software on overflow.
            self.record_after_fetch(block, id, from, out);
            self.record_after_fetch(block, id, requester, out);
            out.hw_send(requester, ProtoMsg::ReadData, out.hw_cycles);
        } else {
            st.hw.set_sole_owner(requester);
            st.set_upgrade_pending(false);
            out.hw_send(requester, ProtoMsg::WriteData, out.hw_cycles);
        }
        if all_sw {
            self.bill(out, self.costs.ack_trap());
        }
    }

    /// Records a sharer after an owner fetch, trapping to software on
    /// overflow exactly like a fresh read request.
    fn record_after_fetch(&mut self, block: BlockAddr, id: u32, node: NodeId, out: &mut Outcome) {
        let home = self.home;
        let spec = self.spec;
        let all_sw = self.all_software();
        let mut st = self.table.state_mut(id);
        if node == home && spec.local_bit {
            st.hw.set_local_bit(true);
            return;
        }
        match st.hw.record_reader(node) {
            PtrStoreOutcome::Stored if !all_sw => {}
            _ => {
                if spec.sw == SwMode::Broadcast {
                    st.hw.set_overflowed(true);
                } else {
                    self.run_read_overflow(block, id, node, out);
                }
            }
        }
    }

    fn handle_writeback(&mut self, block: BlockAddr, id: u32, from: NodeId, out: &mut Outcome) {
        let timing = self.timing;
        let all_sw = self.all_software();
        out.hw_cycles = timing.dir_cycles + timing.dram_cycles;
        let mut st = self.table.state_mut(id);
        let expecting = st.owner_fetch() == Some(from);
        match st.hw.state() {
            HwState::ReadWrite if st.hw.owner() == Some(from) => {
                st.hw.set_state(HwState::Uncached);
                st.hw.clear_owner();
            }
            HwState::ReadTransaction | HwState::WriteTransaction if expecting => {
                // The owner evicted while our fetch was in flight; the
                // writeback carries the data, so complete the
                // transaction now. The stale Flush/DowngradeAck that
                // follows will be ignored.
                st.set_owner_fetch(None);
                let requester = st
                    .hw
                    .pending_requester()
                    .expect("owner fetch without requester");
                let was_read = st.hw.state() == HwState::ReadTransaction;
                st.hw.end_transaction();
                if was_read {
                    st.hw.set_state(HwState::ReadOnly);
                    st.hw.clear_owner();
                    self.record_after_fetch(block, id, requester, out);
                    out.hw_send(requester, ProtoMsg::ReadData, out.hw_cycles);
                } else {
                    st.hw.set_sole_owner(requester);
                    st.set_upgrade_pending(false);
                    out.hw_send(requester, ProtoMsg::WriteData, out.hw_cycles);
                }
            }
            _ => {
                self.stats.stale_msgs += 1;
                out.stale = true;
                return;
            }
        }
        if all_sw {
            self.bill(out, self.costs.ack_trap());
        }
    }

    // -------------------------------------------------------- helpers

    fn send_busy(&mut self, id: u32, from: NodeId, out: &mut Outcome) {
        self.stats.busys_sent += 1;
        // During a software-managed acknowledgment round (`S_{NB,ACK}`
        // and the software-only directory) even the BUSY bounce is a
        // software action.
        let sw_round = self.table.state(id).sw_transaction();
        let sw_busy = self.all_software() || (sw_round && self.spec.ack == AckMode::EveryAckTrap);
        if sw_busy {
            let bill = self.costs.busy_trap();
            out.sends.push(Send {
                dst: from,
                msg: ProtoMsg::Busy,
                timing: SendTiming::Sw {
                    offset: bill.data_offset(0),
                },
            });
            self.bill(out, bill);
        } else {
            out.hw_send(from, ProtoMsg::Busy, self.timing.dir_cycles);
            out.hw_cycles = self.timing.dir_cycles;
        }
    }

    fn bill(&mut self, out: &mut Outcome, bill: TrapBill) {
        self.stats.traps += 1;
        self.stats.trap_cycles += bill.total();
        match bill.kind {
            HandlerKind::ReadExtend => self.stats.read_extend_traps += 1,
            HandlerKind::WriteExtend => self.stats.write_extend_traps += 1,
            HandlerKind::AckTrap => self.stats.ack_traps += 1,
            HandlerKind::LastAckTrap => self.stats.last_ack_traps += 1,
            HandlerKind::BusyTrap => self.stats.busy_traps += 1,
        }
        // Multiple bills for one event merge into one occupancy.
        out.trap = Some(match out.trap.take() {
            None => bill,
            Some(mut prev) => {
                prev.absorb(&bill);
                prev
            }
        });
    }

    // ------------------------------------------------------ sanitizer

    /// Records the post-event snapshot in the block history, then
    /// validates every directory invariant the spectrum promises.
    /// Called once per event while the sanitizer is enabled.
    fn record_and_validate(&mut self, block: BlockAddr, id: u32, event: DirEvent, out: &Outcome) {
        let st = self.table.state(id);
        let sw_readers = self.sw.reader_count(id);
        self.history.record(
            id,
            HistoryRecord {
                event,
                state: st.hw.state(),
                acks: st.hw.acks_pending(),
                ptr_count: st.hw.ptr_count().min(usize::from(u8::MAX)) as u8,
                sw_readers: sw_readers.min(usize::from(u16::MAX)) as u16,
                local_bit: st.hw.local_bit(),
                overflowed: st.hw.overflowed(),
                owner_fetch: st.owner_fetch(),
                stale: out.stale,
            },
        );
        if let Err(msg) = self.block_invariants(block, id) {
            panic!(
                "coherence sanitizer: {msg}\n  home {} block {block} after {event:?}\n{}",
                self.home,
                self.history.dump(block, id)
            );
        }
    }

    /// The per-block directory invariants. These must hold after
    /// *every* event, in every protocol of the spectrum; each arm
    /// documents why.
    fn block_invariants(&self, block: BlockAddr, id: u32) -> Result<(), String> {
        let st = self.table.state(id);
        let hw = &st.hw;
        hw.structural_invariants()?;
        self.sw.structural_invariants(id)?;
        let sw_readers = self.sw.reader_count(id);
        let _ = block;

        match hw.state() {
            HwState::Uncached => {
                // No copies anywhere: every pointer form must be clear.
                if hw.ptr_count() != 0 || hw.local_bit() || hw.overflowed() || sw_readers != 0 {
                    return Err(format!(
                        "Uncached entry still tracks sharers \
                         (ptrs={}, local_bit={}, overflowed={}, sw={sw_readers})",
                        hw.ptr_count(),
                        hw.local_bit(),
                        hw.overflowed()
                    ));
                }
            }
            HwState::ReadOnly => {
                // Read-only copies: the overflow meta-state and the
                // software extension move together (the overflow trap
                // sets both; `release_to_hardware` clears both) — for
                // non-broadcast protocols. Broadcast protocols never
                // extend in software: the overflow bit alone stands
                // for "potentially everyone".
                match self.spec.sw {
                    SwMode::NoBroadcast => {
                        if hw.overflowed() != (sw_readers != 0) {
                            return Err(format!(
                                "overflow bit ({}) and software record ({sw_readers} readers) \
                                 out of sync",
                                hw.overflowed()
                            ));
                        }
                    }
                    SwMode::Broadcast => {
                        if sw_readers != 0 {
                            return Err(format!(
                                "broadcast protocol holds {sw_readers} software readers"
                            ));
                        }
                    }
                }
                if self.spec.full_map && hw.overflowed() {
                    return Err("full-map directory overflowed".to_string());
                }
            }
            HwState::ReadWrite => {
                // Single-writer: exactly one owner and nothing else.
                if hw.owner().is_none() {
                    return Err("ReadWrite entry without an owner".to_string());
                }
                if hw.ptr_count() != 0 || hw.local_bit() || hw.overflowed() || sw_readers != 0 {
                    return Err(format!(
                        "ReadWrite entry also tracks readers \
                         (ptrs={}, local_bit={}, overflowed={}, sw={sw_readers}) — \
                         single-writer xor multi-reader violated",
                        hw.ptr_count(),
                        hw.local_bit(),
                        hw.overflowed()
                    ));
                }
            }
            HwState::ReadTransaction => {
                // An owner fetch for a read: exactly one response
                // outstanding, and we must remember whom to fetch from.
                if hw.acks_pending() != 1 {
                    return Err(format!(
                        "ReadTransaction with {} responses outstanding (expected 1)",
                        hw.acks_pending()
                    ));
                }
                if st.owner_fetch().is_none() {
                    return Err("ReadTransaction without an owner fetch".to_string());
                }
            }
            HwState::WriteTransaction => {
                // Ack counting in progress: the transaction completes
                // (and leaves this state) on the final acknowledgment,
                // so an entry observed in it has acks outstanding.
                if hw.acks_pending() == 0 {
                    return Err("WriteTransaction with no acknowledgments outstanding".to_string());
                }
            }
        }

        // Cross-state bookkeeping flags are meaningful only during
        // their transactions.
        if st.owner_fetch().is_some()
            && !matches!(
                hw.state(),
                HwState::ReadTransaction | HwState::WriteTransaction
            )
        {
            return Err(format!(
                "owner fetch from {:?} outside a transaction ({:?})",
                st.owner_fetch(),
                hw.state()
            ));
        }
        if st.upgrade_pending() && hw.state() != HwState::WriteTransaction {
            return Err(format!("upgrade pending in {:?}", hw.state()));
        }
        if st.sw_transaction() && hw.state() != HwState::WriteTransaction {
            return Err(format!("software transaction flag set in {:?}", hw.state()));
        }
        Ok(())
    }

    /// Whether the directory currently accounts for a copy of `block`
    /// at `node` — via the owner pointer, a hardware pointer, the
    /// software extension, the one-bit local pointer, or (broadcast
    /// protocols) the overflow bit that stands for "potentially
    /// everyone". The quiesce audit checks cached copies against this:
    /// the directory may track a superset (silent evictions of clean
    /// lines are invisible to it) but never miss a real copy.
    pub fn dir_tracks(&self, block: BlockAddr, node: NodeId) -> bool {
        if self.local_fast_path(block) {
            return node == self.home;
        }
        let Some(id) = self.table.id_of(block) else {
            return false;
        };
        let st = self.table.state(id);
        st.hw.owner() == Some(node)
            || st.hw.contains_ptr(node)
            || (st.hw.local_bit() && node == self.home)
            || (st.hw.overflowed() && self.spec.sw == SwMode::Broadcast)
            || self.sw.contains_reader(id, node)
    }

    /// The exclusive owner the directory records for `block`, if any.
    pub fn dir_owner(&self, block: BlockAddr) -> Option<NodeId> {
        self.table.get(block).and_then(|st| st.hw.owner())
    }

    /// Violations of the quiesce contract: once the machine drains,
    /// no entry may be mid-transaction or carry live transaction
    /// bookkeeping, and every per-event invariant must still hold.
    pub fn quiesce_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (block, id, st) in self.table.iter() {
            if !st.hw.state().accepts_requests() {
                v.push(format!(
                    "home {} block {block}: still in {:?} at quiesce",
                    self.home,
                    st.hw.state()
                ));
                continue;
            }
            if st.hw.acks_pending() != 0 {
                v.push(format!(
                    "home {} block {block}: {} acknowledgments never arrived",
                    self.home,
                    st.hw.acks_pending()
                ));
            }
            if st.owner_fetch().is_some() || st.upgrade_pending() || st.sw_transaction() {
                v.push(format!(
                    "home {} block {block}: live transaction bookkeeping at quiesce \
                     (owner_fetch={:?}, upgrade_pending={}, sw_transaction={})",
                    self.home,
                    st.owner_fetch(),
                    st.upgrade_pending(),
                    st.sw_transaction()
                ));
            }
            if let Err(e) = self.block_invariants(block, id) {
                v.push(format!("home {} block {block}: {e}", self.home));
            }
        }
        v
    }

    /// The retained event history for `block`, formatted for
    /// diagnostics (the retry watchdog includes this in its panic).
    pub fn history_dump(&self, block: BlockAddr) -> String {
        match self.table.id_of(block) {
            Some(id) => self.history.dump(block, id),
            None => format!("no directory events recorded for {block}"),
        }
    }
}

impl ProtocolSpec {
    /// Whether this protocol implements the small-worker-set
    /// memory-usage optimization (paper §5: the `LACK`, `ACK` and
    /// zero-pointer protocols).
    pub fn small_set_opt(&self) -> bool {
        matches!(self.ack, AckMode::LastAckTrap | AckMode::EveryAckTrap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(spec: ProtocolSpec) -> DirEngine {
        DirEngine::new(NodeId(0), 16, spec, HandlerImpl::FlexibleC)
    }

    fn read(e: &mut DirEngine, b: u64, n: u16) -> Outcome {
        e.handle(BlockAddr(b), DirEvent::Read { from: NodeId(n) })
    }

    fn write(e: &mut DirEngine, b: u64, n: u16) -> Outcome {
        e.handle(BlockAddr(b), DirEvent::Write { from: NodeId(n) })
    }

    fn ack(e: &mut DirEngine, b: u64, n: u16) -> Outcome {
        e.handle(BlockAddr(b), DirEvent::InvAck { from: NodeId(n) })
    }

    #[test]
    fn simple_read_is_pure_hardware() {
        let mut e = engine(ProtocolSpec::limitless(5));
        let out = read(&mut e, 1, 3);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].dst, NodeId(3));
        assert_eq!(out.sends[0].msg, ProtoMsg::ReadData);
        assert!(out.trap.is_none());
        assert_eq!(e.sharer_count(BlockAddr(1)), 1);
    }

    #[test]
    fn reads_beyond_capacity_trap_and_extend() {
        let mut e = engine(ProtocolSpec::limitless(2));
        for n in 1..=2 {
            assert!(read(&mut e, 1, n).trap.is_none());
        }
        let out = read(&mut e, 1, 3);
        let bill = out.trap.expect("overflow must trap");
        assert_eq!(bill.kind, HandlerKind::ReadExtend);
        // Data still comes from hardware.
        assert_eq!(out.sends[0].msg, ProtoMsg::ReadData);
        assert!(matches!(out.sends[0].timing, SendTiming::Hw { .. }));
        assert_eq!(e.sharer_count(BlockAddr(1)), 3);
        // Pointers were drained: the next readers fit in hardware
        // again.
        assert!(read(&mut e, 1, 4).trap.is_none());
        assert!(read(&mut e, 1, 5).trap.is_none());
        assert!(read(&mut e, 1, 6).trap.is_some());
        assert_eq!(e.sharer_count(BlockAddr(1)), 6);
    }

    #[test]
    fn full_map_never_traps() {
        let mut e = engine(ProtocolSpec::full_map());
        for n in 1..16 {
            assert!(read(&mut e, 1, n).trap.is_none());
        }
        let out = write(&mut e, 1, 1);
        assert!(out.trap.is_none());
        // 14 invalidations (everyone but the writer), all hardware.
        assert_eq!(
            out.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count(),
            14
        );
    }

    #[test]
    fn hw_write_round_counts_acks_and_grants() {
        let mut e = engine(ProtocolSpec::limitless(5));
        read(&mut e, 1, 1);
        read(&mut e, 1, 2);
        let out = write(&mut e, 1, 3);
        assert!(out.trap.is_none());
        assert_eq!(
            out.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count(),
            2
        );
        // First ack: nothing. Second: grant.
        assert!(ack(&mut e, 1, 1).sends.is_empty());
        let done = ack(&mut e, 1, 2);
        assert_eq!(done.sends.len(), 1);
        assert_eq!(done.sends[0].msg, ProtoMsg::WriteData);
        assert_eq!(done.sends[0].dst, NodeId(3));
    }

    #[test]
    fn upgrade_grants_permission_without_data() {
        let mut e = engine(ProtocolSpec::limitless(5));
        read(&mut e, 1, 3);
        let out = write(&mut e, 1, 3);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].msg, ProtoMsg::UpgradeAck);
    }

    #[test]
    fn overflowed_write_traps_and_invalidates_everyone() {
        let mut e = engine(ProtocolSpec::limitless(2));
        for n in 1..=5 {
            read(&mut e, 1, n);
        }
        assert_eq!(e.sharer_count(BlockAddr(1)), 5);
        let out = write(&mut e, 1, 9);
        let bill = out.trap.expect("overflowed write must trap");
        assert_eq!(bill.kind, HandlerKind::WriteExtend);
        let invs: Vec<_> = out
            .sends
            .iter()
            .filter(|s| s.msg == ProtoMsg::Inv)
            .collect();
        assert_eq!(invs.len(), 5);
        assert!(invs
            .iter()
            .all(|s| matches!(s.timing, SendTiming::Sw { .. })));
        // Acks complete in hardware for the 2-pointer protocol.
        for n in 1..=4 {
            assert!(ack(&mut e, 1, n).sends.is_empty());
        }
        let done = ack(&mut e, 1, 5);
        assert_eq!(done.sends[0].msg, ProtoMsg::WriteData);
        assert!(done.trap.is_none());
        // Directory is back under hardware control with a sole owner.
        assert_eq!(e.sharer_count(BlockAddr(1)), 0);
        assert_eq!(e.sw_entries(), 0);
    }

    #[test]
    fn lack_traps_only_on_last_ack() {
        let mut e = engine(ProtocolSpec::one_ptr_lack());
        read(&mut e, 1, 1);
        read(&mut e, 1, 2); // overflow: 1 ptr
        read(&mut e, 1, 3);
        let out = write(&mut e, 1, 9);
        assert!(out.trap.is_some());
        assert!(ack(&mut e, 1, 1).trap.is_none());
        assert!(ack(&mut e, 1, 2).trap.is_none());
        let done = ack(&mut e, 1, 3);
        let bill = done.trap.expect("last ack traps in LACK");
        assert_eq!(bill.kind, HandlerKind::LastAckTrap);
        // Data transmitted by software.
        assert!(matches!(done.sends[0].timing, SendTiming::Sw { .. }));
    }

    #[test]
    fn ack_variant_traps_on_every_ack() {
        let mut e = engine(ProtocolSpec::one_ptr_ack());
        for n in 1..=3 {
            read(&mut e, 1, n);
        }
        write(&mut e, 1, 9);
        let t1 = ack(&mut e, 1, 1);
        assert_eq!(t1.trap.expect("every ack traps").kind, HandlerKind::AckTrap);
        let t2 = ack(&mut e, 1, 2);
        assert!(t2.trap.is_some());
        let done = ack(&mut e, 1, 3);
        assert_eq!(done.trap.expect("last").kind, HandlerKind::LastAckTrap);
    }

    #[test]
    fn busy_during_software_ack_round_traps() {
        let mut e = engine(ProtocolSpec::one_ptr_ack());
        for n in 1..=3 {
            read(&mut e, 1, n);
        }
        write(&mut e, 1, 9);
        let bounced = read(&mut e, 1, 12);
        assert_eq!(bounced.sends[0].msg, ProtoMsg::Busy);
        assert_eq!(bounced.trap.expect("sw busy").kind, HandlerKind::BusyTrap);
        // Hardware-counted rounds bounce in hardware.
        let mut e2 = engine(ProtocolSpec::limitless(2));
        for n in 1..=3 {
            read(&mut e2, 1, n);
        }
        write(&mut e2, 1, 9);
        let bounced2 = read(&mut e2, 1, 12);
        assert_eq!(bounced2.sends[0].msg, ProtoMsg::Busy);
        assert!(bounced2.trap.is_none());
    }

    #[test]
    fn dirty_remote_read_does_three_hops() {
        let mut e = engine(ProtocolSpec::limitless(5));
        write(&mut e, 1, 3);
        let out = read(&mut e, 1, 4);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].msg, ProtoMsg::Downgrade);
        assert_eq!(out.sends[0].dst, NodeId(3));
        // Requests bounce while the fetch is outstanding.
        assert_eq!(read(&mut e, 1, 5).sends[0].msg, ProtoMsg::Busy);
        let done = e.handle(
            BlockAddr(1),
            DirEvent::OwnerAck {
                from: NodeId(3),
                had_data: true,
                downgrade: true,
            },
        );
        assert_eq!(done.sends[0].msg, ProtoMsg::ReadData);
        assert_eq!(done.sends[0].dst, NodeId(4));
        // Both the old owner and the reader are now sharers.
        assert_eq!(e.sharer_count(BlockAddr(1)), 2);
    }

    #[test]
    fn dirty_remote_write_flushes_owner() {
        let mut e = engine(ProtocolSpec::limitless(5));
        write(&mut e, 1, 3);
        let out = write(&mut e, 1, 4);
        assert_eq!(out.sends[0].msg, ProtoMsg::Flush);
        let done = e.handle(
            BlockAddr(1),
            DirEvent::OwnerAck {
                from: NodeId(3),
                had_data: true,
                downgrade: false,
            },
        );
        assert_eq!(done.sends[0].msg, ProtoMsg::WriteData);
        assert_eq!(done.sends[0].dst, NodeId(4));
    }

    #[test]
    fn writeback_races_flush_and_wins() {
        let mut e = engine(ProtocolSpec::limitless(5));
        write(&mut e, 1, 3);
        write(&mut e, 1, 4); // Flush in flight to node 3
                             // Node 3's writeback (sent before the Flush arrived) comes
                             // first under FIFO delivery:
        let wb = e.handle(BlockAddr(1), DirEvent::Writeback { from: NodeId(3) });
        assert_eq!(wb.sends[0].msg, ProtoMsg::WriteData);
        assert_eq!(wb.sends[0].dst, NodeId(4));
        // The stale FlushAck is ignored.
        let stale = e.handle(
            BlockAddr(1),
            DirEvent::OwnerAck {
                from: NodeId(3),
                had_data: false,
                downgrade: false,
            },
        );
        assert!(stale.stale);
        assert_eq!(e.stats().stale_msgs, 1);
    }

    #[test]
    fn plain_writeback_returns_block_to_memory() {
        let mut e = engine(ProtocolSpec::limitless(5));
        write(&mut e, 1, 3);
        let wb = e.handle(BlockAddr(1), DirEvent::Writeback { from: NodeId(3) });
        assert!(wb.sends.is_empty());
        assert!(!wb.stale);
        // Fresh read is a plain hardware fill.
        let out = read(&mut e, 1, 5);
        assert!(out.trap.is_none());
        assert_eq!(out.sends[0].msg, ProtoMsg::ReadData);
    }

    #[test]
    fn local_bit_spares_home_reads_from_pointers() {
        let mut e = engine(ProtocolSpec::limitless(1));
        let out = read(&mut e, 1, 0); // home reads its own block
        assert!(out.trap.is_none());
        assert_eq!(e.sharer_count(BlockAddr(1)), 1);
        // The single pointer is still free:
        assert!(read(&mut e, 1, 5).trap.is_none());
        // A write by a third node invalidates the home copy locally,
        // without a network invalidation.
        let w = write(&mut e, 1, 7);
        assert!(w.invalidate_local);
        assert_eq!(w.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count(), 1);
    }

    #[test]
    fn zero_ptr_fast_path_until_first_remote_access() {
        let mut e = engine(ProtocolSpec::zero_ptr());
        assert!(e.local_fast_path(BlockAddr(1)));
        let out = read(&mut e, 1, 5);
        assert!(
            out.invalidate_local,
            "first remote access flushes home cache"
        );
        assert!(
            out.trap.is_some(),
            "software-only directory traps on everything"
        );
        assert!(!e.local_fast_path(BlockAddr(1)));
        // Non-zero-pointer protocols never use the fast path.
        let e2 = engine(ProtocolSpec::limitless(1));
        assert!(!e2.local_fast_path(BlockAddr(1)));
    }

    #[test]
    fn zero_ptr_write_traps_and_uses_software_state() {
        let mut e = engine(ProtocolSpec::zero_ptr());
        read(&mut e, 1, 5);
        read(&mut e, 1, 6);
        let out = write(&mut e, 1, 7);
        assert!(out.trap.is_some());
        assert_eq!(
            out.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count(),
            2
        );
        // Acks trap (EveryAckTrap mode).
        assert!(ack(&mut e, 1, 5).trap.is_some());
        let done = ack(&mut e, 1, 6);
        assert_eq!(done.sends[0].msg, ProtoMsg::WriteData);
    }

    #[test]
    fn broadcast_protocol_never_traps_on_reads() {
        let mut e = engine(ProtocolSpec::dir1_sw());
        assert!(read(&mut e, 1, 1).trap.is_none());
        let o = read(&mut e, 1, 2); // beyond the single pointer
        assert!(o.trap.is_none(), "Dir1SW sets the broadcast bit silently");
        let o3 = read(&mut e, 1, 3);
        assert!(o3.trap.is_none());
    }

    #[test]
    fn broadcast_write_invalidates_all_nodes() {
        let mut e = engine(ProtocolSpec::dir1_sw());
        read(&mut e, 1, 1);
        read(&mut e, 1, 2);
        read(&mut e, 1, 3);
        let out = write(&mut e, 1, 4);
        assert!(out.trap.is_some());
        // Broadcast: every node except writer and home gets an inv.
        assert_eq!(
            out.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count(),
            14
        );
        // All 14 must ack; the last ack traps (LACK).
        for n in (1..16).filter(|&n| n != 4) {
            let o = ack(&mut e, 1, n);
            if n == 15 {
                assert!(o.trap.is_some());
                assert_eq!(o.sends[0].msg, ProtoMsg::WriteData);
            }
        }
    }

    #[test]
    fn spurious_inv_ack_is_stale_not_fatal() {
        let mut e = engine(ProtocolSpec::limitless(5));
        let out = ack(&mut e, 1, 5);
        assert!(out.stale);
        assert_eq!(e.stats().stale_msgs, 1);
    }

    #[test]
    fn stats_count_traps_by_kind() {
        let mut e = engine(ProtocolSpec::limitless(1));
        read(&mut e, 1, 1);
        read(&mut e, 1, 2); // read-extend trap
        write(&mut e, 1, 3); // write-extend trap
        let s = e.stats();
        assert_eq!(s.read_extend_traps, 1);
        assert_eq!(s.write_extend_traps, 1);
        assert_eq!(s.traps, 2);
        assert!(s.trap_cycles > 0);
    }

    #[test]
    fn sanitizer_accepts_a_full_protocol_round() {
        for spec in [
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::limitless(2),
            ProtocolSpec::dir1_sw(),
            ProtocolSpec::full_map(),
        ] {
            let mut e = engine(spec);
            e.set_check_level(CheckLevel::Basic);
            for n in 1..=5 {
                read(&mut e, 1, n);
            }
            let out = write(&mut e, 1, 9);
            let invs = out.sends.iter().filter(|s| s.msg == ProtoMsg::Inv).count();
            for n in 1..16 {
                ack(&mut e, 1, n);
            }
            let _ = invs;
            assert_eq!(e.dir_owner(BlockAddr(1)), Some(NodeId(9)));
            assert!(e.dir_tracks(BlockAddr(1), NodeId(9)));
            assert!(
                e.quiesce_violations().is_empty(),
                "{spec:?} left quiesce violations"
            );
        }
    }

    #[test]
    fn sanitizer_tracks_sharers_and_dumps_history() {
        let mut e = engine(ProtocolSpec::limitless(2));
        e.set_check_level(CheckLevel::Basic);
        for n in 1..=5 {
            read(&mut e, 1, n);
        }
        for n in 1..=5 {
            assert!(e.dir_tracks(BlockAddr(1), NodeId(n)));
        }
        assert!(!e.dir_tracks(BlockAddr(1), NodeId(9)));
        let dump = e.history_dump(BlockAddr(1));
        assert!(dump.contains("directory event"));
        assert!(e
            .history_dump(BlockAddr(99))
            .contains("no directory events"));
    }

    #[test]
    fn quiesce_flags_unfinished_transactions() {
        let mut e = engine(ProtocolSpec::limitless(2));
        e.set_check_level(CheckLevel::Basic);
        read(&mut e, 1, 1);
        read(&mut e, 1, 2);
        write(&mut e, 1, 3); // invalidation round left unacknowledged
        let v = e.quiesce_violations();
        assert!(!v.is_empty());
        assert!(v[0].contains("still in"));
    }

    #[test]
    fn deterministic_outcomes() {
        let run = || {
            let mut e = engine(ProtocolSpec::limitless(2));
            let mut log = Vec::new();
            for i in 0..50u64 {
                let n = (i % 7 + 1) as u16;
                let out = if i % 3 == 0 {
                    write(&mut e, i % 5, n)
                } else {
                    read(&mut e, i % 5, n)
                };
                log.push((out.sends.len(), out.trap.map(|t| t.total())));
                // Drain any pending acks so transactions finish.
                for m in 1..8 {
                    let _ = ack(&mut e, i % 5, m);
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
