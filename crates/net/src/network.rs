//! The network timing model: per-hop latency plus endpoint-queue
//! contention.

use limitless_sim::{Cycle, NodeId};

use crate::message::FlitCount;
use crate::topology::MeshTopology;

/// Network timing parameters.
///
/// Defaults approximate the Alewife mesh at the granularity NWO models:
/// one cycle per hop for the head flit, one cycle per flit of
/// serialization at each endpoint queue, and a small fixed injection
/// overhead for composing the message in the CMMU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Cycles for the head flit to traverse one mesh hop.
    pub hop_cycles: u64,
    /// Cycles per flit spent serializing through an endpoint queue.
    pub flit_cycles: u64,
    /// Fixed cost for the sending CMMU to compose and inject a message.
    pub inject_cycles: u64,
    /// Minimum latency for a node sending a message to itself: the
    /// CMMU-internal loopback FIFO, no mesh traversal and no flit
    /// serialization (the CMMU forwards internally at this modelling
    /// granularity).
    pub loopback_cycles: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hop_cycles: 1,
            flit_cycles: 1,
            inject_cycles: 2,
            loopback_cycles: 6,
        }
    }
}

impl NetConfig {
    /// Lower bound on the cycles between a cross-node send call and the
    /// head flit's arrival at the destination, for messages of at least
    /// `min_flits` flits: injection, serialization out of the transmit
    /// queue, and at least one mesh hop. Transmit-queue contention and
    /// longer routes only push arrival later.
    ///
    /// This is the conservative-lookahead bound the sharded engine's
    /// window protocol is built on: a message sent at `now` cannot
    /// become visible at another node before `now +
    /// min_cross_latency(..)`.
    pub fn min_cross_latency(&self, min_flits: u32) -> u64 {
        self.inject_cycles + u64::from(min_flits) * self.flit_cycles + self.hop_cycles
    }
}

/// Counters describing network behaviour during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Total flits sent.
    pub flits: u64,
    /// Total cycles messages spent waiting behind earlier traffic in
    /// transmit queues.
    pub tx_wait_cycles: u64,
    /// Total cycles messages spent waiting behind earlier traffic in
    /// receive queues.
    pub rx_wait_cycles: u64,
    /// Sum over messages of end-to-end latency (send call to delivery).
    pub total_latency: u64,
    /// Messages that never touched the mesh: CMMU-internal loopback
    /// deliveries. Counted separately and excluded from `messages`,
    /// `flits` and `total_latency`, which describe mesh traffic only.
    pub loopback_messages: u64,
}

impl NetStats {
    /// Mean end-to-end message latency in cycles, or 0.0 if no
    /// messages were sent.
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Merges another stats block into this one. Every field is a sum,
    /// so merging is associative and commutative — the sharded engine
    /// relies on this to sum per-shard network clones into totals that
    /// are independent of the shard count.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.flits += other.flits;
        self.tx_wait_cycles += other.tx_wait_cycles;
        self.rx_wait_cycles += other.rx_wait_cycles;
        self.total_latency += other.total_latency;
        self.loopback_messages += other.loopback_messages;
    }
}

/// The transmit-side outcome of [`Network::tx`]: either a finished
/// CMMU-internal loopback delivery, or a mesh head-flit arrival time
/// that the destination completes with [`Network::rx`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxPhase {
    /// Self-addressed message, delivered through the per-node loopback
    /// FIFO without touching the mesh. The time is final.
    Loopback {
        /// When the message is fully received back at the sender.
        deliver: Cycle,
    },
    /// Mesh message: the head flit reaches the destination at this
    /// time; receive-queue serialization still follows.
    Mesh {
        /// When the head flit arrives at the destination's CMMU.
        head_arrives: Cycle,
    },
}

/// The mesh network: computes delivery times for messages, modelling
/// contention at the per-node CMMU transmit and receive queues only
/// (switch-internal contention is deliberately not modelled, matching
/// NWO).
///
/// # Examples
///
/// ```
/// use limitless_net::{MeshTopology, NetConfig, Network};
/// use limitless_sim::{Cycle, NodeId};
///
/// let mut net = Network::new(MeshTopology::for_nodes(4), NetConfig::default());
/// let first = net.send(Cycle(0), NodeId(0), NodeId(3), 4);
/// // A second message from the same node queues behind the first:
/// let second = net.send(Cycle(0), NodeId(0), NodeId(3), 4);
/// assert!(second > first);
/// ```
/// Per-node endpoint state, kept together so one send touches one
/// cache line of network state instead of three parallel arrays.
#[derive(Clone, Copy, Debug, Default)]
struct PortState {
    /// Earliest time the node's transmit queue is free.
    tx_free: Cycle,
    /// Earliest time the node's receive queue is free.
    rx_free: Cycle,
    /// The CMMU-internal loopback channel: the delivery time of the
    /// most recent self-addressed message. Local protocol traffic (a
    /// home's own requests/fills and local invalidations) does not
    /// touch the mesh; it flows through this dedicated FIFO so that a
    /// local invalidation can never pass a local fill still in flight
    /// (window-of-vulnerability closure), and never queues behind
    /// unrelated network traffic.
    loopback_free: Cycle,
}

#[derive(Clone, Debug)]
pub struct Network {
    topo: MeshTopology,
    cfg: NetConfig,
    /// Endpoint-queue state, one entry per node.
    ports: Vec<PortState>,
    stats: NetStats,
}

impl Network {
    /// Creates a quiescent network over `topo`.
    pub fn new(topo: MeshTopology, cfg: NetConfig) -> Self {
        let n = topo.nodes();
        Network {
            topo,
            cfg,
            ports: vec![PortState::default(); n],
            stats: NetStats::default(),
        }
    }

    /// The topology this network spans.
    pub fn topology(&self) -> &MeshTopology {
        &self.topo
    }

    /// Sends a message of `flits` flits from `src` to `dst` at time
    /// `now`, returning the cycle at which the message is fully
    /// received at `dst`.
    ///
    /// Ordering guarantee: two messages sent from the same `src` to the
    /// same `dst` are delivered in send order (the transmit queue is
    /// FIFO and all same-pair messages share a path).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` lies outside the mesh.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        match self.tx(now, src, dst, flits) {
            TxPhase::Loopback { deliver } => deliver,
            TxPhase::Mesh { head_arrives } => self.rx(head_arrives, dst, flits, now),
        }
    }

    /// The transmit half of [`Network::send`]: loopback resolution or
    /// injection, transmit-queue serialization, and mesh traversal up
    /// to head-flit arrival. Touches only sender-side state
    /// (`loopback_free[src]`/`tx_free[src]` and the tx-side counters),
    /// so the sharded engine can run it on the lane that owns `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` lies outside the mesh.
    pub fn tx(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u32) -> TxPhase {
        if src == dst {
            // CMMU-internal loopback: fixed latency through a dedicated
            // per-node FIFO (delivery strictly in send order). It never
            // touches the mesh or the endpoint queues, message size is
            // irrelevant at this granularity, and it is not mesh
            // traffic for the stats.
            let ch = &mut self.ports[src.index()].loopback_free;
            let deliver = (now + Cycle(self.cfg.loopback_cycles)).max(*ch + Cycle(1));
            *ch = deliver;
            self.stats.loopback_messages += 1;
            return TxPhase::Loopback { deliver };
        }

        let serialize = Cycle(u64::from(flits) * self.cfg.flit_cycles);

        // Transmit side: wait for the queue, then serialize out.
        let inject_ready = now + Cycle(self.cfg.inject_cycles);
        let tx = &mut self.ports[src.index()].tx_free;
        let tx_start = inject_ready.max(*tx);
        self.stats.tx_wait_cycles += (tx_start - inject_ready).as_u64();
        let tx_done = tx_start + serialize;
        *tx = tx_done;

        // Mesh traversal: head-flit pipeline latency.
        let hops = self.topo.hops(src, dst);
        let head_arrives = tx_done + Cycle(u64::from(hops) * self.cfg.hop_cycles);
        TxPhase::Mesh { head_arrives }
    }

    /// The receive half of [`Network::send`]: receive-queue wait and
    /// serialization for a head flit arriving at `head_arrives`,
    /// returning full delivery time. `sent_at` is the original send
    /// call time, used for the end-to-end latency statistic. Touches
    /// only receiver-side state (`rx_free[dst]` and the rx-side
    /// counters), so the sharded engine can run it on the lane that
    /// owns `dst` when the arrival event fires.
    pub fn rx(&mut self, head_arrives: Cycle, dst: NodeId, flits: u32, sent_at: Cycle) -> Cycle {
        let serialize = Cycle(u64::from(flits) * self.cfg.flit_cycles);
        let rx = &mut self.ports[dst.index()].rx_free;
        let rx_start = head_arrives.max(*rx);
        self.stats.rx_wait_cycles += (rx_start - head_arrives).as_u64();
        let deliver = rx_start + serialize;
        *rx = deliver;

        self.record(sent_at, deliver, flits);
        deliver
    }

    /// Convenience for [`Network::send`] taking a [`FlitCount`].
    pub fn send_sized(&mut self, now: Cycle, src: NodeId, dst: NodeId, size: FlitCount) -> Cycle {
        self.send(now, src, dst, size.as_u32())
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn record(&mut self, now: Cycle, deliver: Cycle, flits: u32) {
        self.stats.messages += 1;
        self.stats.flits += u64::from(flits);
        self.stats.total_latency += (deliver - now).as_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(MeshTopology::for_nodes(n), NetConfig::default())
    }

    #[test]
    fn uncontended_latency_scales_with_hops() {
        let mut n = net(16);
        let near = n.send(Cycle(0), NodeId(0), NodeId(1), 4);
        let mut n2 = net(16);
        let far = n2.send(Cycle(0), NodeId(0), NodeId(15), 4);
        assert!(far > near);
        // 4x4 mesh: 0 -> 15 is 6 hops; 0 -> 1 is 1 hop; difference is
        // 5 hop-cycles.
        assert_eq!((far - near).as_u64(), 5);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut a = net(16);
        let ctl = a.send(Cycle(0), NodeId(0), NodeId(5), FlitCount::CONTROL.as_u32());
        let mut b = net(16);
        let data = b.send(Cycle(0), NodeId(0), NodeId(5), FlitCount::DATA.as_u32());
        // Data serializes through both endpoint queues.
        assert_eq!(
            (data - ctl).as_u64(),
            2 * u64::from(FlitCount::DATA.as_u32() - FlitCount::CONTROL.as_u32())
        );
    }

    #[test]
    fn same_pair_messages_deliver_in_fifo_order() {
        let mut n = net(16);
        let mut last = Cycle::ZERO;
        for _ in 0..20 {
            let t = n.send(Cycle(0), NodeId(2), NodeId(9), 4);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn tx_queue_contention_serializes_sends() {
        let mut n = net(16);
        let a = n.send(Cycle(0), NodeId(0), NodeId(1), 8);
        let b = n.send(Cycle(0), NodeId(0), NodeId(2), 8);
        // Second message leaves only after the first finishes
        // serializing out of node 0.
        assert!(b >= a);
        assert!(n.stats().tx_wait_cycles > 0);
    }

    #[test]
    fn rx_queue_contention_counts_waiting() {
        let mut n = net(16);
        // Many nodes flood node 0 simultaneously.
        for src in 1..16 {
            n.send(Cycle(0), NodeId(src), NodeId(0), 8);
        }
        assert!(n.stats().rx_wait_cycles > 0);
    }

    #[test]
    fn loopback_is_cheap_but_nonzero() {
        let mut n = net(16);
        let t = n.send(Cycle(0), NodeId(3), NodeId(3), 4);
        assert!(t > Cycle(0));
        let mut m = net(16);
        let remote = m.send(Cycle(0), NodeId(3), NodeId(4), 4);
        assert!(t < remote);
    }

    #[test]
    fn loopback_is_a_dedicated_fifo() {
        let mut n = net(16);
        // Strictly in send order, one cycle apart when saturated...
        let a = n.send(Cycle(0), NodeId(3), NodeId(3), 4);
        let b = n.send(Cycle(0), NodeId(3), NodeId(3), 12);
        assert_eq!(a, Cycle(NetConfig::default().loopback_cycles));
        assert_eq!(b, a + Cycle(1)); // size-independent
                                     // ...and independent of mesh traffic through the same node.
        let before = n.send(Cycle(0), NodeId(2), NodeId(3), 8);
        let c = n.send(Cycle(0), NodeId(3), NodeId(3), 4);
        assert_eq!(c, b + Cycle(1));
        assert!(before > Cycle(0));
        // Loopback is counted separately, not as mesh traffic.
        assert_eq!(n.stats().loopback_messages, 3);
        assert_eq!(n.stats().messages, 1);
    }

    #[test]
    fn later_sends_never_deliver_earlier_from_same_source() {
        let mut n = net(64);
        let t1 = n.send(Cycle(10), NodeId(0), NodeId(63), 4);
        let t2 = n.send(Cycle(11), NodeId(0), NodeId(63), 4);
        assert!(t2 > t1);
    }

    #[test]
    fn stats_track_messages_and_flits() {
        let mut n = net(4);
        n.send(Cycle(0), NodeId(0), NodeId(1), 4);
        n.send(Cycle(0), NodeId(1), NodeId(2), 12);
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.flits, 16);
        assert!(s.mean_latency() > 0.0);
    }

    #[test]
    fn quiescent_network_mean_latency_is_zero() {
        let n = net(4);
        assert_eq!(n.stats().mean_latency(), 0.0);
    }

    #[test]
    fn split_tx_rx_matches_send() {
        // Interleave a mixed traffic pattern through both APIs; every
        // delivery time and the final stats must agree.
        let mut whole = net(16);
        let mut split = net(16);
        let pattern = [
            (0u64, 0u16, 5u16, 4u32),
            (0, 0, 9, 12),
            (3, 5, 5, 4),
            (3, 9, 0, 8),
            (4, 0, 5, 4),
            (10, 5, 0, 12),
            (10, 5, 0, 4),
        ];
        for &(now, src, dst, flits) in &pattern {
            let a = whole.send(Cycle(now), NodeId(src), NodeId(dst), flits);
            let b = match split.tx(Cycle(now), NodeId(src), NodeId(dst), flits) {
                TxPhase::Loopback { deliver } => deliver,
                TxPhase::Mesh { head_arrives } => {
                    split.rx(head_arrives, NodeId(dst), flits, Cycle(now))
                }
            };
            assert_eq!(a, b, "delivery diverged for {now} {src}->{dst}");
        }
        assert_eq!(whole.stats(), split.stats());
    }

    #[test]
    fn min_cross_latency_bounds_every_mesh_send() {
        let cfg = NetConfig::default();
        let floor = cfg.min_cross_latency(FlitCount::CONTROL.as_u32());
        assert_eq!(floor, 7); // inject 2 + 4 flits * 1 + 1 hop
        let mut n = net(64);
        for dst in 1..64 {
            let mut fresh = net(64);
            if let TxPhase::Mesh { head_arrives } = fresh.tx(
                Cycle(100),
                NodeId(0),
                NodeId(dst),
                FlitCount::CONTROL.as_u32(),
            ) {
                assert!(head_arrives >= Cycle(100 + floor), "dst {dst}");
            } else {
                panic!("cross-node send took the loopback path");
            }
            // Contention only increases arrival time.
            n.send(Cycle(100), NodeId(0), NodeId(dst), FlitCount::DATA.as_u32());
            if let TxPhase::Mesh { head_arrives } = n.tx(
                Cycle(100),
                NodeId(0),
                NodeId(dst),
                FlitCount::CONTROL.as_u32(),
            ) {
                assert!(head_arrives >= Cycle(100 + floor), "contended dst {dst}");
            }
        }
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = net(16);
        a.send(Cycle(0), NodeId(0), NodeId(1), 4);
        a.send(Cycle(0), NodeId(0), NodeId(2), 8);
        a.send(Cycle(0), NodeId(3), NodeId(3), 4);
        let mut b = net(16);
        for src in 1..8 {
            b.send(Cycle(0), NodeId(src), NodeId(0), 8);
        }
        let (sa, sb) = (a.stats(), b.stats());
        let mut merged = sa;
        merged.merge(&sb);
        assert_eq!(merged.messages, sa.messages + sb.messages);
        assert_eq!(merged.flits, sa.flits + sb.flits);
        assert_eq!(merged.tx_wait_cycles, sa.tx_wait_cycles + sb.tx_wait_cycles);
        assert_eq!(merged.rx_wait_cycles, sa.rx_wait_cycles + sb.rx_wait_cycles);
        assert_eq!(merged.total_latency, sa.total_latency + sb.total_latency);
        assert_eq!(
            merged.loopback_messages,
            sa.loopback_messages + sb.loopback_messages
        );
        // Commutative: the other order gives the same totals.
        let mut flipped = sb;
        flipped.merge(&sa);
        assert_eq!(merged, flipped);
    }
}
