//! Message envelopes: addressing and size metadata for network
//! transfers.

use limitless_sim::NodeId;

/// Size of a message in flits (flow-control units).
///
/// Alewife's network moves 16-bit flits; for modelling purposes the
/// absolute unit is irrelevant — what matters is the *ratio* between
/// header-only protocol messages and messages carrying a 16-byte cache
/// line. The conventional sizes used throughout the simulator are
/// [`FlitCount::CONTROL`] and [`FlitCount::DATA`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlitCount(pub u32);

impl FlitCount {
    /// A header-only protocol message (request, invalidation, ack…):
    /// source/destination/command/address.
    pub const CONTROL: FlitCount = FlitCount(4);

    /// A message carrying a full 16-byte memory block plus header.
    pub const DATA: FlitCount = FlitCount(12);

    /// The raw flit count.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// A payload-carrying message envelope.
///
/// The network layer itself only needs `src`, `dst` and `size`; the
/// payload travels opaquely to the machine layer, which interprets it
/// as a coherence message, a barrier token, etc.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Size on the wire.
    pub size: FlitCount,
    /// Opaque payload.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, size: FlitCount, payload: P) -> Self {
        Envelope {
            src,
            dst,
            size,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_bigger_than_control() {
        assert!(FlitCount::DATA > FlitCount::CONTROL);
        assert_eq!(FlitCount::DATA.as_u32(), 12);
    }

    #[test]
    fn envelope_carries_payload() {
        let e = Envelope::new(NodeId(1), NodeId(2), FlitCount::CONTROL, "inv");
        assert_eq!(e.src, NodeId(1));
        assert_eq!(e.dst, NodeId(2));
        assert_eq!(e.payload, "inv");
    }
}
