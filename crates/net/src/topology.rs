//! Mesh topology and dimension-ordered routing distances.

use limitless_sim::NodeId;

/// A `width x height` 2-D mesh of nodes, numbered in row-major order.
///
/// Routing is dimension-ordered (X then Y), as in the Alewife mesh, so
/// the path length between two nodes is the Manhattan distance between
/// their coordinates.
///
/// # Examples
///
/// ```
/// use limitless_net::MeshTopology;
/// use limitless_sim::NodeId;
///
/// let m = MeshTopology::new(4, 4);
/// assert_eq!(m.nodes(), 16);
/// assert_eq!(m.hops(NodeId(0), NodeId(15)), 6); // (0,0) -> (3,3)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshTopology {
    width: u16,
    height: u16,
    /// Row-major `(x, y)` per node, precomputed at construction so the
    /// per-message `hops` lookup is two table reads and two
    /// subtractions instead of a divide and a modulo.
    coords: Box<[(u16, u16)]>,
}

impl MeshTopology {
    /// Creates a mesh with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        let coords = (0..height)
            .flat_map(|y| (0..width).map(move |x| (x, y)))
            .collect();
        MeshTopology {
            width,
            height,
            coords,
        }
    }

    /// Creates the squarest mesh holding exactly `n` nodes: a
    /// `sqrt(n)`-by-`sqrt(n)` mesh for square `n`, otherwise the
    /// most-square factorization (falling back to `1 x n` for primes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `u16::MAX` squared.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "mesh must contain at least one node");
        let n64 = n as u64;
        let mut best = (1u64, n64);
        let mut w = (n64 as f64).sqrt() as u64;
        while w >= 1 {
            if n64.is_multiple_of(w) {
                best = (w, n64 / w);
                break;
            }
            w -= 1;
        }
        MeshTopology::new(
            u16::try_from(best.0).expect("mesh too wide"),
            u16::try_from(best.1).expect("mesh too tall"),
        )
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Mesh width (X dimension).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (Y dimension).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// The (x, y) coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    pub fn coords(&self, node: NodeId) -> (u16, u16) {
        assert!(node.index() < self.nodes(), "node {node} outside mesh");
        self.coords[node.index()]
    }

    /// The node at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "coords outside mesh");
        NodeId(y * self.width + x)
    }

    /// Number of network hops between two nodes under dimension-ordered
    /// routing (the Manhattan distance). Zero for `a == b`.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords[a.index()];
        let (bx, by) = self.coords[b.index()];
        u32::from(ax.abs_diff(bx)) + u32::from(ay.abs_diff(by))
    }

    /// The largest hop count between any pair of nodes (the mesh
    /// diameter).
    pub fn diameter(&self) -> u32 {
        u32::from(self.width - 1) + u32::from(self.height - 1)
    }

    /// Minimum hop count between any node in `a` and any node in `b`,
    /// where both are non-empty ranges of row-major node indices.
    ///
    /// A contiguous row-major range covers a prefix row segment, a run
    /// of full rows, and a suffix row segment; the minimum Manhattan
    /// distance is therefore a min over the O(height²) row-segment
    /// pairs, each costing a constant-time interval-gap computation.
    /// Overlapping ranges trivially yield zero.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty or extends past the mesh.
    pub fn range_hops(&self, a: std::ops::Range<usize>, b: std::ops::Range<usize>) -> u32 {
        assert!(!a.is_empty() && !b.is_empty(), "range_hops on empty range");
        assert!(
            a.end <= self.nodes() && b.end <= self.nodes(),
            "range extends outside mesh"
        );
        if a.start < b.end && b.start < a.end {
            return 0;
        }
        let mut best = u32::MAX;
        for (ay, alo, ahi) in self.row_segments(&a) {
            for (by, blo, bhi) in self.row_segments(&b) {
                let dy = u32::from(ay.abs_diff(by));
                // Horizontal gap between the two x-intervals (zero when
                // they overlap in x).
                let dx = if ahi < blo {
                    u32::from(blo - ahi)
                } else if bhi < alo {
                    u32::from(alo - bhi)
                } else {
                    0
                };
                best = best.min(dx + dy);
            }
        }
        best
    }

    /// The row segments `(y, x_lo, x_hi)` (inclusive x bounds) covered
    /// by a non-empty row-major index range.
    fn row_segments(&self, r: &std::ops::Range<usize>) -> Vec<(u16, u16, u16)> {
        let w = usize::from(self.width);
        let (first, last) = (r.start / w, (r.end - 1) / w);
        (first..=last)
            .map(|y| {
                let lo = if y == first { (r.start % w) as u16 } else { 0 };
                let hi = if y == last {
                    ((r.end - 1) % w) as u16
                } else {
                    self.width - 1
                };
                (y as u16, lo, hi)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_coords_round_trip() {
        let m = MeshTopology::new(4, 3);
        for i in 0..m.nodes() {
            let n = NodeId::from_index(i);
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(7)), 7);
        assert_eq!(m.hops(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.hops(NodeId(9), NodeId(9)), 0);
    }

    #[test]
    fn hops_is_symmetric() {
        let m = MeshTopology::new(5, 3);
        for a in 0..m.nodes() {
            for b in 0..m.nodes() {
                assert_eq!(
                    m.hops(NodeId::from_index(a), NodeId::from_index(b)),
                    m.hops(NodeId::from_index(b), NodeId::from_index(a))
                );
            }
        }
    }

    #[test]
    fn for_nodes_prefers_square() {
        assert_eq!(MeshTopology::for_nodes(16), MeshTopology::new(4, 4));
        assert_eq!(MeshTopology::for_nodes(64), MeshTopology::new(8, 8));
        assert_eq!(MeshTopology::for_nodes(256), MeshTopology::new(16, 16));
        let m = MeshTopology::for_nodes(12);
        assert_eq!(m.nodes(), 12);
        assert_eq!((m.width(), m.height()), (3, 4));
    }

    #[test]
    fn for_nodes_handles_primes_and_one() {
        assert_eq!(MeshTopology::for_nodes(1).nodes(), 1);
        let m = MeshTopology::for_nodes(7);
        assert_eq!(m.nodes(), 7);
    }

    #[test]
    fn diameter_matches_corner_to_corner() {
        let m = MeshTopology::new(16, 16);
        assert_eq!(m.diameter(), 30);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(15, 15)), m.diameter());
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn coords_out_of_range_panics() {
        MeshTopology::new(2, 2).coords(NodeId(4));
    }

    /// Brute-force reference: min pairwise `hops` over the ranges.
    fn range_hops_naive(
        m: &MeshTopology,
        a: std::ops::Range<usize>,
        b: std::ops::Range<usize>,
    ) -> u32 {
        let mut best = u32::MAX;
        for i in a {
            for j in b.clone() {
                best = best.min(m.hops(NodeId::from_index(i), NodeId::from_index(j)));
            }
        }
        best
    }

    #[test]
    fn range_hops_matches_brute_force() {
        // Square, rectangular, and degenerate 1-wide (prime-count)
        // meshes; every contiguous partition-style range pair.
        for m in [
            MeshTopology::new(4, 4),
            MeshTopology::new(5, 3),
            MeshTopology::new(1, 7),
            MeshTopology::new(8, 8),
        ] {
            let n = m.nodes();
            let cuts: Vec<usize> = (0..=n).collect();
            for &s1 in &cuts {
                for &e1 in &cuts {
                    if s1 >= e1 {
                        continue;
                    }
                    // Sample second ranges to keep the quartic loop fast.
                    for &(s2, e2) in &[(0, 1), (0, n), (n / 2, n), (e1.min(n - 1), n), (s1, e1)] {
                        if s2 >= e2 {
                            continue;
                        }
                        assert_eq!(
                            m.range_hops(s1..e1, s2..e2),
                            range_hops_naive(&m, s1..e1, s2..e2),
                            "mesh {}x{} ranges {s1}..{e1} vs {s2}..{e2}",
                            m.width(),
                            m.height()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_hops_partition_pairs_67_nodes() {
        // The prime-count mesh used by the sharded-engine tests: 67
        // nodes over 4 lanes with uneven contiguous bounds.
        let m = MeshTopology::for_nodes(67);
        let lanes = 4;
        let bounds: Vec<usize> = (0..=lanes).map(|l| l * 67 / lanes).collect();
        for a in 0..lanes {
            for b in 0..lanes {
                let ra = bounds[a]..bounds[a + 1];
                let rb = bounds[b]..bounds[b + 1];
                assert_eq!(
                    m.range_hops(ra.clone(), rb.clone()),
                    range_hops_naive(&m, ra, rb)
                );
            }
        }
    }

    #[test]
    fn range_hops_overlap_is_zero() {
        let m = MeshTopology::new(4, 4);
        assert_eq!(m.range_hops(0..8, 4..12), 0);
        assert_eq!(m.range_hops(3..4, 3..4), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_hops_empty_range_panics() {
        MeshTopology::new(2, 2).range_hops(0..0, 0..4);
    }
}
