//! 2-D mesh interconnect model for the `limitless` simulator.
//!
//! Alewife nodes communicate over a mesh network (Seitz-style wormhole
//! routing). Following NWO, the paper's simulator, this model accounts
//! for contention **only at the CMMU network transmit and receive
//! queues** of each node — not inside the mesh switches (§3.2 of the
//! paper lists this as one of NWO's two deliberate inaccuracies, which
//! we reproduce to stay at the same modelling altitude).
//!
//! The [`Network`] type is a timing calculator: given a send at time
//! `t` from `src` to `dst` with a given flit count, it returns the
//! cycle at which the message is available at the destination, updating
//! the endpoint queue occupancies as a side effect. The machine layer
//! turns that time into a delivery event.
//!
//! # Examples
//!
//! ```
//! use limitless_net::{MeshTopology, NetConfig, Network};
//! use limitless_sim::{Cycle, NodeId};
//!
//! let topo = MeshTopology::for_nodes(16); // 4x4 mesh
//! let mut net = Network::new(topo, NetConfig::default());
//! let t = net.send(Cycle(0), NodeId(0), NodeId(15), 2);
//! assert!(t > Cycle(0));
//! ```

pub mod message;
pub mod network;
pub mod topology;

pub use message::{Envelope, FlitCount};
pub use network::{NetConfig, NetStats, Network, TxPhase};
pub use topology::MeshTopology;
