//! Property tests for the network timing model.

use limitless_net::{MeshTopology, NetConfig, Network};
use limitless_sim::{Cycle, NodeId};
use proptest::prelude::*;

proptest! {
    /// Same-pair messages are delivered in send order (the FIFO
    /// property the coherence protocol depends on for writeback
    /// races).
    #[test]
    fn per_pair_fifo(
        sends in prop::collection::vec((0u64..1000, 0u16..16, 0u16..16, 1u32..16), 1..100),
    ) {
        let mut net = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        let mut last: std::collections::HashMap<(u16, u16), Cycle> = Default::default();
        let mut now = Cycle::ZERO;
        for (gap, src, dst, flits) in sends {
            now += gap; // non-decreasing send times
            let t = net.send(now, NodeId(src), NodeId(dst), flits);
            if let Some(&prev) = last.get(&(src, dst)) {
                prop_assert!(t > prev, "FIFO violated {src}->{dst}");
            }
            last.insert((src, dst), t);
        }
    }

    /// Delivery never precedes the send, and respects the physical
    /// minimum (hops + serialization).
    #[test]
    fn latency_has_a_physical_floor(
        src in 0u16..16, dst in 0u16..16, flits in 1u32..32, at in 0u64..10_000,
    ) {
        let topo = MeshTopology::for_nodes(16);
        let cfg = NetConfig::default();
        let mut net = Network::new(topo, cfg);
        let t = net.send(Cycle(at), NodeId(src), NodeId(dst), flits);
        prop_assert!(t > Cycle(at));
        if src != dst {
            let min = u64::from(topo.hops(NodeId(src), NodeId(dst))) * cfg.hop_cycles
                + 2 * u64::from(flits) * cfg.flit_cycles
                + cfg.inject_cycles;
            prop_assert!(t >= Cycle(at + min));
        }
    }

    /// Contention only ever delays: interleaving extra traffic never
    /// makes a later message arrive earlier than the uncontended time.
    #[test]
    fn contention_is_monotone(extra in 0usize..30) {
        let mut quiet = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        let baseline = quiet.send(Cycle(100), NodeId(0), NodeId(5), 8);

        let mut busy = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        for i in 0..extra {
            busy.send(Cycle(i as u64), NodeId(0), NodeId((i % 15 + 1) as u16), 8);
        }
        let contended = busy.send(Cycle(100), NodeId(0), NodeId(5), 8);
        prop_assert!(contended >= baseline);
    }
}
