//! Randomized property tests for the network timing model, generated
//! with the deterministic `SplitMix64` generator.

use limitless_net::{MeshTopology, NetConfig, Network};
use limitless_sim::{Cycle, NodeId, SplitMix64};

const CASES: u64 = 64;

#[test]
fn per_pair_fifo() {
    // Same-pair messages are delivered in send order (the FIFO
    // property the coherence protocol depends on for writeback races).
    let mut rng = SplitMix64::new(0x2001);
    for case in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let mut net = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        let mut last: std::collections::HashMap<(u16, u16), Cycle> = Default::default();
        let mut now = Cycle::ZERO;
        for _ in 0..len {
            let gap = rng.next_below(1000);
            let src = rng.next_below(16) as u16;
            let dst = rng.next_below(16) as u16;
            let flits = 1 + rng.next_below(15) as u32;
            now += gap; // non-decreasing send times
            let t = net.send(now, NodeId(src), NodeId(dst), flits);
            if let Some(&prev) = last.get(&(src, dst)) {
                assert!(t > prev, "case {case}: FIFO violated {src}->{dst}");
            }
            last.insert((src, dst), t);
        }
    }
}

#[test]
fn latency_has_a_physical_floor() {
    // Delivery never precedes the send, and respects the physical
    // minimum (hops + serialization).
    let mut rng = SplitMix64::new(0x2002);
    for case in 0..CASES {
        let src = rng.next_below(16) as u16;
        let dst = rng.next_below(16) as u16;
        let flits = 1 + rng.next_below(31) as u32;
        let at = rng.next_below(10_000);
        let topo = MeshTopology::for_nodes(16);
        let cfg = NetConfig::default();
        let mut net = Network::new(topo.clone(), cfg);
        let t = net.send(Cycle(at), NodeId(src), NodeId(dst), flits);
        assert!(t > Cycle(at), "case {case}: delivery precedes send");
        if src != dst {
            let min = u64::from(topo.hops(NodeId(src), NodeId(dst))) * cfg.hop_cycles
                + 2 * u64::from(flits) * cfg.flit_cycles
                + cfg.inject_cycles;
            assert!(t >= Cycle(at + min), "case {case}: below physical floor");
        }
    }
}

#[test]
fn contention_is_monotone() {
    // Contention only ever delays: interleaving extra traffic never
    // makes a later message arrive earlier than the uncontended time.
    for extra in 0usize..30 {
        let mut quiet = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        let baseline = quiet.send(Cycle(100), NodeId(0), NodeId(5), 8);

        let mut busy = Network::new(MeshTopology::for_nodes(16), NetConfig::default());
        for i in 0..extra {
            busy.send(Cycle(i as u64), NodeId(0), NodeId((i % 15 + 1) as u16), 8);
        }
        let contended = busy.send(Cycle(100), NodeId(0), NodeId(5), 8);
        assert!(
            contended >= baseline,
            "extra={extra}: contention sped up delivery"
        );
    }
}
