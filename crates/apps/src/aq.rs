//! AQ: adaptive quadrature of x⁴y⁴ over ((0,0),(2,2)) (paper §6,
//! Figure 4b).
//!
//! The core is a recursive integrator that subdivides panels until the
//! local error estimate meets the tolerance (0.005 in the paper). All
//! communication is producer–consumer: a parent's panel descriptor is
//! written once and read by the node that integrates it — small worker
//! sets, which is why AQ "performs equally well for all protocols that
//! implement at least one directory pointer in hardware".
//!
//! The recursion runs offline (real arithmetic, adaptive Simpson in
//! each dimension composed over 2-D panels); nodes replay the panel
//! streams and combine partial sums through a binary reduction tree in
//! shared memory.

use limitless_machine::{Op, Program, Rmw};
use limitless_sim::Addr;

use crate::layout::{chunk, slot, AddressSpace, ScriptWithCode, LINE};
use crate::{App, Scale};

/// Fixed-point scale for carrying the integral through `u64` shared
/// memory (2^20 ≈ six decimal digits).
pub const FIXED_POINT: f64 = (1u64 << 20) as f64;

/// AQ configuration.
#[derive(Clone, Copy, Debug)]
pub struct Aq {
    /// Error tolerance (paper: 0.005).
    pub tolerance: f64,
    /// Depth at which panels are distributed across nodes.
    pub split_depth: u32,
}

impl Aq {
    /// The paper's configuration (quick scale relaxes the tolerance).
    pub fn new(scale: Scale) -> Self {
        Aq {
            tolerance: match scale {
                Scale::Quick => 0.05,
                Scale::Paper => 0.005,
            },
            split_depth: 3,
        }
    }

    fn f(x: f64, y: f64) -> f64 {
        x.powi(4) * y.powi(4)
    }

    /// Midpoint estimate of the panel integral.
    fn estimate(x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        Self::f((x0 + x1) / 2.0, (y0 + y1) / 2.0) * (x1 - x0) * (y1 - y0)
    }

    /// Adaptive recursion: returns (integral, panels visited).
    fn adapt(&self, x0: f64, y0: f64, x1: f64, y1: f64, tol: f64) -> (f64, usize) {
        let whole = Self::estimate(x0, y0, x1, y1);
        let xm = (x0 + x1) / 2.0;
        let ym = (y0 + y1) / 2.0;
        let parts = [
            (x0, y0, xm, ym),
            (xm, y0, x1, ym),
            (x0, ym, xm, y1),
            (xm, ym, x1, y1),
        ];
        let refined: f64 = parts
            .iter()
            .map(|&(a, b, c, d)| Self::estimate(a, b, c, d))
            .sum();
        if (refined - whole).abs() <= tol {
            return (refined, 1);
        }
        let mut total = 0.0;
        let mut visits = 1;
        for &(a, b, c, d) in &parts {
            let (v, n) = self.adapt(a, b, c, d, tol / 4.0);
            total += v;
            visits += n;
        }
        (total, visits)
    }

    /// The panels at the distribution depth, in deterministic order.
    fn top_panels(&self) -> Vec<(f64, f64, f64, f64)> {
        let k = 1usize << self.split_depth;
        let step = 2.0 / k as f64;
        let mut panels = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                panels.push((
                    i as f64 * step,
                    j as f64 * step,
                    (i + 1) as f64 * step,
                    (j + 1) as f64 * step,
                ));
            }
        }
        panels
    }

    /// The exact integral: ∫∫ x⁴y⁴ over (0,2)² = (2⁵/5)² = 40.96.
    pub fn analytic() -> f64 {
        (32.0f64 / 5.0) * (32.0 / 5.0)
    }

    /// The value the parallel computation produces (offline).
    pub fn computed(&self) -> f64 {
        let per_panel_tol = self.tolerance / self.top_panels().len() as f64;
        self.top_panels()
            .iter()
            .map(|&(a, b, c, d)| self.adapt(a, b, c, d, per_panel_tol).0)
            .sum()
    }

    fn layout(&self) -> AqLayout {
        let mut space = AddressSpace::new(0xA_0000);
        let panels = space.region(4096); // panel descriptors (producer–consumer)
        let partials = space.region(512); // one block per node: partial sums
        let result = space.block();
        AqLayout {
            panels,
            partials,
            result,
        }
    }
}

struct AqLayout {
    panels: Addr,
    partials: Addr,
    result: Addr,
}

impl App for Aq {
    fn name(&self) -> &'static str {
        "AQ"
    }

    fn language(&self) -> &'static str {
        "Semi-C"
    }

    fn size_description(&self) -> String {
        format!("x^4*y^4 over (0,2)^2, tol {}", self.tolerance)
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let l = self.layout();
        let panels = self.top_panels();
        let per_panel_tol = self.tolerance / panels.len() as f64;
        // Offline: integral and visit count per top-level panel.
        let work: Vec<(f64, usize)> = panels
            .iter()
            .map(|&(a, b, c, d)| self.adapt(a, b, c, d, per_panel_tol))
            .collect();

        (0..nodes)
            .map(|me| {
                let mut ops = Vec::new();
                // Node 0 produces the panel descriptors; everyone
                // consumes their chunk after a barrier.
                if me == 0 {
                    for (t, _) in panels.iter().enumerate() {
                        ops.push(Op::Write(slot(l.panels, t as u64), t as u64 + 1));
                    }
                }
                ops.push(Op::Barrier);
                let (start, end) = chunk(panels.len(), nodes, me);
                let mut sum = 0.0;
                for (t, &(value, visits)) in work.iter().enumerate().take(end).skip(start) {
                    // Consume the descriptor (producer-consumer read).
                    ops.push(Op::Read(slot(l.panels, t as u64)));
                    sum += value;
                    // The recursion itself is local compute plus
                    // private stack traffic.
                    for v in 0..visits {
                        ops.push(Op::Compute(1000));
                        if v % 4 == 3 {
                            ops.push(Op::Write(
                                Addr(l.partials.0 + (me as u64) * LINE),
                                (sum * FIXED_POINT) as u64,
                            ));
                        }
                    }
                }
                // Publish the final partial sum, then reduce.
                ops.push(Op::Write(
                    Addr(l.partials.0 + (me as u64) * LINE),
                    (sum * FIXED_POINT) as u64,
                ));
                ops.push(Op::Barrier);
                // Binary reduction tree: at round r, nodes with
                // me % 2^(r+1) == 0 read their partner's partial and
                // add it into the global result via fetch-add.
                if me == 0 {
                    ops.push(Op::Write(l.result, 0));
                }
                ops.push(Op::Barrier);
                ops.push(Op::Rmw(l.result, Rmw::Add((sum * FIXED_POINT) as u64)));
                ops.push(Op::Barrier);
                if me == 0 {
                    ops.push(Op::Read(l.result));
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        // The reduction must reproduce the offline total exactly
        // (fixed-point addition is associative), but per-node rounding
        // depends on the partition, so recompute per node count is not
        // possible here; instead verify against the sum of per-panel
        // fixed-point values is within the partition rounding slop by
        // checking in tests. Here: no exact single value — validated
        // in tests with a known node count.
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::{Machine, MachineConfig};

    #[test]
    fn computed_integral_matches_analytic_within_tolerance() {
        let aq = Aq::new(Scale::Quick);
        let got = aq.computed();
        let want = Aq::analytic();
        assert!(
            (got - want).abs() < 0.5,
            "integral {got} vs analytic {want}"
        );
        let tight = Aq {
            tolerance: 0.005,
            split_depth: 3,
        };
        assert!((tight.computed() - want).abs() < 0.05);
    }

    #[test]
    fn parallel_reduction_reproduces_integral() {
        let aq = Aq::new(Scale::Quick);
        let nodes = 8;
        let mut m = Machine::new(
            MachineConfig::builder()
                .nodes(nodes)
                .protocol(ProtocolSpec::limitless(5))
                .check_coherence(true)
                .build(),
        );
        m.load(aq.programs(nodes));
        m.run();
        let result = m.peek(aq.layout().result) as f64 / FIXED_POINT;
        assert!(
            (result - Aq::analytic()).abs() < 0.5,
            "machine-computed integral {result}"
        );
    }

    #[test]
    fn all_protocols_compute_the_same_integral() {
        let aq = Aq {
            tolerance: 0.2,
            split_depth: 2,
        };
        let mut results = Vec::new();
        for p in [
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::one_ptr_lack(),
            ProtocolSpec::full_map(),
        ] {
            let mut m = Machine::new(
                MachineConfig::builder()
                    .nodes(4)
                    .protocol(p)
                    .check_coherence(true)
                    .build(),
            );
            m.load(aq.programs(4));
            m.run();
            results.push(m.peek(aq.layout().result));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn producer_consumer_runs_clean_on_one_pointer() {
        let aq = Aq {
            tolerance: 0.2,
            split_depth: 2,
        };
        let r = run_app(
            &aq,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(1))
                .check_coherence(true)
                .build(),
        );
        assert!(r.cycles.as_u64() > 0);
    }
}
