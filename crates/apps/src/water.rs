//! WATER: molecular dynamics of liquid water from SPLASH (paper §6,
//! Figure 4f).
//!
//! An O(n²/2) pairwise force computation over 64 molecules (paper
//! size), with per-step position updates and global energy
//! reductions. Every node reads every other node's molecule positions
//! each step (read-mostly all-to-all: worker sets near `p`), but
//! writes stay on the owner's molecules — which is why WATER runs well
//! across the whole spectrum and the software-only directory still
//! achieves ~70 % of full-map.

use limitless_machine::{Op, Program, Rmw};
use limitless_sim::{Addr, SplitMix64};

use crate::layout::{chunk, slot, AddressSpace, ScriptWithCode};
use crate::{App, Scale};

/// WATER configuration.
#[derive(Clone, Copy, Debug)]
pub struct Water {
    /// Molecule count (paper: 64).
    pub molecules: usize,
    /// Time steps.
    pub steps: usize,
    /// Seed for initial state.
    pub seed: u64,
}

impl Water {
    /// Paper scale: 64 molecules; quick: 24.
    pub fn new(scale: Scale) -> Self {
        Water {
            molecules: match scale {
                Scale::Quick => 32,
                Scale::Paper => 64,
            },
            steps: 4,
            seed: 0xAA_u64 ^ 0xFF,
        }
    }

    fn layout(&self) -> WaterLayout {
        let mut space = AddressSpace::new(0x60_0000);
        // One block per molecule: position record (read by everyone).
        let positions = space.region(self.molecules as u64);
        // One block per molecule: force accumulator (owner-written).
        let forces = space.region(self.molecules as u64);
        let energy = space.block();
        WaterLayout {
            positions,
            forces,
            energy,
        }
    }

    /// Offline per-step per-molecule "position" words (a deterministic
    /// toy integrator — the protocols only see the access pattern, but
    /// the values let tests verify end-to-end data flow).
    fn states(&self) -> Vec<Vec<u64>> {
        let mut rng = SplitMix64::new(self.seed);
        let mut state: Vec<u64> = (0..self.molecules).map(|_| rng.next_u64() >> 32).collect();
        let mut per_step = Vec::with_capacity(self.steps);
        for _ in 0..self.steps {
            state = state
                .iter()
                .map(|&s| {
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407)
                        >> 8
                })
                .collect();
            per_step.push(state.clone());
        }
        per_step
    }
}

struct WaterLayout {
    positions: Addr,
    forces: Addr,
    energy: Addr,
}

impl App for Water {
    fn name(&self) -> &'static str {
        "WATER"
    }

    fn language(&self) -> &'static str {
        "C"
    }

    fn size_description(&self) -> String {
        format!("{} molecules", self.molecules)
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let l = self.layout();
        let states = self.states();
        (0..nodes)
            .map(|me| {
                let (m0, m1) = chunk(self.molecules, nodes, me);
                let mut ops = Vec::new();
                for step in &states {
                    // Force phase: for each owned molecule, interact
                    // with every later molecule (the classic
                    // triangular loop): read the partner's position.
                    for (i, &st) in step.iter().enumerate().take(m1).skip(m0) {
                        for j in i + 1..self.molecules {
                            ops.push(Op::Read(slot(l.positions, j as u64)));
                            ops.push(Op::Compute(2500));
                        }
                        ops.push(Op::Write(slot(l.forces, i as u64), st & 0xFFFF));
                    }
                    ops.push(Op::Barrier);
                    // Update phase: write my molecules' new positions.
                    for (i, &st) in step.iter().enumerate().take(m1).skip(m0) {
                        ops.push(Op::Read(slot(l.forces, i as u64)));
                        ops.push(Op::Write(slot(l.positions, i as u64), st));
                        ops.push(Op::Compute(1500));
                    }
                    // Energy reduction.
                    let e: u64 = (m0..m1).map(|i| step[i] & 0xFF).sum();
                    ops.push(Op::Rmw(l.energy, Rmw::Add(e)));
                    ops.push(Op::Barrier);
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        let states = self.states();
        let l = self.layout();
        let mut res: Vec<(Addr, u64)> = (0..self.molecules)
            .map(|i| (slot(l.positions, i as u64), states[self.steps - 1][i]))
            .collect();
        let energy: u64 = states
            .iter()
            .flat_map(|s| s.iter().map(|&v| v & 0xFF))
            .sum();
        res.push((l.energy, energy));
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn tiny() -> Water {
        Water {
            molecules: 10,
            steps: 2,
            seed: 7,
        }
    }

    #[test]
    fn states_are_deterministic() {
        assert_eq!(tiny().states(), tiny().states());
    }

    #[test]
    fn results_verified_across_spectrum() {
        for p in [
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::one_ptr_ack(),
            ProtocolSpec::limitless(5),
            ProtocolSpec::full_map(),
        ] {
            run_app(
                &tiny(),
                MachineConfig::builder()
                    .nodes(4)
                    .protocol(p)
                    .check_coherence(true)
                    .build(),
            );
        }
    }

    #[test]
    fn read_sharing_is_wide() {
        let mut m = limitless_machine::Machine::new(
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::full_map())
                .track_worker_sets(true)
                .build(),
        );
        let app = tiny();
        m.load(app.programs(8));
        let report = m.run();
        let h = report.stats.worker_sets.expect("tracking");
        // Some molecule blocks are read by many nodes between writes.
        assert!(h.max_value().unwrap_or(0) >= 4, "{h:?}");
    }
}
