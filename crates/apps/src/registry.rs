//! The application registry: the single source of truth mapping spec
//! strings to [`App`] instances.
//!
//! Every harness — the experiment tables, the threaded sweep runner,
//! the differential oracle, the fuzz campaign and the CLI's `--app`
//! filter — resolves workloads through [`build`], so adding an
//! application here makes it addressable everywhere at once. The
//! closed, thrice-duplicated app lists this replaces are gone: the
//! paper suite itself is just [`paper_suite`] iterating
//! [`PAPER_APPS`].

use crate::spec::parse_value;
use crate::synth::{Footprint, SharingPattern, Synth, MAX_BLOCKS};
use crate::{App, AppSpec, Aq, Evolve, Mp3d, Scale, Smgrid, SpecError, Tsp, Water, Worker};

/// Every name [`build`] accepts.
pub const KNOWN_APPS: [&str; 9] = [
    "tsp", "aq", "smgrid", "evolve", "mp3d", "water", "worker", "synth", "scale",
];

/// The six Figure-4 applications, in the paper's Table 3 order.
pub const PAPER_APPS: [&str; 6] = ["tsp", "aq", "smgrid", "evolve", "mp3d", "water"];

/// Builds the six Figure 4 applications at a given scale — the
/// replacement for every hardcoded suite enumeration.
pub fn paper_suite(scale: Scale) -> Vec<Box<dyn App>> {
    PAPER_APPS
        .iter()
        .map(|name| {
            build(&AppSpec::bare(name), scale)
                .expect("every PAPER_APPS name resolves by construction")
        })
        .collect()
}

/// Parses `s` and builds the application it names. The one-stop entry
/// for CLI `--app` arguments.
pub fn build_str(s: &str, scale: Scale) -> Result<Box<dyn App>, SpecError> {
    build(&s.parse()?, scale)
}

/// Builds the application a parsed spec names, resolving parameters
/// with typed errors for unknown names, unknown keys and bad values.
pub fn build(spec: &AppSpec, scale: Scale) -> Result<Box<dyn App>, SpecError> {
    match spec.name.as_str() {
        "tsp" => fixed(spec, Box::new(Tsp::new(scale))),
        "aq" => fixed(spec, Box::new(Aq::new(scale))),
        "smgrid" => fixed(spec, Box::new(Smgrid::new(scale))),
        "evolve" => fixed(spec, Box::new(Evolve::new(scale))),
        "mp3d" => fixed(spec, Box::new(Mp3d::new(scale))),
        "water" => fixed(spec, Box::new(Water::new(scale))),
        "worker" => build_worker(spec),
        "synth" => build_synth(spec, scale),
        "scale" => build_scale(spec, scale),
        _ => Err(SpecError::UnknownApp {
            name: spec.name.clone(),
            known: &KNOWN_APPS,
        }),
    }
}

/// A paper app with no tunable parameters: any key is an error.
fn fixed(spec: &AppSpec, app: Box<dyn App>) -> Result<Box<dyn App>, SpecError> {
    if let Some((key, _)) = spec.params.first() {
        return Err(SpecError::UnknownKey {
            app: spec.name.clone(),
            key: key.clone(),
            accepted: &[],
        });
    }
    Ok(app)
}

const WORKER_KEYS: [&str; 3] = ["ws", "blocks", "iters"];

fn build_worker(spec: &AppSpec) -> Result<Box<dyn App>, SpecError> {
    let mut w = Worker::fig2(8);
    for (key, value) in &spec.params {
        match key.as_str() {
            "ws" => w.set_size = positive(key, value)?,
            "blocks" => w.blocks_per_node = positive(key, value)?,
            "iters" => w.iterations = positive(key, value)?,
            _ => {
                return Err(SpecError::UnknownKey {
                    app: spec.name.clone(),
                    key: key.clone(),
                    accepted: &WORKER_KEYS,
                })
            }
        }
    }
    Ok(Box::new(w))
}

const SYNTH_KEYS: [&str; 10] = [
    "seed",
    "nodes",
    "pattern",
    "ws",
    "jitter",
    "rw",
    "sync",
    "footprint",
    "blocks",
    "rounds",
];

fn build_synth(spec: &AppSpec, scale: Scale) -> Result<Box<dyn App>, SpecError> {
    let mut s = Synth::new(scale);
    for (key, value) in &spec.params {
        match key.as_str() {
            "seed" => s.seed = parse_value(key, value, "a u64 seed")?,
            "nodes" => s.nodes_hint = Some(positive(key, value)?),
            "pattern" => {
                s.pattern = SharingPattern::parse(value).ok_or_else(|| SpecError::BadValue {
                    key: key.clone(),
                    value: value.clone(),
                    expected: "migratory, producer-consumer or wide-shared",
                })?
            }
            "ws" => s.ws = positive(key, value)?,
            "jitter" => s.jitter = parse_value(key, value, "a non-negative integer")?,
            "rw" => s.rw = fraction(key, value)?,
            "sync" => s.sync = fraction(key, value)?,
            "footprint" => {
                s.footprint = Footprint::parse(value).ok_or_else(|| SpecError::BadValue {
                    key: key.clone(),
                    value: value.clone(),
                    expected: "none, small or large",
                })?
            }
            "blocks" => {
                s.blocks = positive(key, value)?;
                if s.blocks > MAX_BLOCKS {
                    return Err(SpecError::BadValue {
                        key: key.clone(),
                        value: value.clone(),
                        expected: "at most 4096 blocks",
                    });
                }
            }
            "rounds" => s.rounds = positive(key, value)?,
            _ => {
                return Err(SpecError::UnknownKey {
                    app: spec.name.clone(),
                    key: key.clone(),
                    accepted: &SYNTH_KEYS,
                })
            }
        }
    }
    Ok(Box::new(s))
}

const SCALE_KEYS: [&str; 7] = ["seed", "nodes", "ws", "jitter", "sync", "blocks", "rounds"];

/// The `scale:` family: [`Synth::scale_out`] — a wide-shared synth
/// whose worker sets are sized from the machine (`nodes`, default
/// 1024) so the software extension overflows at every limited-pointer
/// regime. Every derived parameter can still be overridden.
fn build_scale(spec: &AppSpec, scale: Scale) -> Result<Box<dyn App>, SpecError> {
    // Resolve `nodes` first: the other defaults derive from it.
    let mut nodes = 1024usize;
    for (key, value) in &spec.params {
        if key == "nodes" {
            nodes = positive(key, value)?;
        }
    }
    let mut s = Synth::scale_out(nodes, scale);
    for (key, value) in &spec.params {
        match key.as_str() {
            "seed" => s.seed = parse_value(key, value, "a u64 seed")?,
            "nodes" => {}
            "ws" => s.ws = positive(key, value)?,
            "jitter" => s.jitter = parse_value(key, value, "a non-negative integer")?,
            "sync" => s.sync = fraction(key, value)?,
            "blocks" => {
                s.blocks = positive(key, value)?;
                if s.blocks > MAX_BLOCKS {
                    return Err(SpecError::BadValue {
                        key: key.clone(),
                        value: value.clone(),
                        expected: "at most 4096 blocks",
                    });
                }
            }
            "rounds" => s.rounds = positive(key, value)?,
            _ => {
                return Err(SpecError::UnknownKey {
                    app: spec.name.clone(),
                    key: key.clone(),
                    accepted: &SCALE_KEYS,
                })
            }
        }
    }
    Ok(Box::new(s))
}

fn positive(key: &str, value: &str) -> Result<usize, SpecError> {
    let n: usize = parse_value(key, value, "a positive integer")?;
    if n == 0 {
        return Err(SpecError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
            expected: "a positive integer",
        });
    }
    Ok(n)
}

fn fraction(key: &str, value: &str) -> Result<f64, SpecError> {
    let f: f64 = parse_value(key, value, "a fraction in [0, 1]")?;
    if !(0.0..=1.0).contains(&f) {
        return Err(SpecError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
            expected: "a fraction in [0, 1]",
        });
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table3_app_name() {
        // The Table 3 names, as the apps spell them. The registry must
        // resolve each one (case-insensitively) to an app that answers
        // to the same name — the single-source-of-truth guarantee.
        let suite = paper_suite(Scale::Quick);
        assert_eq!(suite.len(), PAPER_APPS.len());
        for app in &suite {
            let rebuilt = build_str(app.name(), Scale::Quick).unwrap();
            assert_eq!(rebuilt.name(), app.name());
        }
        let names: Vec<&str> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["TSP", "AQ", "SMGRID", "EVOLVE", "MP3D", "WATER"],
            "Table 3 order"
        );
        // WORKER (§5, Tables 1–2 and Figure 2) resolves too.
        assert_eq!(build_str("WORKER", Scale::Quick).unwrap().name(), "WORKER");
    }

    #[test]
    fn worker_parameters_resolve() {
        let app = build_str("worker:ws=8,blocks=2,iters=10", Scale::Quick).unwrap();
        assert!(app.size_description().contains("worker sets of 8"));
    }

    #[test]
    fn synth_specs_resolve_with_all_keys() {
        let app = build_str(
            "synth:seed=7,nodes=64,pattern=migratory,ws=6,rw=0.3,sync=0.01,footprint=large",
            Scale::Quick,
        )
        .unwrap();
        assert_eq!(app.name(), "SYNTH");
        assert_eq!(app.preferred_nodes(), Some(64));
        assert!(app.size_description().contains("pattern=migratory"));
    }

    #[test]
    fn scale_family_resolves_with_machine_derived_defaults() {
        let app = build_str("scale", Scale::Quick).unwrap();
        assert_eq!(app.name(), "SYNTH");
        assert_eq!(app.preferred_nodes(), Some(1024));
        assert!(app.size_description().contains("pattern=wide-shared"));
        assert!(app.size_description().contains("ws=128"), "1024 / 8");
        let app = build_str("scale:nodes=256,rounds=3", Scale::Quick).unwrap();
        assert_eq!(app.preferred_nodes(), Some(256));
        assert!(app.size_description().contains("ws=32"), "256 / 8");
        assert!(app.size_description().contains("rounds=3"));
        let e = build_str("scale:pattern=migratory", Scale::Quick)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(e, SpecError::UnknownKey { ref key, .. } if key == "pattern"),
            "the sharing pattern is what makes it a scale spec: {e:?}"
        );
    }

    #[test]
    fn unknown_app_lists_the_known_names() {
        let e = build_str("quicksort", Scale::Quick)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(e, SpecError::UnknownApp { .. }));
        assert!(e.to_string().contains("synth"), "{e}");
    }

    #[test]
    fn paper_apps_take_no_parameters() {
        let e = build_str("tsp:ws=4", Scale::Quick).map(|_| ()).unwrap_err();
        assert!(
            matches!(e, SpecError::UnknownKey { ref key, .. } if key == "ws"),
            "{e:?}"
        );
    }

    #[test]
    fn bad_values_are_typed_not_panics() {
        for bad in [
            "worker:ws=0",
            "worker:ws=many",
            "synth:rw=1.5",
            "synth:sync=-0.1",
            "synth:pattern=ring",
            "synth:footprint=huge",
            "synth:blocks=99999",
            "synth:seed=x",
        ] {
            let e = build_str(bad, Scale::Quick).map(|_| ()).unwrap_err();
            assert!(matches!(e, SpecError::BadValue { .. }), "{bad}: {e:?}");
        }
    }

    #[test]
    fn unknown_synth_key_names_the_accepted_set() {
        let e = build_str("synth:wss=4", Scale::Quick)
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("pattern"), "{e}");
    }
}
