//! SMGRID: static multigrid solver for elliptic PDEs (paper §6,
//! Figure 4c).
//!
//! Jacobi-style relaxation sweeps over a pyramid of grids
//! (129×129 at paper scale). The grid is partitioned into horizontal
//! strips; each sweep reads the strip's interior (private after the
//! first touch) plus the boundary rows of the two neighbouring strips
//! (worker sets of 2–3). On the *coarser* levels of the pyramid only a
//! subset of nodes works, so data is shared more widely — which is why
//! the protocols separate on SMGRID ("data is more widely shared in
//! this application than in either TSP or AQ") and the software-only
//! directory does >3x worse than full-map.

use limitless_machine::{Op, Program};
use limitless_sim::Addr;

use crate::layout::{chunk, word, AddressSpace, ScriptWithCode};
use crate::{App, Scale};

/// SMGRID configuration.
#[derive(Clone, Copy, Debug)]
pub struct Smgrid {
    /// Fine-grid side (paper: 129).
    pub side: usize,
    /// Pyramid levels (each coarser level halves the side).
    pub levels: usize,
    /// Relaxation sweeps per level per V-cycle.
    pub sweeps: usize,
    /// V-cycles.
    pub cycles: usize,
}

impl Smgrid {
    /// Paper scale: 129×129, 4 levels; quick scale: 33×33, 3 levels.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Smgrid {
                side: 33,
                levels: 3,
                sweeps: 3,
                cycles: 2,
            },
            Scale::Paper => Smgrid {
                side: 129,
                levels: 4,
                sweeps: 2,
                cycles: 4,
            },
        }
    }

    fn level_side(&self, level: usize) -> usize {
        ((self.side - 1) >> level) + 1
    }

    fn grid_base(&self, level: usize) -> Addr {
        let mut space = AddressSpace::new(0xC_0000);
        let mut base = space.region(0);
        for l in 0..=level {
            let s = self.level_side(l) as u64;
            base = space.region(s * s * 8 / 16 + 1);
        }
        base
    }
}

impl App for Smgrid {
    fn name(&self) -> &'static str {
        "SMGRID"
    }

    fn language(&self) -> &'static str {
        "Mul-T"
    }

    fn size_description(&self) -> String {
        format!("{0} x {0}", self.side)
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        // Every level needs at least one interior row (a side of 3) or
        // the strip arithmetic in `emit_level` degenerates: a side of 2
        // has no interior, and a side of 1 underflows `side - 2`.
        // Reject the configuration up front with a clear error instead.
        assert!(self.levels >= 1, "SMGRID needs at least one grid level");
        assert!(
            self.side >= 3,
            "SMGRID needs a fine grid of at least 3x3, got {0}x{0}",
            self.side
        );
        let coarsest = self.level_side(self.levels - 1);
        assert!(
            coarsest >= 3,
            "SMGRID with side {} and {} levels leaves a {coarsest}x{coarsest} coarsest grid \
             with no interior rows (need at least 3x3); use fewer levels or a larger grid",
            self.side,
            self.levels
        );
        (0..nodes)
            .map(|me| {
                let mut ops = Vec::new();
                for _cycle in 0..self.cycles {
                    // Descend the pyramid (restriction), relax at each
                    // level, then ascend (prolongation).
                    for level in 0..self.levels {
                        self.emit_level(&mut ops, nodes, me, level);
                    }
                    for level in (0..self.levels - 1).rev() {
                        self.emit_level(&mut ops, nodes, me, level);
                    }
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }
}

impl Smgrid {
    /// One level's worth of relaxation sweeps for node `me`.
    fn emit_level(&self, ops: &mut Vec<Op>, nodes: usize, me: usize, level: usize) {
        let side = self.level_side(level);
        let base = self.grid_base(level);
        // Coarse levels engage fewer nodes (at most one row each):
        // the paper's "only a subset of nodes work during the
        // relaxation on the upper levels of the pyramid".
        let active = nodes.min(side.saturating_sub(2)).max(1);
        let working = me < active;
        for _sweep in 0..self.sweeps {
            if working {
                let (r0, r1) = chunk(side - 2, active, me);
                // Read the halo row above and below the strip
                // (neighbour-owned: the sharing traffic). Every point
                // is consumed; two points share each 16-byte block.
                for col in 0..side {
                    ops.push(Op::Read(word(base, (r0 as u64) * side as u64 + col as u64)));
                    ops.push(Op::Read(word(
                        base,
                        (r1 as u64 + 1) * side as u64 + col as u64,
                    )));
                }
                // Relax the interior rows: read-modify every point
                // (~25 cycles of stencil arithmetic each).
                for row in r0 + 1..=r1 {
                    for col in 1..side - 1 {
                        let idx = (row as u64) * side as u64 + col as u64;
                        ops.push(Op::Read(word(base, idx)));
                        ops.push(Op::Write(word(base, idx), (level as u64) << 32 | idx));
                        ops.push(Op::Compute(150));
                    }
                }
            }
            ops.push(Op::Barrier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn tiny() -> Smgrid {
        Smgrid {
            side: 17,
            levels: 2,
            sweeps: 1,
            cycles: 1,
        }
    }

    #[test]
    fn level_sides_halve() {
        let g = Smgrid::new(Scale::Paper);
        assert_eq!(g.level_side(0), 129);
        assert_eq!(g.level_side(1), 65);
        assert_eq!(g.level_side(2), 33);
        assert_eq!(g.level_side(3), 17);
    }

    #[test]
    fn grids_do_not_overlap() {
        let g = Smgrid::new(Scale::Quick);
        let b0 = g.grid_base(0);
        let b1 = g.grid_base(1);
        let s0 = g.level_side(0) as u64;
        assert!(b1.0 >= b0.0 + s0 * s0 * 8);
    }

    #[test]
    fn runs_coherently_across_spectrum() {
        for p in [
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::limitless(1),
            ProtocolSpec::limitless(5),
            ProtocolSpec::full_map(),
        ] {
            run_app(
                &tiny(),
                MachineConfig::builder()
                    .nodes(4)
                    .protocol(p)
                    .check_coherence(true)
                    .build(),
            );
        }
    }

    #[test]
    fn neighbour_sharing_produces_invalidations() {
        let r = run_app(
            &tiny(),
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::full_map())
                .build(),
        );
        assert!(r.stats.engine.invs_sent > 0);
    }

    #[test]
    fn tiniest_legal_grid_runs() {
        // side 9 with 3 levels leaves a 3x3 coarsest grid — exactly one
        // interior row everywhere. Regression test for the strip-count
        // clamp degenerating on tiny grids.
        let g = Smgrid {
            side: 9,
            levels: 3,
            sweeps: 1,
            cycles: 1,
        };
        run_app(
            &g,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(2))
                .check_coherence(true)
                .build(),
        );
    }

    #[test]
    #[should_panic(expected = "coarsest grid")]
    fn interiorless_coarse_grid_is_rejected() {
        // side 9 with 4 levels would leave a 2x2 coarsest grid: no
        // interior rows, previously a degenerate strip computation.
        let g = Smgrid {
            side: 9,
            levels: 4,
            sweeps: 1,
            cycles: 1,
        };
        g.programs(4);
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn degenerate_fine_grid_is_rejected() {
        let g = Smgrid {
            side: 2,
            levels: 1,
            sweeps: 1,
            cycles: 1,
        };
        g.programs(2);
    }

    #[test]
    fn coarse_levels_idle_some_nodes() {
        // With more nodes than coarse-grid rows, some nodes just wait
        // at barriers — the speedup limiter the paper describes.
        let g = Smgrid {
            side: 9,
            levels: 2,
            sweeps: 1,
            cycles: 1,
        };
        let progs = g.programs(16);
        assert_eq!(progs.len(), 16);
    }
}
