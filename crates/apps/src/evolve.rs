//! EVOLVE: genome evolution as hypercube traversal (paper §6,
//! Figures 4d and 6).
//!
//! Genomes are vertices of a 12-dimensional hypercube; evolution is a
//! walk from initial conditions toward a local fitness maximum
//! (repeatedly move to the best-fitness neighbour). Fitness values are
//! shared: most vertices are touched by a single walk (the ~10⁴
//! size-one worker sets of Figure 6), while vertices near strong
//! maxima attract walks from *every* node (the ~25 size-64 sets). The
//! heavy tail of nontrivial worker sets is what makes EVOLVE the worst
//! case for `Dir_nH_5S_{NB}` in Figure 4.

use limitless_machine::{Op, Program, Rmw};
use limitless_sim::{Addr, SplitMix64};

use crate::layout::{slot, word, AddressSpace, ScriptWithCode};
use crate::{App, Scale};

/// EVOLVE configuration.
#[derive(Clone, Copy, Debug)]
pub struct Evolve {
    /// Hypercube dimensions (paper: 12 → 4096 vertices).
    pub dims: u32,
    /// Total walks (fixed work, partitioned round-robin over nodes so
    /// speedups compare like with like).
    pub total_walks: usize,
    /// Fitness-function seed.
    pub seed: u64,
}

impl Evolve {
    /// Paper scale: 12 dimensions; quick: 9.
    pub fn new(scale: Scale) -> Self {
        Evolve {
            dims: match scale {
                Scale::Quick => 9,
                Scale::Paper => 12,
            },
            total_walks: match scale {
                Scale::Quick => 192,
                Scale::Paper => 1024,
            },
            seed: 0xEE01,
        }
    }

    fn vertices(&self) -> u64 {
        1u64 << self.dims
    }

    /// Deterministic fitness: hashed base fitness plus a strong ridge
    /// pulling walks toward a single global maximum — this
    /// concentration is what creates the large worker sets.
    fn fitness(&self, v: u64) -> u64 {
        let hashed = SplitMix64::new(self.seed ^ v).next_u64() % 1000;
        let peak = self.peak();
        let closeness = self.dims - (v ^ peak).count_ones();
        hashed + u64::from(closeness) * 2000
    }

    fn peak(&self) -> u64 {
        SplitMix64::new(self.seed).next_u64() & (self.vertices() - 1)
    }

    /// One hill-climbing walk: the visited vertex sequence.
    fn walk(&self, start: u64) -> Vec<u64> {
        let mut cur = start & (self.vertices() - 1);
        let mut path = vec![cur];
        loop {
            let mut best = (self.fitness(cur), cur);
            for d in 0..self.dims {
                let n = cur ^ (1 << d);
                let f = self.fitness(n);
                if f > best.0 {
                    best = (f, n);
                }
            }
            if best.1 == cur {
                return path;
            }
            cur = best.1;
            path.push(cur);
        }
    }

    fn layout(&self) -> EvolveLayout {
        let mut space = AddressSpace::new(0x20_0000);
        // One word per vertex, two vertices per block.
        let fitness = space.region(self.vertices() * 8 / 16 + 1);
        // Per-vertex visit marks: written by every walk that passes
        // through — the read-write sharing that challenges the
        // software-extended directories on EVOLVE (Figure 4d).
        let marks = space.region(self.vertices() * 8 / 16 + 1);
        let best = space.block();
        let done = space.block();
        let starts = space.region(4096);
        EvolveLayout {
            fitness,
            marks,
            best,
            done,
            starts,
        }
    }
}

struct EvolveLayout {
    fitness: Addr,
    marks: Addr,
    best: Addr,
    done: Addr,
    starts: Addr,
}

impl App for Evolve {
    fn name(&self) -> &'static str {
        "EVOLVE"
    }

    fn language(&self) -> &'static str {
        "Mul-T"
    }

    fn size_description(&self) -> String {
        format!("{} dimensions", self.dims)
    }

    fn init_memory(&self) -> Vec<(Addr, u64)> {
        let l = self.layout();
        // Fitness table is input data (computed lazily by the walks'
        // reads; seed only the vertices actually visited, plus starts).
        let mut init = Vec::new();
        for me in 0..4096u64 {
            init.push((slot(l.starts, me % 4096), me * 37));
        }
        init
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let l = self.layout();
        let starts = self.walk_starts();
        (0..nodes)
            .map(|me| {
                let mut ops = Vec::new();
                let mut local_best = 0u64;
                for (w, &start) in starts.iter().enumerate() {
                    if w % nodes != me {
                        continue;
                    }
                    // Fetch the assigned start descriptor.
                    ops.push(Op::Read(slot(l.starts, (w as u64) % 4096)));
                    let path = self.walk(start);
                    for &v in &path {
                        // Evaluate the neighbourhood: read the fitness
                        // words of the vertex and a sample of its
                        // neighbours (the shared traffic), and mark the
                        // vertex visited (read-write sharing: popular
                        // vertices near the global maximum are marked
                        // by walks from every node).
                        ops.push(Op::Read(word(l.fitness, v)));
                        for d in 0..self.dims.min(4) {
                            ops.push(Op::Read(word(l.fitness, v ^ (1 << d))));
                        }
                        ops.push(Op::Rmw(word(l.marks, v), Rmw::Add(1)));
                        ops.push(Op::Compute(1800 + 40 * u64::from(self.dims)));
                    }
                    let end = *path.last().expect("walk is non-empty");
                    let f = self.fitness(end);
                    local_best = local_best.max(f);
                    // Publish improvements to the global maximum (the
                    // widely-written hot block).
                    ops.push(Op::Rmw(l.best, Rmw::Max(f)));
                }
                ops.push(Op::Rmw(l.done, Rmw::Add(1)));
                ops.push(Op::Barrier);
                if me == 0 {
                    ops.push(Op::Read(l.best));
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        vec![(self.layout().best, expected_best(self))]
    }
}

impl Evolve {
    /// The deterministic walk starting points (total work, independent
    /// of node count).
    fn walk_starts(&self) -> Vec<u64> {
        let mask = self.vertices() - 1;
        let mut rng = SplitMix64::new(self.seed ^ 0x9E37);
        (0..self.total_walks)
            .map(|_| rng.next_u64() & mask)
            .collect()
    }
}

/// The global maximum fitness every run must discover (offline replay
/// of every walk; independent of node count because the work is
/// fixed).
pub fn expected_best(e: &Evolve) -> u64 {
    e.walk_starts()
        .into_iter()
        .map(|s| e.fitness(*e.walk(s).last().expect("non-empty")))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limitless_core::ProtocolSpec;
    use limitless_machine::{Machine, MachineConfig};

    fn tiny() -> Evolve {
        Evolve {
            dims: 6,
            total_walks: 24,
            seed: 0xEE01,
        }
    }

    #[test]
    fn walks_climb_monotonically() {
        let e = tiny();
        for s in [0u64, 17, 42] {
            let path = e.walk(s);
            let mut prev = None;
            for &v in &path {
                let f = e.fitness(v);
                if let Some(p) = prev {
                    assert!(f > p, "fitness must increase along the walk");
                }
                prev = Some(f);
            }
        }
    }

    #[test]
    fn walks_end_at_local_maxima() {
        let e = tiny();
        let end = *e.walk(5).last().unwrap();
        let f = e.fitness(end);
        for d in 0..e.dims {
            assert!(e.fitness(end ^ (1 << d)) <= f);
        }
    }

    #[test]
    fn machine_discovers_the_offline_best() {
        let e = tiny();
        let nodes = 4;
        let mut m = Machine::new(
            MachineConfig::builder()
                .nodes(nodes)
                .protocol(ProtocolSpec::limitless(2))
                .check_coherence(true)
                .build(),
        );
        for (a, v) in e.init_memory() {
            m.poke(a, v);
        }
        m.load(e.programs(nodes));
        m.run();
        assert_eq!(m.peek(e.layout().best), expected_best(&e));
        assert_eq!(m.peek(e.layout().done), nodes as u64);
    }

    #[test]
    fn worker_sets_are_heavy_tailed() {
        // Figure 6's shape at miniature scale: many singleton worker
        // sets and at least one set spanning every node.
        let e = tiny();
        let nodes = 8;
        let mut m = Machine::new(
            MachineConfig::builder()
                .nodes(nodes)
                .protocol(ProtocolSpec::full_map())
                .track_worker_sets(true)
                .build(),
        );
        m.load(e.programs(nodes));
        let report = m.run();
        let h = report.stats.worker_sets.expect("tracking on");
        assert!(h.count(1) > 20, "many singletons: {h:?}");
        assert!(
            h.max_value().unwrap_or(0) >= nodes as u64 / 2,
            "some wide sets: {h:?}"
        );
    }
}
