//! The WORKER synthetic benchmark (paper §5).
//!
//! WORKER builds a data structure whose memory blocks have an *exact*
//! worker-set size, then iterates: all readers of each block read it,
//! a barrier, the block's writer writes it, a barrier. "Every read
//! request causes a cache miss and every write request causes a
//! directory protocol to send exactly one invalidation message to each
//! reader" — a completely deterministic access pattern and the
//! controlled experiment behind Figure 2 and Tables 1–2.

use limitless_machine::{Op, Program};
use limitless_sim::Addr;

use crate::layout::{slot, AddressSpace, ScriptWithCode};
use crate::App;

/// WORKER configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Worker {
    /// Worker-set size: the number of readers per block.
    pub set_size: usize,
    /// Blocks per node (each node is the writer of this many blocks).
    pub blocks_per_node: usize,
    /// Read/barrier/write/barrier iterations.
    pub iterations: usize,
}

impl Worker {
    /// The Figure 2 configuration: one block per node, the given
    /// worker-set size, enough iterations for steady-state behaviour.
    pub fn fig2(set_size: usize) -> Self {
        Worker {
            set_size,
            blocks_per_node: 1,
            iterations: 12,
        }
    }

    /// The Tables 1–2 configuration: `readers` readers per block on a
    /// 16-node machine.
    pub fn table1(readers: usize) -> Self {
        Worker {
            set_size: readers,
            blocks_per_node: 2,
            iterations: 10,
        }
    }

    /// The base address of the worker-set structure.
    fn data_base() -> Addr {
        AddressSpace::new(0x4_0000).watermark()
    }
}

impl App for Worker {
    fn name(&self) -> &'static str {
        "WORKER"
    }

    fn language(&self) -> &'static str {
        "synthetic"
    }

    fn size_description(&self) -> String {
        format!(
            "worker sets of {}, {} iterations",
            self.set_size, self.iterations
        )
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        assert!(self.set_size <= nodes, "worker set cannot exceed nodes");
        let base = Self::data_base();
        let total_blocks = nodes * self.blocks_per_node;
        // Block j is written by node (j + nodes/2) % nodes — offset
        // from the block's home so the previous owner occupies a real
        // directory pointer, not the home's one-bit local pointer —
        // and read by the next `set_size` nodes after the writer
        // (wrapping): an exact, evenly distributed worker set.
        (0..nodes)
            .map(|me| {
                let mut ops = Vec::new();
                for _ in 0..self.iterations {
                    // Read phase: read every block whose worker set
                    // contains me.
                    for j in 0..total_blocks {
                        let writer = (j + nodes / 2) % nodes;
                        let offset = (me + nodes - writer) % nodes;
                        let is_reader = offset >= 1 && offset <= self.set_size;
                        if is_reader {
                            ops.push(Op::Read(slot(base, j as u64)));
                        }
                    }
                    ops.push(Op::Barrier);
                    // Write phase: write the blocks I am the writer of.
                    for j in 0..total_blocks {
                        if (j + nodes / 2) % nodes == me {
                            ops.push(Op::Write(slot(base, j as u64), (j + 1) as u64));
                        }
                    }
                    ops.push(Op::Barrier);
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        // After any number of iterations every block holds its own
        // index + 1.
        (0..self.blocks_per_node as u64)
            .map(|j| (slot(Self::data_base(), j), j + 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn cfg(p: ProtocolSpec) -> MachineConfig {
        MachineConfig::builder()
            .nodes(8)
            .protocol(p)
            .check_coherence(true)
            .build()
    }

    #[test]
    fn worker_runs_and_produces_expected_values() {
        let app = Worker {
            set_size: 4,
            blocks_per_node: 1,
            iterations: 3,
        };
        run_app(&app, cfg(ProtocolSpec::limitless(5)));
    }

    #[test]
    fn worker_set_size_controls_invalidations() {
        // With worker sets of k, each write invalidates ~k copies.
        let invs = |k: usize| {
            let app = Worker {
                set_size: k,
                blocks_per_node: 1,
                iterations: 4,
            };
            let r = run_app(&app, cfg(ProtocolSpec::full_map()));
            r.stats.engine.invs_sent as f64 / r.stats.writes as f64
        };
        let small = invs(2);
        let large = invs(6);
        assert!(
            large > small + 2.0,
            "6-reader sets ({large:.1} invs/write) must invalidate more than 2-reader sets ({small:.1})"
        );
    }

    #[test]
    fn sets_beyond_hw_capacity_cause_traps() {
        let app = Worker::fig2(6);
        let within = run_app(
            &Worker::fig2(3),
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::limitless(5))
                .build(),
        );
        // Three readers + the re-recorded previous owner fit in five
        // pointers: no software.
        assert_eq!(within.stats.engine.write_extend_traps, 0);
        let beyond = run_app(
            &app,
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::limitless(5))
                .build(),
        );
        assert!(
            beyond.stats.engine.traps > 0,
            "6 readers overflow 5 pointers"
        );
    }

    #[test]
    #[should_panic(expected = "worker set cannot exceed nodes")]
    fn oversized_worker_set_panics() {
        Worker::fig2(9).programs(8);
    }

    #[test]
    fn deterministic_across_runs() {
        let app = Worker::fig2(4);
        let r1 = run_app(&app, cfg(ProtocolSpec::limitless(1)));
        let r2 = run_app(&app, cfg(ProtocolSpec::limitless(1)));
        assert_eq!(r1.cycles, r2.cycles);
    }
}
