//! Benchmark applications for the `limitless` machine (paper §5–§6,
//! Table 3).
//!
//! | Name   | Paper language | Size (paper)     | What it stresses |
//! |--------|----------------|------------------|------------------|
//! | WORKER | synthetic      | exact worker sets| controlled protocol comparison (Fig. 2, Tables 1–2) |
//! | TSP    | Mul-T          | 10-city tour     | small worker sets + I/D cache thrashing (Figs. 3–5) |
//! | AQ     | Semi-C         | x⁴y⁴, tol 0.005  | producer–consumer sharing (Fig. 4b) |
//! | SMGRID | Mul-T          | 129×129          | nearest-neighbour + pyramid sharing (Fig. 4c) |
//! | EVOLVE | Mul-T          | 12 dimensions    | heavy-tailed worker sets (Figs. 4d, 6) |
//! | MP3D   | C              | 10 000 particles | cell contention, low speedups (Fig. 4e) |
//! | WATER  | C              | 64 molecules     | all-to-all read sharing (Fig. 4f) |
//!
//! Each application runs its real algorithm *offline* (deterministic,
//! in plain Rust) and replays the resulting per-node memory reference
//! streams — addresses, read/write mix, synchronization and genuine
//! data values — on the simulated machine. The coherence protocols
//! observe exactly the sharing structure the algorithm produces, which
//! is what determines protocol behaviour (see DESIGN.md for the full
//! substitution argument). TSP is seeded with the optimal bound, as in
//! the paper, precisely so that its work is deterministic.

pub mod aq;
pub mod evolve;
pub mod layout;
pub mod mp3d;
pub mod registry;
pub mod smgrid;
pub mod spec;
pub mod synth;
pub mod tsp;
pub mod water;
pub mod worker;

use limitless_machine::{Machine, MachineConfig, Program, RunReport};
use limitless_sim::Addr;

pub use aq::Aq;
pub use evolve::Evolve;
pub use mp3d::Mp3d;
pub use smgrid::Smgrid;
pub use spec::{AppSpec, SpecError};
pub use synth::{Footprint, SharingPattern, Synth};
pub use tsp::Tsp;
pub use water::Water;
pub use worker::Worker;

/// Problem-size scaling: `Paper` reproduces Table 3's sizes; `Quick`
/// shrinks them so the full experiment suite runs in CI time. Shapes —
/// who wins, by roughly what factor — are preserved at both scales.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// Reduced problem sizes for fast runs.
    #[default]
    Quick,
    /// The paper's Table 3 problem sizes.
    Paper,
}

impl Scale {
    /// Reads the scale from the `LIMITLESS_SCALE` environment variable
    /// (`paper` selects [`Scale::Paper`]; anything else is quick).
    pub fn from_env() -> Scale {
        match std::env::var("LIMITLESS_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// A benchmark application: produces one program per node plus the
/// metadata the experiment harnesses print.
pub trait App {
    /// Short name (Table 3 spelling).
    fn name(&self) -> &'static str;

    /// The language the paper's version was written in.
    fn language(&self) -> &'static str;

    /// Problem-size description for Table 3.
    fn size_description(&self) -> String;

    /// Builds the per-node programs for a machine of `nodes` nodes.
    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>>;

    /// Initial shared-memory contents (input data).
    fn init_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    /// `(address, expected value)` pairs to verify after a run —
    /// genuine algorithm outputs (tour length, integral bits, …).
    fn expected_results(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    /// The machine size this workload was parameterized for, if any —
    /// a hint for harnesses that size the machine from the spec (the
    /// fuzz campaign honours it); [`App::programs`] must still adapt
    /// to whatever node count it is given.
    fn preferred_nodes(&self) -> Option<usize> {
        None
    }

    /// Half-open address ranges `[start, end)` whose read *values* are
    /// timing-dependent by design — deliberate unsynchronized sharing
    /// the paper's version also has (MP3D runs with its locking option
    /// off). The differential oracle masks read values in these ranges
    /// (the read *addresses* are still compared, and the final memory
    /// image is always compared in full). Empty for race-free
    /// applications.
    fn racy_read_ranges(&self) -> Vec<(Addr, Addr)> {
        Vec::new()
    }
}

/// Runs `app` on a machine built from `cfg`, verifying any expected
/// results, and returns the report.
///
/// # Panics
///
/// Panics if a declared expected result does not match (an algorithm
/// or coherence bug).
pub fn run_app(app: &dyn App, cfg: MachineConfig) -> RunReport {
    run_app_with_machine(app, cfg).0
}

/// Like [`run_app`], but also returns the machine itself so callers
/// can inspect post-run state — the differential oracle compares
/// [`Machine::memory_image`] and [`Machine::read_streams`] across
/// protocols.
///
/// # Panics
///
/// Panics if a declared expected result does not match (an algorithm
/// or coherence bug).
pub fn run_app_with_machine(app: &dyn App, cfg: MachineConfig) -> (RunReport, Machine) {
    let mut m = Machine::new(cfg);
    let report = run_app_on(app, &mut m);
    (report, m)
}

/// Runs `app` on an already-built (fresh or [`Machine::reset`])
/// machine, verifying any expected results — the machine-reuse path
/// the sweep service's workers take between cells of the same shape.
///
/// # Panics
///
/// Panics if a declared expected result does not match (an algorithm
/// or coherence bug).
pub fn run_app_on(app: &dyn App, m: &mut Machine) -> RunReport {
    let nodes = m.nodes();
    for (a, v) in app.init_memory() {
        m.poke(a, v);
    }
    m.load(app.programs(nodes));
    let report = m.run();
    for (a, want) in app.expected_results() {
        let got = m.peek(a);
        assert_eq!(
            got,
            want,
            "{}: result at {a} is {got}, expected {want}",
            app.name()
        );
    }
    report
}

/// Convenience: the sequential baseline — the same application on one
/// node with a full-map directory (no multiprocessor overhead beyond
/// the memory system itself), as the paper's speedup denominators use.
pub fn sequential_cycles(app: &dyn App) -> u64 {
    let cfg = MachineConfig::builder()
        .nodes(1)
        .protocol(limitless_core::ProtocolSpec::full_map())
        .victim_cache(true)
        .build();
    run_app(app, cfg).cycles.as_u64()
}
