//! Shared-address-space layout helpers and the script-with-code
//! program wrapper.

use limitless_cache::InstrFootprint;
use limitless_machine::{Op, Program, ScriptProgram};
use limitless_sim::{Addr, NodeId};

/// Bytes per cache line / memory block (the Alewife 16-byte block).
pub const LINE: u64 = 16;

/// A bump allocator over the shared data address space, handing out
/// block-aligned regions. Data stays far below the instruction region
/// (`limitless_cache::ifetch::INSTR_BLOCK_BASE`).
///
/// # Examples
///
/// ```
/// use limitless_apps::layout::{AddressSpace, LINE};
///
/// let mut space = AddressSpace::new(0x10_000);
/// let a = space.region(3); // three blocks
/// let b = space.region(1);
/// assert_eq!(b.0, a.0 + 3 * LINE);
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Starts allocating at `base` (block-aligned).
    pub fn new(base: u64) -> Self {
        assert_eq!(base % LINE, 0, "base must be block-aligned");
        AddressSpace { next: base }
    }

    /// Allocates `blocks` consecutive blocks, returning the base
    /// address.
    pub fn region(&mut self, blocks: u64) -> Addr {
        let a = Addr(self.next);
        self.next += blocks * LINE;
        a
    }

    /// Allocates one block and returns its base address.
    pub fn block(&mut self) -> Addr {
        self.region(1)
    }

    /// Skips forward so the next allocated block maps to cache set
    /// `set` in a direct-mapped cache of `sets` sets. Lets a workload
    /// place hot data on chosen sets (TSP's thrash layout).
    pub fn align_to_set(&mut self, set: u64, sets: u64) {
        let cur_set = (self.next / LINE) % sets;
        let skip = (set + sets - cur_set) % sets;
        self.next += skip * LINE;
    }

    /// The next unallocated address.
    pub fn watermark(&self) -> Addr {
        Addr(self.next)
    }
}

/// The address of element `i` in an array of `u64` starting at `base`
/// (8 bytes per element, two per block).
pub fn word(base: Addr, i: u64) -> Addr {
    Addr(base.0 + i * 8)
}

/// The address of element `i` in a block-strided array (one element
/// per block — used when elements must not share cache lines, e.g.
/// per-node slots).
pub fn slot(base: Addr, i: u64) -> Addr {
    Addr(base.0 + i * LINE)
}

/// A [`ScriptProgram`] with an instruction footprint: the standard
/// application program shape.
pub struct ScriptWithCode {
    script: ScriptProgram,
    footprint: Option<InstrFootprint>,
}

impl ScriptWithCode {
    /// Wraps `ops` with an optional code footprint.
    pub fn new(ops: Vec<Op>, footprint: Option<InstrFootprint>) -> Self {
        ScriptWithCode {
            script: ScriptProgram::new_unrecorded(ops),
            footprint,
        }
    }
}

impl Program for ScriptWithCode {
    fn next(&mut self, node: NodeId, last_value: Option<u64>) -> Op {
        self.script.next(node, last_value)
    }

    fn instr_footprint(&self, _node: NodeId) -> Option<InstrFootprint> {
        self.footprint
    }
}

/// Splits `total` items into `parts` contiguous chunks as evenly as
/// possible, returning the `(start, end)` of chunk `part`.
pub fn chunk(total: usize, parts: usize, part: usize) -> (usize, usize) {
    let base = total / parts;
    let extra = total % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new(0x1000);
        let a = s.region(2);
        let b = s.region(5);
        assert_eq!(a, Addr(0x1000));
        assert_eq!(b, Addr(0x1000 + 2 * LINE));
        assert_eq!(s.watermark(), Addr(0x1000 + 7 * LINE));
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn unaligned_base_panics() {
        AddressSpace::new(0x1001);
    }

    #[test]
    fn word_and_slot_addressing() {
        let base = Addr(0x1000);
        assert_eq!(word(base, 0), Addr(0x1000));
        assert_eq!(word(base, 3), Addr(0x1018));
        assert_eq!(slot(base, 3), Addr(0x1030));
    }

    #[test]
    fn chunk_covers_everything_exactly_once() {
        for total in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 3, 8, 64] {
                let mut covered = 0;
                let mut last_end = 0;
                for p in 0..parts {
                    let (s, e) = chunk(total, parts, p);
                    assert_eq!(s, last_end);
                    covered += e - s;
                    last_end = e;
                }
                assert_eq!(covered, total);
                assert_eq!(last_end, total);
            }
        }
    }

    #[test]
    fn chunk_is_balanced() {
        let sizes: Vec<usize> = (0..8)
            .map(|p| {
                let (s, e) = chunk(100, 8, p);
                e - s
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }
}
