//! MP3D: rarefied-fluid wind-tunnel simulation from SPLASH (paper §6,
//! Figure 4e).
//!
//! Particles move through a 3-D space array of cells; each step every
//! particle advances, and the cell it lands in is updated (collision
//! accounting). Particles owned by different nodes land in the same
//! cells, so cell blocks have medium-size, *frequently written* worker
//! sets — the communication pattern behind MP3D's notoriously low
//! speedups. Run with the locking option off, as in the paper.

use limitless_machine::{Op, Program, Rmw};
use limitless_sim::{Addr, SplitMix64};

use crate::layout::{chunk, slot, word, AddressSpace, ScriptWithCode};
use crate::{App, Scale};

/// MP3D configuration.
#[derive(Clone, Copy, Debug)]
pub struct Mp3d {
    /// Number of particles (paper: 10 000).
    pub particles: usize,
    /// Space-array cells per dimension (cube).
    pub cells_side: usize,
    /// Simulated steps.
    pub steps: usize,
    /// Seed for initial positions/velocities.
    pub seed: u64,
}

impl Mp3d {
    /// Paper scale: 10 000 particles; quick: 1 500.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Mp3d {
                particles: 1_500,
                cells_side: 8,
                steps: 3,
                seed: 0x3D,
            },
            Scale::Paper => Mp3d {
                particles: 10_000,
                cells_side: 14,
                steps: 4,
                seed: 0x3D,
            },
        }
    }

    fn cells(&self) -> u64 {
        (self.cells_side * self.cells_side * self.cells_side) as u64
    }

    fn layout(&self) -> Mp3dLayout {
        let mut space = AddressSpace::new(0x40_0000);
        // Particle records: position+velocity, one block each
        // (node-private by ownership).
        let particles = space.region(self.particles as u64);
        // Space array: one word per cell, two cells per block — cells
        // are the contended structure.
        let cells = space.region(self.cells() * 8 / 16 + 1);
        let momentum = space.block(); // global accumulators
        Mp3dLayout {
            particles,
            cells,
            momentum,
        }
    }

    /// Offline particle trajectories: `traj[step][particle]` = cell.
    fn trajectories(&self) -> Vec<Vec<u64>> {
        let side = self.cells_side as i64;
        let mut rng = SplitMix64::new(self.seed);
        let mut pos: Vec<(i64, i64, i64)> = Vec::with_capacity(self.particles);
        let mut vel: Vec<(i64, i64, i64)> = Vec::with_capacity(self.particles);
        for _ in 0..self.particles {
            pos.push((
                rng.next_below(side as u64 * 16) as i64,
                rng.next_below(side as u64 * 16) as i64,
                rng.next_below(side as u64 * 16) as i64,
            ));
            vel.push((
                rng.next_below(31) as i64 - 15 + 8, // drift in +x: the wind
                rng.next_below(31) as i64 - 15,
                rng.next_below(31) as i64 - 15,
            ));
        }
        let bound = side * 16;
        let mut traj = Vec::with_capacity(self.steps);
        for _ in 0..self.steps {
            let mut cells_now = Vec::with_capacity(self.particles);
            for p in 0..self.particles {
                pos[p].0 = (pos[p].0 + vel[p].0).rem_euclid(bound);
                pos[p].1 = (pos[p].1 + vel[p].1).rem_euclid(bound);
                pos[p].2 = (pos[p].2 + vel[p].2).rem_euclid(bound);
                let c = (pos[p].0 / 16) * side * side + (pos[p].1 / 16) * side + pos[p].2 / 16;
                cells_now.push(c as u64);
            }
            traj.push(cells_now);
        }
        traj
    }
}

struct Mp3dLayout {
    particles: Addr,
    cells: Addr,
    momentum: Addr,
}

impl App for Mp3d {
    fn name(&self) -> &'static str {
        "MP3D"
    }

    fn language(&self) -> &'static str {
        "C"
    }

    fn size_description(&self) -> String {
        format!("{} particles", self.particles)
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let l = self.layout();
        let traj = self.trajectories();
        (0..nodes)
            .map(|me| {
                let (p0, p1) = chunk(self.particles, nodes, me);
                let mut ops = Vec::new();
                for step in &traj {
                    for (p, &dest) in step.iter().enumerate().take(p1).skip(p0) {
                        // Advance my particle: read + write its record
                        // (private), then update the destination cell
                        // (shared, contended).
                        ops.push(Op::Read(slot(l.particles, p as u64)));
                        ops.push(Op::Write(slot(l.particles, p as u64), dest));
                        // Collision step: read the cell state (creates
                        // shared copies across nodes), then update it.
                        ops.push(Op::Read(word(l.cells, dest)));
                        ops.push(Op::Rmw(word(l.cells, dest), Rmw::Add(1)));
                        ops.push(Op::Compute(400));
                    }
                    // Per-step global momentum accumulation, then sync.
                    ops.push(Op::Rmw(l.momentum, Rmw::Add((p1 - p0) as u64)));
                    ops.push(Op::Barrier);
                }
                Box::new(ScriptWithCode::new(ops, None)) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        vec![(self.layout().momentum, (self.particles * self.steps) as u64)]
    }

    fn racy_read_ranges(&self) -> Vec<(Addr, Addr)> {
        // The space-array cells are updated without locking (the paper
        // runs MP3D with the locking option off): between barriers,
        // several nodes Read+Rmw the same cell, so the value a cell
        // read observes depends on message timing and legitimately
        // differs across protocols. The atomic adds commute, so the
        // final memory image still verifies in full.
        let l = self.layout();
        vec![(l.cells, l.momentum)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn tiny() -> Mp3d {
        Mp3d {
            particles: 120,
            cells_side: 4,
            steps: 2,
            seed: 0x3D,
        }
    }

    #[test]
    fn trajectories_stay_in_bounds() {
        let m = tiny();
        for step in m.trajectories() {
            for &c in &step {
                assert!(c < m.cells());
            }
        }
    }

    #[test]
    fn trajectories_are_deterministic() {
        assert_eq!(tiny().trajectories(), tiny().trajectories());
    }

    #[test]
    fn cell_counts_conserve_particles() {
        let app = tiny();
        let r = run_app(
            &app,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(5))
                .check_coherence(true)
                .build(),
        );
        // momentum check is in expected_results (asserted by run_app);
        // also: every particle wrote its record each step.
        assert!(r.stats.writes >= (app.particles * app.steps) as u64);
    }

    #[test]
    fn cells_are_contended() {
        let r = run_app(
            &tiny(),
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::full_map())
                .build(),
        );
        assert!(
            r.stats.engine.invs_sent > 50,
            "cell updates must invalidate: {}",
            r.stats.engine.invs_sent
        );
    }

    #[test]
    fn zero_ptr_suffers_most() {
        let cycles = |p| {
            run_app(
                &tiny(),
                MachineConfig::builder().nodes(8).protocol(p).build(),
            )
            .cycles
            .as_u64()
        };
        let full = cycles(ProtocolSpec::full_map());
        let zero = cycles(ProtocolSpec::zero_ptr());
        assert!(
            zero > full,
            "software-only ({zero}) must trail full-map ({full})"
        );
    }
}
