//! TSP: branch-and-bound traveling salesman (paper §6, Figures 3–5).
//!
//! The paper's TSP is a Mul-T branch-and-bound search whose best-path
//! value is *seeded with the optimal tour* so the amount of work is
//! deterministic. Its memory behaviour has two signatures:
//!
//! * mostly *small* worker sets (partial tours shared by a few nodes),
//!   plus two blocks — the best-bound and the global work counter —
//!   read by **every** node;
//! * an unlucky code layout: the hot inner-loop instructions map onto
//!   the same direct-mapped cache sets as those two globally-shared
//!   blocks, so instruction fetches continually evict them
//!   (instruction/data thrashing). Every re-read is a remote miss, and
//!   under software-extended protocols the re-read stream drives the
//!   home node's directory through overflow traps — the >3x
//!   degradation of Figure 3, repaired by perfect-ifetch or a victim
//!   cache.
//!
//! The search itself runs offline (plain Rust, exact) and each
//! simulated node replays the reference stream of the subtrees
//! assigned to it.

use limitless_cache::InstrFootprint;
use limitless_machine::{Op, Program};
use limitless_sim::{Addr, SplitMix64};

use crate::layout::{word, AddressSpace, ScriptWithCode, LINE};
use crate::{App, Scale};

/// TSP configuration.
#[derive(Clone, Debug)]
pub struct Tsp {
    /// Number of cities (paper: 10).
    pub cities: usize,
    /// RNG seed for city coordinates.
    pub seed: u64,
    /// Hot-code working set in cache blocks (the thrash driver).
    pub code_blocks: u64,
}

impl Tsp {
    /// The paper's 10-city tour (or an 8-city tour at quick scale).
    pub fn new(scale: Scale) -> Self {
        Tsp {
            cities: match scale {
                Scale::Quick => 8,
                Scale::Paper => 10,
            },
            seed: 0x7591,
            code_blocks: 48,
        }
    }

    fn layout(&self) -> TspLayout {
        const SETS: u64 = 4096; // 64 KB / 16 B direct-mapped
        let mut space = AddressSpace::new(0x8_0000);
        let n = self.cities as u64;
        // Distance matrix: n*n words, widely shared, read-only — kept
        // on low cache sets, clear of the hot code sweep.
        let matrix = space.region(n * n * 8 / LINE + 1);
        // The two globally-shared hot blocks land on the sets the hot
        // loop's code sweeps over — the paper's accidental layout,
        // made explicit.
        space.align_to_set(2048, SETS);
        let bound = space.block(); // hot block 1: the seeded best bound
        let counter = space.block(); // hot block 2: global expansion count
                                     // Everything else lives far from the code sweep.
        space.align_to_set(3072, SETS);
        let result = space.block();
        let subtrees = space.region(512); // work descriptors, one block each
        let private = space.region(0); // per-node stacks appended later
        TspLayout {
            matrix,
            bound,
            counter,
            result,
            subtrees,
            private_base: private,
        }
    }

    fn distances(&self) -> Vec<Vec<u64>> {
        let mut rng = SplitMix64::new(self.seed);
        let pts: Vec<(i64, i64)> = (0..self.cities)
            .map(|_| (rng.next_below(1000) as i64, rng.next_below(1000) as i64))
            .collect();
        (0..self.cities)
            .map(|i| {
                (0..self.cities)
                    .map(|j| {
                        let dx = (pts[i].0 - pts[j].0) as f64;
                        let dy = (pts[i].1 - pts[j].1) as f64;
                        (dx * dx + dy * dy).sqrt().round() as u64
                    })
                    .collect()
            })
            .collect()
    }

    /// Exact optimal tour length (offline solve, branch and bound).
    pub fn optimal(&self) -> u64 {
        let d = self.distances();
        let n = self.cities;
        let mut best = u64::MAX;
        let mut path = vec![0usize];
        let mut visited = vec![false; n];
        visited[0] = true;
        solve(
            &d,
            &mut path,
            &mut visited,
            0,
            &mut best,
            &mut Vec::new(),
            false,
        );
        best
    }

    /// The depth-3 subtree prefixes `[0, a, b, c]` that the runtime
    /// distributes round-robin over nodes (504 units for 10 cities —
    /// enough parallel slack for a 256-node machine).
    fn prefixes(&self) -> Vec<[usize; 3]> {
        let n = self.cities;
        let mut out = Vec::new();
        for a in 1..n {
            for b in (1..n).filter(|&b| b != a) {
                for c in (1..n).filter(|&c| c != a && c != b) {
                    out.push([a, b, c]);
                }
            }
        }
        out
    }

    /// The branch-and-bound visit list for one subtree prefix
    /// `[0, a, b, c]`, with the bound seeded at the optimum (so pruning
    /// is maximal and deterministic, exactly as the paper configures
    /// it).
    fn subtree_visits(&self, d: &[Vec<u64>], optimal: u64, p: [usize; 3]) -> Vec<usize> {
        let n = self.cities;
        let [a, b, c] = p;
        let mut path = vec![0, a, b, c];
        let mut visited = vec![false; n];
        for &x in &path {
            visited[x] = true;
        }
        let cost = d[0][a] + d[a][b] + d[b][c];
        let mut best = optimal;
        let mut visits = Vec::new();
        solve(
            d,
            &mut path,
            &mut visited,
            cost,
            &mut best,
            &mut visits,
            true,
        );
        visits
    }
}

/// Depth-first branch and bound. When `record` is set, pushes the
/// current city of every expanded tree node into `visits`.
fn solve(
    d: &[Vec<u64>],
    path: &mut Vec<usize>,
    visited: &mut [bool],
    cost: u64,
    best: &mut u64,
    visits: &mut Vec<usize>,
    record: bool,
) {
    let n = d.len();
    let current = *path.last().expect("non-empty path");
    if record {
        visits.push(current);
    }
    if path.len() == n {
        let total = cost + d[current][0];
        if total < *best {
            *best = total;
        }
        return;
    }
    // Lower bound: current cost + the cheapest outgoing edge of every
    // unvisited city (admissible, cheap).
    let lb: u64 = cost
        + (0..n)
            .filter(|&c| !visited[c])
            .map(|c| {
                (0..n)
                    .filter(|&x| x != c)
                    .map(|x| d[c][x])
                    .min()
                    .unwrap_or(0)
            })
            .sum::<u64>();
    if lb > *best {
        return;
    }
    for next in 1..n {
        if visited[next] {
            continue;
        }
        let step = cost + d[current][next];
        if step >= *best {
            continue;
        }
        visited[next] = true;
        path.push(next);
        solve(d, path, visited, step, best, visits, record);
        path.pop();
        visited[next] = false;
    }
}

struct TspLayout {
    matrix: Addr,
    bound: Addr,
    counter: Addr,
    result: Addr,
    subtrees: Addr,
    private_base: Addr,
}

impl App for Tsp {
    fn name(&self) -> &'static str {
        "TSP"
    }

    fn language(&self) -> &'static str {
        "Mul-T"
    }

    fn size_description(&self) -> String {
        format!("{} city tour", self.cities)
    }

    fn init_memory(&self) -> Vec<(Addr, u64)> {
        let l = self.layout();
        let d = self.distances();
        let n = self.cities as u64;
        let mut init: Vec<(Addr, u64)> = d
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(j, &v)| (word(l.matrix, i as u64 * n + j as u64), v))
            })
            .collect();
        init.push((l.bound, self.optimal()));
        init.push((l.counter, 1)); // live work flag, read each visit
        init
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let l = self.layout();
        let d = self.distances();
        let n = self.cities as u64;
        let optimal = self.optimal();

        let prefixes = self.prefixes();

        // The thrash layout: position the hot loop's code on the same
        // cache sets as the bound and counter blocks (and nothing
        // else).
        let sets = 4096u64; // 64 KB / 16 B
        let bound_set = (l.bound.0 / LINE) % sets;
        let code_off = (bound_set + sets - self.code_blocks / 2) % sets;
        let footprint = InstrFootprint::new(code_off, self.code_blocks);
        debug_assert_eq!(bound_set, 2048);

        (0..nodes)
            .map(|me| {
                let mut ops = Vec::new();
                let mut total = 0u64;
                // Per-node tour stack: unique addresses per node, all
                // mapping to cache sets 1024.. — clear of the matrix
                // (low sets) and the code sweep (around 2048) in the
                // node's own cache.
                let private = Addr((0x10_0000 + me as u64 * 4096 + 1024) * LINE);
                let _ = l.private_base;
                for (t, &p) in prefixes.iter().enumerate() {
                    if t % nodes != me {
                        continue;
                    }
                    // Fetch the work descriptor for this subtree.
                    ops.push(Op::Read(Addr(l.subtrees.0 + (t as u64 % 512) * LINE)));
                    let visits = self.subtree_visits(&d, optimal, p);
                    for (v, &city) in visits.iter().enumerate() {
                        // The inner loop: consult the global bound and
                        // the shared work counter (the two blocks every
                        // node touches), scan this city's distance row,
                        // push the tour frame to the private stack,
                        // think.
                        ops.push(Op::Read(l.bound));
                        ops.push(Op::Read(l.counter));
                        ops.push(Op::Read(word(l.matrix, city as u64 * n)));
                        ops.push(Op::Read(word(l.matrix, city as u64 * n + n / 2)));
                        ops.push(Op::Write(
                            Addr(private.0 + (v as u64 % 32) * LINE),
                            city as u64,
                        ));
                        ops.push(Op::Compute(1600));
                    }
                    total += visits.len() as u64;
                }
                // Publish this node's expansion count to its own slot;
                // node 0 folds them after the barrier. (A fetch-add on
                // one global counter would serialize a machine-wide
                // write storm at the end of the run — the paper's two
                // hot blocks are read-mostly.)
                ops.push(Op::Write(
                    Addr(l.subtrees.0 + (256 + me as u64 % 256) * LINE),
                    total,
                ));
                ops.push(Op::Barrier);
                if me == 0 {
                    // Publish the answer (already optimal by seeding).
                    ops.push(Op::Read(l.bound));
                    ops.push(Op::Write(l.result, optimal));
                }
                Box::new(ScriptWithCode::new(ops, Some(footprint))) as Box<dyn Program>
            })
            .collect()
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        vec![(self.layout().result, self.optimal())]
    }
}

/// Total branch-and-bound tree visits across all subtrees (work size —
/// used by tests and the harness to report problem scale).
pub fn total_visits(tsp: &Tsp) -> usize {
    let d = tsp.distances();
    let optimal = tsp.optimal();
    tsp.prefixes()
        .into_iter()
        .map(|p| tsp.subtree_visits(&d, optimal, p).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn quick() -> Tsp {
        Tsp {
            cities: 7,
            seed: 0x7591,
            code_blocks: 48,
        }
    }

    #[test]
    fn optimal_is_a_valid_tour_length() {
        let t = quick();
        let opt = t.optimal();
        let d = t.distances();
        // Any concrete tour is an upper bound.
        let naive: u64 = (0..t.cities).map(|i| d[i][(i + 1) % t.cities]).sum();
        assert!(opt > 0);
        assert!(opt <= naive);
    }

    #[test]
    fn optimal_is_deterministic() {
        assert_eq!(quick().optimal(), quick().optimal());
    }

    #[test]
    fn seeded_search_visits_are_pruned() {
        // With the optimal seed the search must expand far fewer nodes
        // than the full permutation tree.
        let t = quick();
        let visits = total_visits(&t);
        let full: usize = (1..t.cities).product::<usize>() * 2;
        assert!(visits > 0);
        assert!(
            visits < full * 10,
            "visits {visits} vs factorial scale {full}"
        );
    }

    #[test]
    fn runs_on_machine_and_result_checks() {
        let app = quick();
        run_app(
            &app,
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::limitless(5))
                .victim_cache(true)
                .check_coherence(true)
                .build(),
        );
    }

    #[test]
    fn thrashing_hurts_and_victim_cache_helps() {
        // Figure 3's mechanism at miniature scale: base (no victim,
        // real ifetch) must show more data misses than the
        // victim-cache configuration.
        let app = quick();
        let base = run_app(
            &app,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(5))
                .build(),
        );
        let victim = run_app(
            &app,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(5))
                .victim_cache(true)
                .build(),
        );
        let perfect = run_app(
            &app,
            MachineConfig::builder()
                .nodes(4)
                .protocol(ProtocolSpec::limitless(5))
                .perfect_ifetch(true)
                .build(),
        );
        assert!(
            victim.cycles < base.cycles,
            "victim caching must help: {} vs {}",
            victim.cycles,
            base.cycles
        );
        assert!(
            perfect.cycles < base.cycles,
            "perfect ifetch must help: {} vs {}",
            perfect.cycles,
            base.cycles
        );
    }
}
