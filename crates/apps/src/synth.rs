//! SYNTH: the parameterized synthetic workload generator.
//!
//! The protocols only ever observe the memory reference stream, so a
//! seeded generator over *sharing structure* — worker-set sizes,
//! read/write mix, sharing pattern, synchronization density,
//! instruction footprint — explores protocol behaviour the six paper
//! applications never reach: worker sets straddling the five-pointer
//! hardware boundary, directory-thrashing interleavings, migratory vs
//! wide-shared mixes (DESIGN.md §11).
//!
//! The generated programs are **data-race-free by construction**:
//! every round is two barrier-separated phases (everyone reads, then
//! designated writers write), each block has exactly one writer per
//! round, and contended counters are touched only through lock-guarded
//! atomic adds. That discipline is what lets every random spec run
//! through the full differential oracle — plain-read values are
//! protocol-independent, so any divergence is a coherence bug, not
//! workload noise.
//!
//! The shared layout is independent of the machine size: `blocks`
//! names a *total* shared-block count and every address is fixed, so
//! [`App::init_memory`] and [`App::expected_results`] — which cannot
//! see the node count — stay consistent with [`App::programs`] at any
//! machine size.

use limitless_cache::InstrFootprint;
use limitless_machine::{Op, Program, Rmw};
use limitless_sim::{Addr, SplitMix64};

use crate::layout::{slot, ScriptWithCode};
use crate::{App, Scale};

/// How block ownership moves between rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharingPattern {
    /// Ownership migrates: each round's writer is one of the previous
    /// round's readers, so the directory sees read-then-own handoffs
    /// (small worker sets, heavy ownership transfer).
    Migratory,
    /// A fixed producer per block writes; a fixed consumer set reads —
    /// the AQ-style pattern, stable small worker sets.
    #[default]
    ProducerConsumer,
    /// A slowly rotating writer invalidates a *fresh* random reader
    /// set every round — maximal directory pressure, the pattern that
    /// straddles the five-pointer boundary.
    WideShared,
}

impl SharingPattern {
    /// The spec-grammar spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SharingPattern::Migratory => "migratory",
            SharingPattern::ProducerConsumer => "producer-consumer",
            SharingPattern::WideShared => "wide-shared",
        }
    }

    /// Parses a spec-grammar spelling (underscores accepted).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "migratory" => Some(SharingPattern::Migratory),
            "producer-consumer" | "pc" => Some(SharingPattern::ProducerConsumer),
            "wide-shared" | "wide" => Some(SharingPattern::WideShared),
            _ => None,
        }
    }

    /// Every pattern, for samplers and docs.
    pub const ALL: [SharingPattern; 3] = [
        SharingPattern::Migratory,
        SharingPattern::ProducerConsumer,
        SharingPattern::WideShared,
    ];
}

/// Instruction working-set size streamed through the combined cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Footprint {
    /// Negligible code footprint (no instruction-fetch traffic).
    #[default]
    None,
    /// 64 instruction blocks — fits comfortably, warm after round one.
    Small,
    /// 2048 instruction blocks — half the 4096-set Alewife cache, so
    /// code evicts data the way TSP's hot loop does.
    Large,
}

impl Footprint {
    /// The spec-grammar spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Footprint::None => "none",
            Footprint::Small => "small",
            Footprint::Large => "large",
        }
    }

    /// Parses a spec-grammar spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(Footprint::None),
            "small" => Some(Footprint::Small),
            "large" => Some(Footprint::Large),
            _ => None,
        }
    }

    fn code_blocks(self) -> Option<u64> {
        match self {
            Footprint::None => None,
            Footprint::Small => Some(64),
            Footprint::Large => Some(2048),
        }
    }
}

/// Number of FIFO locks (and lock-guarded counters) the sync episodes
/// spread across.
const LOCKS: u64 = 4;
/// Private accesses per node per round (split read/write by `rw`).
const PRIVATE_OPS: usize = 4;
/// Most shared blocks a spec may name (keeps the fixed regions apart).
pub const MAX_BLOCKS: usize = 4096;

/// Fixed region bases — independent of machine size by design.
const SHARED_BASE: u64 = 0xD0_0000;
const COUNTER_BASE: u64 = 0xE0_0000;
const PRIVATE_BASE: u64 = 0xE1_0000;

/// The synthetic workload. Build one directly or through the registry
/// spec `synth:seed=7,pattern=wide-shared,ws=6,...`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Synth {
    /// Master seed: same seed, same programs, bit-identical runs.
    pub seed: u64,
    /// Preferred machine size (a hint for harnesses that size the
    /// machine from the spec; `programs(nodes)` adapts to any size).
    pub nodes_hint: Option<usize>,
    /// Sharing pattern.
    pub pattern: SharingPattern,
    /// Target worker-set size: distinct nodes caching each block per
    /// round, *including* the round's writer (whose directory pointer
    /// survives the read phase) — the quantity Figure 6 histograms.
    /// A p-pointer protocol first traps at `ws = p + 1`.
    pub ws: usize,
    /// Half-width of the worker-set size distribution: each block's
    /// worker-set size is sampled uniformly from `ws ± jitter`
    /// (clamped to `[1, nodes]`). 0 = exact sets, the Figure-2
    /// discipline.
    pub jitter: usize,
    /// Fraction of private data accesses that are writes, in `[0, 1]`.
    pub rw: f64,
    /// Per-node per-round probability of a lock-guarded counter
    /// episode (acquire, atomic add, release), in `[0, 1]`.
    pub sync: f64,
    /// Instruction working-set size.
    pub footprint: Footprint,
    /// Total shared blocks (at most [`MAX_BLOCKS`]).
    pub blocks: usize,
    /// Read-barrier-write-barrier rounds.
    pub rounds: usize,
}

impl Synth {
    /// Defaults at a scale: quick keeps rounds short for CI; paper
    /// runs long enough for steady-state directory behaviour.
    pub fn new(scale: Scale) -> Self {
        Synth {
            seed: 1,
            nodes_hint: None,
            pattern: SharingPattern::default(),
            ws: 4,
            jitter: 0,
            rw: 0.3,
            sync: 0.05,
            footprint: Footprint::None,
            blocks: 32,
            rounds: match scale {
                Scale::Quick => 6,
                Scale::Paper => 16,
            },
        }
    }

    /// The scale-out stress preset behind the registry's `scale:`
    /// family: wide-shared sharing whose worker sets grow with the
    /// machine (`ws = nodes / 8`, at least 12, jittered by
    /// `nodes / 32`), so on any limited-pointer protocol the reader
    /// sets blow far past the hardware pointers and every block
    /// overflows into the software extension — the workload that makes
    /// 512- and 1024-node runs exercise the directory's slab regimes
    /// rather than coast on small worker sets. Only a full-map
    /// directory (capacity = nodes) absorbs it without trapping.
    pub fn scale_out(nodes: usize, scale: Scale) -> Self {
        Synth {
            seed: 0x5CA1E,
            nodes_hint: Some(nodes),
            pattern: SharingPattern::WideShared,
            ws: (nodes / 8).max(12),
            jitter: (nodes / 32).max(2),
            rw: 0.3,
            sync: 0.02,
            footprint: Footprint::None,
            blocks: 48,
            rounds: match scale {
                Scale::Quick => 4,
                Scale::Paper => 12,
            },
        }
    }

    /// The canonical spec string this workload parses back from.
    pub fn spec_string(&self) -> String {
        let mut s = format!(
            "synth:seed={},pattern={},ws={},jitter={},rw={},sync={},footprint={},blocks={},rounds={}",
            self.seed,
            self.pattern.as_str(),
            self.ws,
            self.jitter,
            self.rw,
            self.sync,
            self.footprint.as_str(),
            self.blocks,
            self.rounds,
        );
        if let Some(n) = self.nodes_hint {
            s.push_str(&format!(",nodes={n}"));
        }
        s
    }

    fn shared_slot(&self, b: usize) -> Addr {
        slot(Addr(SHARED_BASE), b as u64)
    }

    fn counter_slot(lock: u32) -> Addr {
        slot(Addr(COUNTER_BASE), u64::from(lock))
    }

    fn private_slot(me: usize, s: usize) -> Addr {
        slot(Addr(PRIVATE_BASE), (me * PRIVATE_OPS + s) as u64)
    }

    /// The deterministic value block `b` holds after round `r`
    /// (`r = usize::MAX` is the initial image).
    fn value(&self, b: usize, r: usize) -> u64 {
        let mut rng = SplitMix64::new(
            self.seed ^ (b as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ ((r as u64) << 40),
        );
        rng.next_u64() | 1
    }

    /// The writer of block `b` in round `r`.
    fn writer(&self, b: usize, r: usize, nodes: usize) -> usize {
        match self.pattern {
            SharingPattern::Migratory => (b + r) % nodes,
            SharingPattern::ProducerConsumer => b % nodes,
            // Rotate every fourth round: long enough for wide sets to
            // build up, short enough to exercise ownership changes.
            SharingPattern::WideShared => (b + r / 4) % nodes,
        }
    }

    /// The full round-by-round schedule: `readers[r][b]` is the sorted
    /// reader set of block `b` in round `r`, and `sync_nodes[r][n]`
    /// the lock node `n` takes that round, if any. Computed once from
    /// the master seed; per-node programs are projections of this
    /// table, which is what keeps the collective schedule consistent.
    fn schedule(&self, nodes: usize) -> SynthSchedule {
        let mut rng = SplitMix64::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        // Sampled size counts the writer, so the reader count handed
        // to `pick_readers` is one less.
        let sample_k = |rng: &mut SplitMix64, nodes: usize| {
            let lo = self.ws.saturating_sub(self.jitter).max(1).min(nodes);
            let hi = (self.ws + self.jitter).min(nodes);
            lo + rng.next_below((hi - lo + 1) as u64) as usize - 1
        };
        // Producer-consumer: one fixed reader set per block.
        let fixed: Vec<Vec<usize>> = (0..self.blocks)
            .map(|b| {
                let k = sample_k(&mut rng, nodes);
                pick_readers(&mut rng, nodes, self.writer(b, 0, nodes), k, None)
            })
            .collect();
        let mut readers = Vec::with_capacity(self.rounds);
        let mut sync_nodes = Vec::with_capacity(self.rounds);
        for r in 0..self.rounds {
            let row: Vec<Vec<usize>> = (0..self.blocks)
                .map(|b| match self.pattern {
                    SharingPattern::ProducerConsumer => fixed[b].clone(),
                    SharingPattern::Migratory => {
                        // The next round's writer always reads first —
                        // that read-then-own handoff is the migratory
                        // signature.
                        let k = sample_k(&mut rng, nodes);
                        let next = self.writer(b, r + 1, nodes);
                        pick_readers(&mut rng, nodes, self.writer(b, r, nodes), k, Some(next))
                    }
                    SharingPattern::WideShared => {
                        let k = sample_k(&mut rng, nodes);
                        pick_readers(&mut rng, nodes, self.writer(b, r, nodes), k, None)
                    }
                })
                .collect();
            readers.push(row);
            // Bernoulli(sync) per node, plus which lock it takes.
            let episodes: Vec<Option<u32>> = (0..nodes)
                .map(|_| {
                    let hit = rng.next_f64() < self.sync;
                    let lock = rng.next_below(LOCKS) as u32;
                    hit.then_some(lock)
                })
                .collect();
            sync_nodes.push(episodes);
        }
        SynthSchedule {
            readers,
            sync_nodes,
        }
    }

    /// Total lock episodes per lock across the whole run at a given
    /// machine size — the deterministic final counter values.
    pub fn counter_totals(&self, nodes: usize) -> [u64; LOCKS as usize] {
        let sched = self.schedule(nodes);
        let mut totals = [0u64; LOCKS as usize];
        for round in &sched.sync_nodes {
            for lock in round.iter().flatten() {
                totals[*lock as usize] += 1;
            }
        }
        totals
    }
}

struct SynthSchedule {
    /// `readers[r][b]`: reader set of block `b` in round `r`.
    readers: Vec<Vec<Vec<usize>>>,
    /// `sync_nodes[r][n]`: the lock node `n` takes in round `r`, if any.
    sync_nodes: Vec<Vec<Option<u32>>>,
}

/// Picks `k` distinct reader nodes excluding `writer`, optionally
/// forcing `must` into the set: a random rotation over the node ring.
fn pick_readers(
    rng: &mut SplitMix64,
    nodes: usize,
    writer: usize,
    k: usize,
    must: Option<usize>,
) -> Vec<usize> {
    let k = k.min(nodes - 1);
    let start = rng.next_below(nodes as u64) as usize;
    let mut set = Vec::with_capacity(k);
    if let Some(m) = must {
        if m != writer {
            set.push(m);
        }
    }
    let mut i = 0;
    while set.len() < k && i < nodes {
        let cand = (start + i) % nodes;
        i += 1;
        if cand != writer && !set.contains(&cand) {
            set.push(cand);
        }
    }
    set.sort_unstable();
    set
}

impl App for Synth {
    fn name(&self) -> &'static str {
        "SYNTH"
    }

    fn language(&self) -> &'static str {
        "generated"
    }

    fn size_description(&self) -> String {
        self.spec_string()
    }

    fn preferred_nodes(&self) -> Option<usize> {
        self.nodes_hint
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        assert!(nodes >= 2, "synth needs at least two nodes");
        assert!(self.blocks <= MAX_BLOCKS, "synth blocks exceed MAX_BLOCKS");
        let sched = self.schedule(nodes);
        let footprint = self
            .footprint
            .code_blocks()
            .map(|code| InstrFootprint::new(0, code));

        (0..nodes)
            .map(|me| {
                // Private traffic draws from a per-node stream so its
                // volume varies node-to-node without touching the
                // shared schedule.
                let mut rng =
                    SplitMix64::new(self.seed ^ (me as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
                let mut ops = Vec::new();
                let mut priv_vals = [0u64; PRIVATE_OPS];
                for r in 0..self.rounds {
                    // Read phase: every block whose reader set holds me.
                    for b in 0..self.blocks {
                        if sched.readers[r][b].contains(&me) {
                            ops.push(Op::Read(self.shared_slot(b)));
                        }
                    }
                    // Private mix: reads and writes in the rw ratio,
                    // on this node's own blocks — protocol-invisible
                    // values, real cache/home traffic.
                    for (s, val) in priv_vals.iter_mut().enumerate() {
                        let a = Self::private_slot(me, s);
                        if rng.next_f64() < self.rw {
                            *val = val.wrapping_add(1 + r as u64);
                            ops.push(Op::Write(a, *val));
                        } else {
                            ops.push(Op::Read(a));
                        }
                    }
                    ops.push(Op::Compute(1 + rng.next_below(64)));
                    // Sync episode: lock-guarded atomic add. The grant
                    // order varies across protocols; the sum does not.
                    if let Some(lock) = sched.sync_nodes[r][me] {
                        ops.push(Op::LockAcquire(lock));
                        ops.push(Op::Rmw(Self::counter_slot(lock), Rmw::Add(1)));
                        ops.push(Op::LockRelease(lock));
                    }
                    ops.push(Op::Barrier);
                    // Write phase: the blocks I own this round.
                    for b in 0..self.blocks {
                        if self.writer(b, r, nodes) == me {
                            ops.push(Op::Write(self.shared_slot(b), self.value(b, r)));
                        }
                    }
                    ops.push(Op::Barrier);
                }
                Box::new(ScriptWithCode::new(ops, footprint)) as Box<dyn Program>
            })
            .collect()
    }

    fn init_memory(&self) -> Vec<(Addr, u64)> {
        // Round-0 reads must observe deterministic values: seed every
        // shared block (and zero the counters) before the run. The
        // fixed layout makes this valid at any machine size.
        let mut init: Vec<(Addr, u64)> = (0..self.blocks)
            .map(|b| (self.shared_slot(b), self.value(b, usize::MAX)))
            .collect();
        for lock in 0..LOCKS as u32 {
            init.push((Self::counter_slot(lock), 0));
        }
        init
    }

    fn expected_results(&self) -> Vec<(Addr, u64)> {
        // Every block's final value is its last round's write —
        // node-count-independent because values are a function of
        // (block, round) alone. Counter totals depend on the machine
        // size, so they are verified in tests via `counter_totals`.
        if self.rounds == 0 {
            return Vec::new();
        }
        (0..self.blocks)
            .map(|b| (self.shared_slot(b), self.value(b, self.rounds - 1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_app, run_app_with_machine};
    use limitless_core::ProtocolSpec;
    use limitless_machine::MachineConfig;

    fn cfg(p: ProtocolSpec, nodes: usize) -> MachineConfig {
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(p)
            .victim_cache(true)
            .check_coherence(true)
            .build()
    }

    fn base() -> Synth {
        Synth {
            blocks: 16,
            ..Synth::new(Scale::Quick)
        }
    }

    #[test]
    fn every_pattern_runs_clean_and_verifies() {
        for pattern in SharingPattern::ALL {
            let app = Synth { pattern, ..base() };
            let r = run_app(&app, cfg(ProtocolSpec::limitless(5), 8));
            assert!(r.cycles.as_u64() > 0, "{pattern:?}");
        }
    }

    #[test]
    fn worker_set_parameter_drives_invalidations() {
        let invs = |ws: usize| {
            let app = Synth {
                pattern: SharingPattern::WideShared,
                ws,
                ..base()
            };
            let r = run_app(&app, cfg(ProtocolSpec::full_map(), 8));
            r.stats.engine.invs_sent
        };
        assert!(
            invs(6) > invs(2),
            "wider worker sets must invalidate more copies"
        );
    }

    #[test]
    fn sets_beyond_five_pointers_trap() {
        let traps = |ws: usize| {
            let app = Synth {
                pattern: SharingPattern::WideShared,
                ws,
                sync: 0.0,
                ..base()
            };
            run_app(&app, cfg(ProtocolSpec::limitless(5), 8))
                .stats
                .engine
                .traps
        };
        let below = traps(3);
        let above = traps(7);
        assert!(
            above > below,
            "ws=7 ({above} traps) must out-trap ws=3 ({below} traps) on 5 pointers"
        );
    }

    #[test]
    fn same_seed_is_bit_identical_different_seed_is_not() {
        let a = run_app(&base(), cfg(ProtocolSpec::limitless(5), 8));
        let b = run_app(&base(), cfg(ProtocolSpec::limitless(5), 8));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
        let c = run_app(
            &Synth { seed: 2, ..base() },
            cfg(ProtocolSpec::limitless(5), 8),
        );
        assert_ne!(a.cycles, c.cycles, "different seed, different stream");
    }

    #[test]
    fn sync_density_produces_lock_traffic_with_exact_counter_totals() {
        let app = Synth {
            sync: 0.8,
            rounds: 8,
            ..base()
        };
        let totals = app.counter_totals(8);
        assert!(
            totals.iter().sum::<u64>() > 0,
            "sync=0.8 must schedule episodes"
        );
        let (_, m) = run_app_with_machine(&app, cfg(ProtocolSpec::limitless(5), 8));
        for (lock, want) in totals.into_iter().enumerate() {
            assert_eq!(
                m.peek(Synth::counter_slot(lock as u32)),
                want,
                "lock {lock} counter"
            );
        }
    }

    #[test]
    fn runs_at_sizes_other_than_the_hint() {
        // The fixed layout means init/expected stay valid even when
        // the machine is larger or smaller than the spec's hint.
        let app = Synth {
            nodes_hint: Some(8),
            ..base()
        };
        run_app(&app, cfg(ProtocolSpec::limitless(5), 4));
        run_app(&app, cfg(ProtocolSpec::limitless(5), 16));
    }

    #[test]
    fn spec_string_round_trips_through_the_registry() {
        let app = Synth {
            seed: 7,
            pattern: SharingPattern::Migratory,
            ws: 6,
            ..base()
        };
        let spec: crate::AppSpec = app.spec_string().parse().unwrap();
        let rebuilt = crate::registry::build(&spec, Scale::Quick).unwrap();
        assert_eq!(rebuilt.size_description(), app.spec_string());
    }

    #[test]
    fn jitter_spreads_worker_set_sizes() {
        let app = Synth {
            pattern: SharingPattern::WideShared,
            ws: 4,
            jitter: 2,
            ..base()
        };
        let sched = app.schedule(8);
        let sizes: std::collections::BTreeSet<usize> = sched
            .readers
            .iter()
            .flat_map(|row| row.iter().map(Vec::len))
            .collect();
        assert!(sizes.len() > 1, "jitter=2 must vary set sizes: {sizes:?}");
    }

    #[test]
    fn scale_out_traps_at_every_limited_pointer_regime_past_512_nodes() {
        // 520 nodes puts the hardware table past the mask regime:
        // capacity <= 8 runs Fixed8, capacity > 8 the word-parallel
        // slab. scale_out's worker sets (ws = 65 here) overflow every
        // limited-pointer capacity, so the software extension traps in
        // all of them; only a full map (capacity = nodes) absorbs the
        // sharing in hardware. Blocks and rounds are trimmed to keep
        // the 520-node machine test-sized.
        let app = Synth {
            blocks: 6,
            rounds: 2,
            sync: 0.0,
            ..Synth::scale_out(520, Scale::Quick)
        };
        let run = |p: ProtocolSpec| {
            let cfg = MachineConfig::builder().nodes(520).protocol(p).build();
            run_app(&app, cfg).stats.engine.traps
        };
        for ptrs in [1usize, 8, 16] {
            assert!(
                run(ProtocolSpec::limitless(ptrs)) > 0,
                "{ptrs}-pointer regime must overflow into software"
            );
        }
        assert_eq!(run(ProtocolSpec::full_map()), 0, "full map never traps");
    }

    #[test]
    fn footprint_slows_the_run_down() {
        let cycles = |footprint: Footprint| {
            let app = Synth {
                footprint,
                ..base()
            };
            run_app(&app, cfg(ProtocolSpec::limitless(5), 8))
                .cycles
                .as_u64()
        };
        assert!(
            cycles(Footprint::Large) > cycles(Footprint::None),
            "a 2048-block code sweep must cost instruction fetches"
        );
    }
}
