//! The application spec grammar: every workload is addressable by a
//! string.
//!
//! ```text
//! spec  := name [ ':' param ( ',' param )* ]
//! param := key '=' value
//! ```
//!
//! Examples: `tsp`, `worker:ws=8`, and
//! `synth:seed=7,pattern=migratory,ws=6,rw=0.3,sync=0.01,footprint=large`.
//! Names and keys are case-insensitive (`TSP` parses — Table 3 spells
//! the applications in capitals); parameter order is preserved so
//! [`AppSpec`] round-trips through [`std::fmt::Display`] verbatim.
//!
//! An [`AppSpec`] is pure syntax: it knows nothing about which
//! applications exist or which keys they take. Resolution — including
//! unknown-name and unknown-key errors — happens in
//! [`crate::registry::build`], so the CLI can report *where* a spec is
//! wrong (syntax vs vocabulary) with a typed [`SpecError`] either way.

use std::fmt;
use std::str::FromStr;

/// A parsed application spec: a name plus `key=value` parameters in
/// source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name, lower-cased.
    pub name: String,
    /// Parameters in source order, keys lower-cased.
    pub params: Vec<(String, String)>,
}

impl AppSpec {
    /// A bare spec with no parameters.
    pub fn bare(name: &str) -> Self {
        AppSpec {
            name: name.to_ascii_lowercase(),
            params: Vec::new(),
        }
    }

    /// The value of `key`, if present (keys are stored lower-cased).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            f.write_str(if i == 0 { ":" } else { "," })?;
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Why a spec string failed to parse or resolve. Mirrors the
/// `ConfigError` pattern: every malformed `--app` argument surfaces as
/// one of these at the CLI boundary, never as a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string (or its name part) is empty.
    Empty,
    /// A parameter is not of the form `key=value`.
    BadParam {
        /// The offending parameter text.
        param: String,
    },
    /// The same key appears twice.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
    /// No application with this name is registered.
    UnknownApp {
        /// The requested name.
        name: String,
        /// The registry's known names, for the error message.
        known: &'static [&'static str],
    },
    /// The application exists but does not take this key.
    UnknownKey {
        /// The application the key was given to.
        app: String,
        /// The unrecognized key.
        key: String,
        /// The keys the application accepts.
        accepted: &'static [&'static str],
    },
    /// The key exists but the value does not parse or is out of range.
    BadValue {
        /// The key being set.
        key: String,
        /// The rejected value text.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty app spec"),
            SpecError::BadParam { param } => {
                write!(f, "malformed parameter `{param}` (expected key=value)")
            }
            SpecError::DuplicateKey { key } => write!(f, "duplicate key `{key}`"),
            SpecError::UnknownApp { name, known } => {
                write!(f, "unknown app `{name}` (known: {})", known.join(", "))
            }
            SpecError::UnknownKey { app, key, accepted } => {
                if accepted.is_empty() {
                    write!(f, "app `{app}` takes no parameters, got `{key}`")
                } else {
                    write!(
                        f,
                        "app `{app}` has no parameter `{key}` (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            SpecError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "bad value `{value}` for `{key}` (expected {expected})"),
        }
    }
}

impl std::error::Error for SpecError {}

impl FromStr for AppSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (s, None),
        };
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut params = Vec::new();
        if let Some(rest) = rest {
            for raw in rest.split(',') {
                let raw = raw.trim();
                let Some((k, v)) = raw.split_once('=') else {
                    return Err(SpecError::BadParam {
                        param: raw.to_string(),
                    });
                };
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k.is_empty() || v.is_empty() {
                    return Err(SpecError::BadParam {
                        param: raw.to_string(),
                    });
                }
                if params.iter().any(|(existing, _)| *existing == k) {
                    return Err(SpecError::DuplicateKey { key: k });
                }
                params.push((k, v));
            }
        }
        Ok(AppSpec { name, params })
    }
}

/// Helper used by the registry: parse a typed value out of a spec
/// parameter, mapping failures to [`SpecError::BadValue`].
pub(crate) fn parse_value<T: FromStr>(
    key: &str,
    value: &str,
    expected: &'static str,
) -> Result<T, SpecError> {
    value.parse().map_err(|_| SpecError::BadValue {
        key: key.to_string(),
        value: value.to_string(),
        expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_parse() {
        let s: AppSpec = "tsp".parse().unwrap();
        assert_eq!(s, AppSpec::bare("tsp"));
        assert_eq!(s.to_string(), "tsp");
    }

    #[test]
    fn names_and_keys_are_case_insensitive() {
        let s: AppSpec = "WORKER:WS=8".parse().unwrap();
        assert_eq!(s.name, "worker");
        assert_eq!(s.get("ws"), Some("8"));
    }

    #[test]
    fn parameters_round_trip_in_order() {
        let text = "synth:seed=7,pattern=migratory,ws=6,rw=0.3,sync=0.01,footprint=large";
        let s: AppSpec = text.parse().unwrap();
        assert_eq!(s.to_string(), text);
        let again: AppSpec = s.to_string().parse().unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let s: AppSpec = " worker : ws = 8 , blocks = 2 ".parse().unwrap();
        assert_eq!(s.to_string(), "worker:ws=8,blocks=2");
    }

    #[test]
    fn empty_specs_are_typed_errors() {
        assert_eq!("".parse::<AppSpec>(), Err(SpecError::Empty));
        assert_eq!("  ".parse::<AppSpec>(), Err(SpecError::Empty));
        assert_eq!(":ws=8".parse::<AppSpec>(), Err(SpecError::Empty));
    }

    #[test]
    fn malformed_params_are_typed_errors() {
        assert!(matches!(
            "worker:ws".parse::<AppSpec>(),
            Err(SpecError::BadParam { param }) if param == "ws"
        ));
        assert!(matches!(
            "worker:ws=".parse::<AppSpec>(),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            "worker:=8".parse::<AppSpec>(),
            Err(SpecError::BadParam { .. })
        ));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert_eq!(
            "worker:ws=8,ws=9".parse::<AppSpec>(),
            Err(SpecError::DuplicateKey {
                key: "ws".to_string()
            })
        );
    }

    #[test]
    fn errors_render_helpfully() {
        let e = "worker:ws".parse::<AppSpec>().unwrap_err();
        assert!(e.to_string().contains("key=value"), "{e}");
    }
}
