//! JSON export of experiment results, for plotting outside the
//! terminal.

use crate::hist::Histogram;
use crate::json::{JsonError, JsonValue};

/// One experiment's results in exportable form: a grid of labelled
/// series (one per protocol) over labelled points (worker-set sizes,
/// applications, …), plus optional histograms and free-form metadata
/// such as simulator-throughput figures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExperimentExport {
    /// Experiment id, e.g. `fig2`.
    pub id: String,
    /// Point labels (x axis).
    pub points: Vec<String>,
    /// `(series label, values)` — one value per point.
    pub series: Vec<(String, Vec<f64>)>,
    /// Attached histograms, e.g. worker-set sizes.
    pub histograms: Vec<(String, Histogram)>,
    /// Free-form `(key, value)` metadata, e.g. `events_per_sec`.
    pub meta: Vec<(String, f64)>,
}

impl ExperimentExport {
    /// Creates an empty export for experiment `id`.
    pub fn new(id: &str) -> Self {
        ExperimentExport {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Sets the point labels.
    pub fn points<S: Into<String>>(&mut self, points: impl IntoIterator<Item = S>) -> &mut Self {
        self.points = points.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length differs from the point count.
    pub fn push_series(&mut self, label: &str, values: Vec<f64>) -> &mut Self {
        assert_eq!(
            values.len(),
            self.points.len(),
            "series `{label}` length {} != points {}",
            values.len(),
            self.points.len()
        );
        self.series.push((label.to_string(), values));
        self
    }

    /// Attaches a histogram.
    pub fn push_histogram(&mut self, label: &str, h: Histogram) -> &mut Self {
        self.histograms.push((label.to_string(), h));
        self
    }

    /// Attaches a metadata value.
    pub fn push_meta(&mut self, key: &str, value: f64) -> &mut Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (practically
    /// impossible for this data shape).
    pub fn to_json(&self) -> Result<String, JsonError> {
        let series = self
            .series
            .iter()
            .map(|(label, values)| {
                JsonValue::Arr(vec![
                    JsonValue::Str(label.clone()),
                    JsonValue::Arr(values.iter().map(|&v| JsonValue::from_f64(v)).collect()),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(label, h)| {
                JsonValue::Arr(vec![JsonValue::Str(label.clone()), h.to_json_value()])
            })
            .collect();
        let meta = self
            .meta
            .iter()
            .map(|(key, value)| {
                JsonValue::Arr(vec![
                    JsonValue::Str(key.clone()),
                    JsonValue::from_f64(*value),
                ])
            })
            .collect();
        let doc = JsonValue::Obj(vec![
            ("id".into(), JsonValue::Str(self.id.clone())),
            (
                "points".into(),
                JsonValue::Arr(self.points.iter().cloned().map(JsonValue::Str).collect()),
            ),
            ("series".into(), JsonValue::Arr(series)),
            ("histograms".into(), JsonValue::Arr(histograms)),
            ("meta".into(), JsonValue::Arr(meta)),
        ]);
        Ok(doc.pretty())
    }

    /// Parses a previously exported experiment.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = JsonValue::parse(s)?;
        let id = doc.get("id")?.as_str()?.to_string();
        let points = doc
            .get("points")?
            .as_arr()?
            .iter()
            .map(|p| p.as_str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let mut series = Vec::new();
        for entry in doc.get("series")?.as_arr()? {
            let pair = entry.as_arr()?;
            let [label, values] = pair else {
                return Err(JsonError::new(
                    "series entry must be a [label, values] pair",
                ));
            };
            let values = values
                .as_arr()?
                .iter()
                .map(JsonValue::as_f64)
                .collect::<Result<Vec<_>, _>>()?;
            series.push((label.as_str()?.to_string(), values));
        }
        let mut histograms = Vec::new();
        for entry in doc.get("histograms")?.as_arr()? {
            let pair = entry.as_arr()?;
            let [label, hist] = pair else {
                return Err(JsonError::new(
                    "histogram entry must be a [label, histogram] pair",
                ));
            };
            histograms.push((
                label.as_str()?.to_string(),
                Histogram::from_json_value(hist)?,
            ));
        }
        let mut meta = Vec::new();
        // Absent `meta` tolerated for exports written before it existed.
        if let Ok(entries) = doc.get("meta") {
            for entry in entries.as_arr()? {
                let pair = entry.as_arr()?;
                let [key, value] = pair else {
                    return Err(JsonError::new("meta entry must be a [key, value] pair"));
                };
                meta.push((key.as_str()?.to_string(), value.as_f64()?));
            }
        }
        Ok(ExperimentExport {
            id,
            points,
            series,
            histograms,
            meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut e = ExperimentExport::new("fig2");
        e.points(["ws=1", "ws=2"]);
        e.push_series("DirnH5SNB", vec![1.0, 1.1]);
        let mut h = Histogram::new();
        h.add_n(1, 100);
        e.push_histogram("worker-sets", h);
        e.push_meta("events_per_sec", 1.25e6);
        let json = e.to_json().unwrap();
        let back = ExperimentExport::from_json(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_series_panics() {
        let mut e = ExperimentExport::new("x");
        e.points(["a"]);
        e.push_series("s", vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ExperimentExport::from_json("not json").is_err());
    }

    #[test]
    fn reads_exports_without_meta() {
        let mut e = ExperimentExport::new("fig3");
        e.points(["a"]);
        e.push_series("s", vec![2.5]);
        let json = e.to_json().unwrap();
        // Strip the meta field to emulate an older export.
        let stripped = json.replace(",\n  \"meta\": []", "");
        let back = ExperimentExport::from_json(&stripped).unwrap();
        assert_eq!(back.series, e.series);
        assert!(back.meta.is_empty());
    }
}
