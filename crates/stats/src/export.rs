//! JSON export of experiment results, for plotting outside the
//! terminal.

use serde::{Deserialize, Serialize};

use crate::hist::Histogram;

/// One experiment's results in exportable form: a grid of labelled
/// series (one per protocol) over labelled points (worker-set sizes,
/// applications, …), plus optional histograms.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentExport {
    /// Experiment id, e.g. `fig2`.
    pub id: String,
    /// Point labels (x axis).
    pub points: Vec<String>,
    /// `(series label, values)` — one value per point.
    pub series: Vec<(String, Vec<f64>)>,
    /// Attached histograms, e.g. worker-set sizes.
    pub histograms: Vec<(String, Histogram)>,
}

impl ExperimentExport {
    /// Creates an empty export for experiment `id`.
    pub fn new(id: &str) -> Self {
        ExperimentExport {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Sets the point labels.
    pub fn points<S: Into<String>>(&mut self, points: impl IntoIterator<Item = S>) -> &mut Self {
        self.points = points.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length differs from the point count.
    pub fn push_series(&mut self, label: &str, values: Vec<f64>) -> &mut Self {
        assert_eq!(
            values.len(),
            self.points.len(),
            "series `{label}` length {} != points {}",
            values.len(),
            self.points.len()
        );
        self.series.push((label.to_string(), values));
        self
    }

    /// Attaches a histogram.
    pub fn push_histogram(&mut self, label: &str, h: Histogram) -> &mut Self {
        self.histograms.push((label.to_string(), h));
        self
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (practically
    /// impossible for this data shape).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a previously exported experiment.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut e = ExperimentExport::new("fig2");
        e.points(["ws=1", "ws=2"]);
        e.push_series("DirnH5SNB", vec![1.0, 1.1]);
        let mut h = Histogram::new();
        h.add_n(1, 100);
        e.push_histogram("worker-sets", h);
        let json = e.to_json().unwrap();
        let back = ExperimentExport::from_json(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_series_panics() {
        let mut e = ExperimentExport::new("x");
        e.points(["a"]);
        e.push_series("s", vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ExperimentExport::from_json("not json").is_err());
    }
}
