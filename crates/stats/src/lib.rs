//! Measurement infrastructure for the `limitless` experiments.
//!
//! NWO's value to the paper was *non-intrusive observation*: latency
//! samples, worker-set histograms and per-activity cycle ledgers
//! gathered without perturbing the simulation. This crate provides
//! those observers plus the table formatting used by the benchmark
//! harnesses to print paper-style rows.

pub mod chart;
pub mod export;
pub mod hist;
pub mod json;
pub mod sampler;
pub mod table;
pub mod worker_sets;

pub use chart::{log_histogram, BarChart};
pub use export::ExperimentExport;
pub use hist::Histogram;
pub use json::{JsonError, JsonValue};
pub use sampler::LatencySampler;
pub use table::{fmt_f64, Table};
pub use worker_sets::WorkerSetTracker;
