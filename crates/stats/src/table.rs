//! Plain-text table rendering for the experiment harnesses.

use std::fmt::Write as _;

/// A simple left-padded ASCII table, used by every `bench` target to
/// print paper-style rows.
///
/// # Examples
///
/// ```
/// use limitless_stats::Table;
///
/// let mut t = Table::new(&["protocol", "speedup"]);
/// t.row(&["DirnH5SNB", "55.3"]);
/// let s = t.render();
/// assert!(s.contains("protocol"));
/// assert!(s.contains("55.3"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator under
    /// the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", cell, w = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimal places.
pub fn fmt_f64(v: f64, places: usize) -> String {
    format!("{v:.places$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned: "333" should end at the same column as "a".
        assert_eq!(lines[0].find("longer"), lines[2].rfind('2').map(|i| i - 5));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_places() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }
}
