//! Worker-set tracking (paper §5 and Figure 6).
//!
//! A *worker set* is the set of nodes that simultaneously access a
//! unit of data. Operationally — and this is how the directory sees
//! it — the worker set of a block at a write is the set of distinct
//! nodes that touched the block since the previous write. This tracker
//! observes the reference stream and produces the Figure 6 histogram.

use std::collections::HashMap;

use crate::hist::Histogram;

/// Tracks worker sets per block from a stream of (block, node,
/// is_write) observations.
///
/// # Examples
///
/// ```
/// use limitless_stats::WorkerSetTracker;
///
/// let mut t = WorkerSetTracker::new();
/// t.touch(1, 10, false);
/// t.touch(1, 11, false);
/// t.touch(1, 12, true); // write closes the worker set {10, 11, 12}
/// let h = t.finish();
/// assert_eq!(h.count(3), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkerSetTracker {
    /// Block -> sorted set of nodes since last write.
    current: HashMap<u64, Vec<u16>>,
    closed: Histogram,
}

impl WorkerSetTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        WorkerSetTracker::default()
    }

    /// Observes an access to `block` by `node`. A write closes the
    /// block's current worker set (recording its size, including the
    /// writer) and starts a new one containing only the writer.
    pub fn touch(&mut self, block: u64, node: u16, is_write: bool) {
        let set = self.current.entry(block).or_default();
        if let Err(pos) = set.binary_search(&node) {
            set.insert(pos, node);
        }
        if is_write {
            self.closed.add(set.len() as u64);
            set.clear();
            set.push(node);
        }
    }

    /// The worker set currently open for `block` (distinct nodes since
    /// the last write).
    pub fn open_set_size(&self, block: u64) -> usize {
        self.current.get(&block).map_or(0, |s| s.len())
    }

    /// Closes all open worker sets (end of run) and returns the final
    /// histogram of worker-set sizes.
    pub fn finish(mut self) -> Histogram {
        for (_, set) in self.current.drain() {
            if !set.is_empty() {
                self.closed.add(set.len() as u64);
            }
        }
        self.closed
    }

    /// The histogram of worker sets closed so far (open sets not
    /// included).
    pub fn closed_histogram(&self) -> &Histogram {
        &self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_closes_set_including_writer() {
        let mut t = WorkerSetTracker::new();
        t.touch(1, 0, false);
        t.touch(1, 1, false);
        t.touch(1, 2, true);
        assert_eq!(t.closed_histogram().count(3), 1);
        // New set contains only the writer.
        assert_eq!(t.open_set_size(1), 1);
    }

    #[test]
    fn repeat_reads_by_same_node_count_once() {
        let mut t = WorkerSetTracker::new();
        for _ in 0..10 {
            t.touch(1, 5, false);
        }
        assert_eq!(t.open_set_size(1), 1);
    }

    #[test]
    fn writer_only_blocks_produce_singletons() {
        let mut t = WorkerSetTracker::new();
        t.touch(1, 3, true);
        t.touch(1, 3, true);
        let h = t.finish();
        assert_eq!(h.count(1), 3); // two closed by writes + final open set
    }

    #[test]
    fn finish_flushes_open_sets() {
        let mut t = WorkerSetTracker::new();
        t.touch(1, 0, false);
        t.touch(1, 1, false);
        t.touch(2, 0, false);
        let h = t.finish();
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn independent_blocks_tracked_separately() {
        let mut t = WorkerSetTracker::new();
        for n in 0..4 {
            t.touch(7, n, false);
        }
        t.touch(8, 0, false);
        t.touch(7, 9, true);
        assert_eq!(t.closed_histogram().count(5), 1);
        assert_eq!(t.open_set_size(8), 1);
    }
}
