//! A minimal, dependency-free JSON reader/writer.
//!
//! The simulator runs in hermetic environments without access to a
//! crate registry, so the experiment-export format is implemented by
//! hand. Numbers are kept as their source text so `u64` counts round
//! trip exactly; the writer emits two-space-indented output.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text (exact for integers).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// Error produced by [`JsonValue::parse`] or by typed accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message (also usable by
    /// downstream crates layering their own formats on [`JsonValue`]).
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Builds a number value from a `u64` (exact).
    pub fn from_u64(v: u64) -> Self {
        JsonValue::Num(v.to_string())
    }

    /// Builds a number value from a finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity, which JSON cannot represent.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        JsonValue::Num(s)
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::Num(s) => s
                .parse::<u64>()
                .map_err(|_| JsonError::new(format!("expected u64, got `{s}`"))),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Num(s) => s
                .parse::<f64>()
                .map_err(|_| JsonError::new(format!("bad number `{s}`"))),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Arr(v) => Ok(v),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Result<&JsonValue, JsonError> {
        match self {
            JsonValue::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing key `{key}`"))),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Renders with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders on a single line with no insignificant whitespace —
    /// the NDJSON form (one value per line) streaming consumers
    /// expect.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(s) => out.push_str(s),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(s) => out.push_str(s),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))?;
        Ok(JsonValue::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" 42 ").unwrap().as_u64().unwrap(), 42);
        assert_eq!(
            JsonValue::parse("-1.5e3").unwrap().as_f64().unwrap(),
            -1500.0
        );
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap().as_str().unwrap(),
            "a\nb"
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "c"}], "d": []}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].get("b").unwrap().as_str().unwrap(), "c");
        assert!(v.get("d").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = JsonValue::Obj(vec![
            ("id".into(), JsonValue::Str("fig2".into())),
            (
                "vals".into(),
                JsonValue::Arr(vec![JsonValue::from_f64(1.5), JsonValue::from_u64(7)]),
            ),
        ]);
        let text = v.pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = JsonValue::from_u64(u64::MAX);
        let text = v.pretty();
        assert_eq!(JsonValue::parse(&text).unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = JsonValue::Obj(vec![
            ("type".into(), JsonValue::Str("cell".into())),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "vals".into(),
                JsonValue::Arr(vec![JsonValue::from_u64(7), JsonValue::Null]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        let text = v.compact();
        assert!(!text.contains('\n'), "{text}");
        assert_eq!(
            text,
            r#"{"type":"cell","ok":true,"vals":[7,null],"empty":{}}"#
        );
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("not json").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("1 trailing").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("tab\there \"quote\" \u{1}".into());
        let text = v.pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }
}
