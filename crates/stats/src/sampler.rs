//! Latency sampling with mean and median, as used for Tables 1 and 2.
//!
//! The paper summarizes aggregate handler behaviour with the *average*
//! (Table 1) but selects a *median* request when dissecting activity
//! breakdowns (Table 2), "in order to select a representative
//! individual from each sample". The sampler supports both.

use serde::{Deserialize, Serialize};

/// Collects `u64` samples (typically cycle latencies).
///
/// # Examples
///
/// ```
/// use limitless_stats::LatencySampler;
///
/// let mut s = LatencySampler::new();
/// s.record(100);
/// s.record(200);
/// assert_eq!(s.mean(), Some(150.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySampler {
    samples: Vec<u64>,
}

impl LatencySampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        LatencySampler::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        Some(sum as f64 / self.samples.len() as f64)
    }

    /// Median sample (lower middle for even counts), or `None` if
    /// empty.
    pub fn median(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[(sorted.len() - 1) / 2])
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_min_max() {
        let mut s = LatencySampler::new();
        for v in [5, 1, 9, 3, 7] {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.median(), Some(5));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_sampler_returns_none() {
        let s = LatencySampler::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn even_count_median_is_lower_middle() {
        let mut s = LatencySampler::new();
        for v in [1, 2, 3, 4] {
            s.record(v);
        }
        assert_eq!(s.median(), Some(2));
    }

    #[test]
    fn samples_preserved_in_order() {
        let mut s = LatencySampler::new();
        s.record(3);
        s.record(1);
        assert_eq!(s.samples(), &[3, 1]);
    }
}
