//! Latency sampling with mean and median, as used for Tables 1 and 2.
//!
//! The paper summarizes aggregate handler behaviour with the *average*
//! (Table 1) but selects a *median* request when dissecting activity
//! breakdowns (Table 2), "in order to select a representative
//! individual from each sample". The sampler supports both.
//!
//! Samples are aggregated in a streaming fashion — a count/sum pair
//! plus a value histogram — so memory stays bounded by the number of
//! *distinct* latencies rather than the number of traps. The median is
//! the lower middle (rank `(n - 1) / 2` zero-based, equivalently rank
//! `ceil(n / 2)` one-based), exactly what sorting all samples and
//! indexing `sorted[(n - 1) / 2]` would return.

use crate::hist::Histogram;

/// Collects `u64` samples (typically cycle latencies).
///
/// # Examples
///
/// ```
/// use limitless_stats::LatencySampler;
///
/// let mut s = LatencySampler::new();
/// s.record(100);
/// s.record(200);
/// assert_eq!(s.mean(), Some(150.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySampler {
    count: u64,
    sum: u128,
    hist: Histogram,
}

impl LatencySampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        LatencySampler::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.hist.add(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum as f64 / self.count as f64)
    }

    /// Median sample (lower middle for even counts), or `None` if
    /// empty.
    pub fn median(&self) -> Option<u64> {
        self.hist.median()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.hist.iter().next().map(|(v, _)| v)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.hist.max_value()
    }

    /// The distribution of samples.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Merges another sampler into this one.
    pub fn merge(&mut self, other: &LatencySampler) {
        self.count += other.count;
        self.sum += other.sum;
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_min_max() {
        let mut s = LatencySampler::new();
        for v in [5, 1, 9, 3, 7] {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.median(), Some(5));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_sampler_returns_none() {
        let s = LatencySampler::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn even_count_median_is_lower_middle() {
        let mut s = LatencySampler::new();
        for v in [1, 2, 3, 4] {
            s.record(v);
        }
        assert_eq!(s.median(), Some(2));
    }

    #[test]
    fn matches_sort_and_index_median_on_duplicates() {
        // Streaming median must equal `sorted[(n - 1) / 2]` even with
        // repeated values and even counts.
        let cases: Vec<Vec<u64>> = vec![
            vec![3, 1],
            vec![2, 2, 2, 9],
            vec![10, 10, 1, 1],
            vec![7, 7, 7, 7, 7],
            vec![1, 2, 2, 3, 10, 10],
        ];
        for samples in cases {
            let mut s = LatencySampler::new();
            for &v in &samples {
                s.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            assert_eq!(s.median(), Some(sorted[(sorted.len() - 1) / 2]));
        }
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencySampler::new();
        a.record(1);
        a.record(5);
        let mut b = LatencySampler::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.median(), Some(3));
    }
}
