//! Terminal bar charts, for printing paper-style figures from the
//! experiment harnesses.

use std::fmt::Write as _;

/// A horizontal bar chart with labelled rows.
///
/// # Examples
///
/// ```
/// use limitless_stats::BarChart;
///
/// let mut c = BarChart::new("speedup");
/// c.bar("full-map", 55.0);
/// c.bar("5 ptrs", 52.0);
/// let s = c.render(40);
/// assert!(s.contains("full-map"));
/// assert!(s.contains('█'));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart titled `title`.
    pub fn new(title: &str) -> Self {
        BarChart {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a labelled bar.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn bar(&mut self, label: &str, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar values must be finite and non-negative, got {value}"
        );
        self.rows.push((label.to_string(), value));
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with bars scaled to at most `width` cells. The longest
    /// bar always spans the full width (unless all values are zero).
    pub fn render(&self, width: usize) -> String {
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .rows
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        for (label, v) in &self.rows {
            let cells = ((v / max) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:>label_w$} |{} {v:.1}",
                "█".repeat(cells.min(width))
            );
        }
        out
    }
}

/// A log-scale histogram rendering (for Figure 6-style plots): bar
/// length proportional to `log10(count + 1)`.
pub fn log_histogram(pairs: &[(u64, u64)], width: usize) -> String {
    let max_log = pairs
        .iter()
        .map(|&(_, c)| ((c + 1) as f64).log10())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for &(value, count) in pairs {
        let cells = ((((count + 1) as f64).log10() / max_log) * width as f64).round() as usize;
        let _ = writeln!(out, "{value:>5} |{} {count}", "▒".repeat(cells.min(width)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_bar_fills_width() {
        let mut c = BarChart::new("t");
        c.bar("a", 10.0);
        c.bar("b", 5.0);
        let s = c.render(20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&ch| ch == '█').count();
        assert_eq!(count(lines[1]), 20);
        assert_eq!(count(lines[2]), 10);
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let mut c = BarChart::new("");
        c.bar("z", 0.0);
        let s = c.render(10);
        assert!(!s.contains('█'));
        assert!(s.contains("0.0"));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_bars_panic() {
        BarChart::new("t").bar("x", -1.0);
    }

    #[test]
    fn labels_are_right_aligned() {
        let mut c = BarChart::new("");
        c.bar("long-label", 1.0);
        c.bar("x", 1.0);
        let s = c.render(5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].find('|'), lines[1].find('|'));
    }

    #[test]
    fn log_histogram_compresses_large_counts() {
        let s = log_histogram(&[(1, 10_000), (64, 10)], 30);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&ch| ch == '▒').count();
        // 10k is only ~4x the bar of 10 on a log scale, not 1000x.
        assert!(count(lines[0]) > count(lines[1]));
        assert!(count(lines[0]) < count(lines[1]) * 5);
    }

    #[test]
    fn len_and_is_empty() {
        let mut c = BarChart::new("");
        assert!(c.is_empty());
        c.bar("a", 1.0);
        assert_eq!(c.len(), 1);
    }
}
