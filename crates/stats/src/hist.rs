//! Integer-keyed histograms.

use std::collections::BTreeMap;

use crate::json::{JsonError, JsonValue};

/// A histogram over `u64` keys (worker-set sizes, latencies, …).
///
/// # Examples
///
/// ```
/// use limitless_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.add(3);
/// h.add(3);
/// h.add(7);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: BTreeMap<u64, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Adds one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.bins.entry(value).or_insert(0) += 1;
    }

    /// Adds `n` observations of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.bins.entry(value).or_insert(0) += n;
        }
    }

    /// Observations of exactly `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.bins.get(&value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.bins.values().sum()
    }

    /// Iterates `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().map(|(&v, &c)| (v, c))
    }

    /// The largest observed value.
    pub fn max_value(&self) -> Option<u64> {
        self.bins.keys().next_back().copied()
    }

    /// Mean of the observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: u128 = self
            .bins
            .iter()
            .map(|(&v, &c)| u128::from(v) * u128::from(c))
            .sum();
        Some(sum as f64 / total as f64)
    }

    /// The median observation, or `None` if empty.
    pub fn median(&self) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = total.div_ceil(2);
        let mut seen = 0;
        for (&v, &c) in &self.bins {
            seen += c;
            if seen >= target {
                return Some(v);
            }
        }
        unreachable!("median fell off the end of the histogram")
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.add_n(v, c);
        }
    }

    /// Converts to a JSON object mapping value to count.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.iter()
                .map(|(v, c)| (v.to_string(), JsonValue::from_u64(c)))
                .collect(),
        )
    }

    /// Reconstructs a histogram from [`Histogram::to_json_value`]
    /// output.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not an object of integer
    /// `value: count` pairs.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        let JsonValue::Obj(pairs) = v else {
            return Err(JsonError::new("histogram must be a JSON object"));
        };
        let mut h = Histogram::new();
        for (key, count) in pairs {
            let value: u64 = key
                .parse()
                .map_err(|_| JsonError::new(format!("bad histogram bin `{key}`")))?;
            h.add_n(value, count.as_u64()?);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let mut h = Histogram::new();
        h.add(1);
        h.add_n(5, 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(5), 3);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_value(), Some(5));
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.add_n(9, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
    }

    #[test]
    fn mean_and_median() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 3, 10] {
            h.add(v);
        }
        assert!((h.mean().unwrap() - 3.6).abs() < 1e-9);
        assert_eq!(h.median(), Some(2));
        assert_eq!(Histogram::new().mean(), None);
        assert_eq!(Histogram::new().median(), None);
    }

    #[test]
    fn median_of_even_count_takes_lower_middle() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 4] {
            h.add(v);
        }
        assert_eq!(h.median(), Some(2));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.add(1);
        let mut b = Histogram::new();
        b.add(1);
        b.add(2);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 1);
    }

    #[test]
    fn iterates_in_value_order() {
        let mut h = Histogram::new();
        h.add(9);
        h.add(1);
        h.add(5);
        let keys: Vec<u64> = h.iter().map(|(v, _)| v).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new();
        h.add_n(4, 7);
        let json = h.to_json_value().pretty();
        let back = Histogram::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(h, back);
    }
}
