//! Model-based property tests: directory pointer structures behave as
//! bounded sets.

use std::collections::BTreeSet;

use limitless_dir::{HwDirEntry, PtrStoreOutcome, SwDirectory};
use limitless_sim::{BlockAddr, NodeId};
use proptest::prelude::*;

proptest! {
    /// The hardware pointer array is a set of at most `capacity`
    /// elements; overflow is reported exactly when a new element would
    /// exceed capacity.
    #[test]
    fn hw_entry_is_a_bounded_set(
        capacity in 0usize..6,
        nodes in prop::collection::vec(0u16..12, 0..50),
    ) {
        let mut e = HwDirEntry::new(capacity);
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for n in nodes {
            let outcome = e.record_reader(NodeId(n));
            if model.contains(&n) {
                prop_assert_eq!(outcome, PtrStoreOutcome::Stored);
            } else if model.len() < capacity {
                prop_assert_eq!(outcome, PtrStoreOutcome::Stored);
                model.insert(n);
            } else {
                prop_assert_eq!(outcome, PtrStoreOutcome::Overflow);
            }
            let mut got: Vec<u16> = e.ptrs().iter().map(|p| p.0).collect();
            got.sort_unstable();
            let want: Vec<u16> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Draining moves every pointer out exactly once.
    #[test]
    fn drain_empties_exactly(
        nodes in prop::collection::vec(0u16..12, 0..20),
    ) {
        let mut e = HwDirEntry::new(5);
        let mut model = BTreeSet::new();
        for &n in &nodes {
            if e.record_reader(NodeId(n)) == PtrStoreOutcome::Stored {
                model.insert(n);
            }
        }
        let mut drained: Vec<u16> = e.drain_ptrs().iter().map(|p| p.0).collect();
        drained.sort_unstable();
        prop_assert_eq!(drained, model.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(e.ptr_count(), 0);
    }

    /// The software directory is a per-block set; drain returns exactly
    /// what was recorded and frees the record.
    #[test]
    fn sw_directory_matches_set_model(
        ops in prop::collection::vec((0u64..6, 0u16..10, any::<bool>()), 0..120),
    ) {
        let mut d = SwDirectory::new();
        let mut model: std::collections::HashMap<u64, BTreeSet<u16>> = Default::default();
        for (block, node, drain) in ops {
            if drain {
                let mut got: Vec<u16> = d
                    .drain_readers(BlockAddr(block))
                    .iter()
                    .map(|p| p.0)
                    .collect();
                got.sort_unstable();
                let want: Vec<u16> =
                    model.remove(&block).unwrap_or_default().into_iter().collect();
                prop_assert_eq!(got, want);
            } else {
                let newly = d.record_reader(BlockAddr(block), NodeId(node));
                let inserted = model.entry(block).or_default().insert(node);
                prop_assert_eq!(newly, inserted);
            }
        }
        // Final state agrees.
        for (block, set) in &model {
            let mut got: Vec<u16> = d.readers(BlockAddr(*block)).iter().map(|p| p.0).collect();
            got.sort_unstable();
            prop_assert_eq!(got, set.iter().copied().collect::<Vec<_>>());
        }
        prop_assert_eq!(d.live_entries(), model.values().filter(|s| !s.is_empty()).count());
    }

    /// Acknowledgment counting is exact.
    #[test]
    fn ack_counter_counts_down(acks in 1u32..40) {
        use limitless_dir::HwState;
        let mut e = HwDirEntry::new(2);
        e.begin_transaction(HwState::WriteTransaction, acks, Some(NodeId(1)), true);
        for expected_remaining in (0..acks).rev() {
            prop_assert_eq!(e.count_ack(), expected_remaining);
        }
        prop_assert_eq!(e.acks_pending(), 0);
    }
}
