//! Model-based randomized tests: directory pointer structures behave
//! as bounded sets. Cases are generated with the deterministic
//! `SplitMix64` generator.

use std::collections::BTreeSet;

use limitless_dir::{HwDirEntry, PtrStoreOutcome, SwDirModel};
use limitless_sim::{BlockAddr, NodeId, SplitMix64};

const CASES: u64 = 64;

#[test]
fn hw_entry_is_a_bounded_set() {
    // The hardware pointer array is a set of at most `capacity`
    // elements; overflow is reported exactly when a new element would
    // exceed capacity.
    let mut rng = SplitMix64::new(0x4001);
    for case in 0..CASES {
        let capacity = rng.next_below(6) as usize;
        let len = rng.next_below(50) as usize;
        let mut e = HwDirEntry::new(capacity);
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for _ in 0..len {
            let n = rng.next_below(12) as u16;
            let outcome = e.record_reader(NodeId(n));
            if model.contains(&n) {
                assert_eq!(outcome, PtrStoreOutcome::Stored, "case {case}");
            } else if model.len() < capacity {
                assert_eq!(outcome, PtrStoreOutcome::Stored, "case {case}");
                model.insert(n);
            } else {
                assert_eq!(outcome, PtrStoreOutcome::Overflow, "case {case}");
            }
            let mut got: Vec<u16> = e.ptrs().iter().map(|p| p.0).collect();
            got.sort_unstable();
            let want: Vec<u16> = model.iter().copied().collect();
            assert_eq!(got, want, "case {case}");
        }
    }
}

#[test]
fn drain_empties_exactly() {
    // Draining moves every pointer out exactly once.
    let mut rng = SplitMix64::new(0x4002);
    for case in 0..CASES {
        let len = rng.next_below(20) as usize;
        let mut e = HwDirEntry::new(5);
        let mut model = BTreeSet::new();
        for _ in 0..len {
            let n = rng.next_below(12) as u16;
            if e.record_reader(NodeId(n)) == PtrStoreOutcome::Stored {
                model.insert(n);
            }
        }
        let mut drained: Vec<u16> = e.drain_ptrs().iter().map(|p| p.0).collect();
        drained.sort_unstable();
        assert_eq!(
            drained,
            model.into_iter().collect::<Vec<_>>(),
            "case {case}"
        );
        assert_eq!(e.ptr_count(), 0, "case {case}");
    }
}

#[test]
fn sw_directory_matches_set_model() {
    // The software-directory reference model is a per-block set; drain
    // returns exactly what was recorded and frees the record. (The
    // production `SwDirectory` is differenced against this model in
    // `prop_dirhot.rs`.)
    let mut rng = SplitMix64::new(0x4003);
    for case in 0..CASES {
        let len = rng.next_below(120) as usize;
        let mut d = SwDirModel::new();
        let mut model: std::collections::HashMap<u64, BTreeSet<u16>> = Default::default();
        for _ in 0..len {
            let block = rng.next_below(6);
            let node = rng.next_below(10) as u16;
            let drain = rng.next_below(2) == 1;
            if drain {
                let mut got: Vec<u16> = d
                    .drain_readers(BlockAddr(block))
                    .iter()
                    .map(|p| p.0)
                    .collect();
                got.sort_unstable();
                let want: Vec<u16> = model
                    .remove(&block)
                    .unwrap_or_default()
                    .into_iter()
                    .collect();
                assert_eq!(got, want, "case {case}");
            } else {
                let newly = d.record_reader(BlockAddr(block), NodeId(node));
                let inserted = model.entry(block).or_default().insert(node);
                assert_eq!(newly, inserted, "case {case}");
            }
        }
        // Final state agrees.
        for (block, set) in &model {
            let mut got: Vec<u16> = d.readers(BlockAddr(*block)).iter().map(|p| p.0).collect();
            got.sort_unstable();
            assert_eq!(got, set.iter().copied().collect::<Vec<_>>(), "case {case}");
        }
        assert_eq!(
            d.live_entries(),
            model.values().filter(|s| !s.is_empty()).count(),
            "case {case}"
        );
    }
}

#[test]
fn ack_counter_counts_down() {
    // Acknowledgment counting is exact.
    use limitless_dir::HwState;
    for acks in 1u32..40 {
        let mut e = HwDirEntry::new(2);
        e.begin_transaction(HwState::WriteTransaction, acks, Some(NodeId(1)), true);
        for expected_remaining in (0..acks).rev() {
            assert_eq!(e.count_ack(), expected_remaining);
        }
        assert_eq!(e.acks_pending(), 0);
    }
}
