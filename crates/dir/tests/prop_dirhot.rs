//! Differential randomized tests for the hot-path directory storage:
//! the production structures (bitmask / fixed-width [`HwDirTable`]
//! rows, id-keyed open-addressed [`SwDirectory`]) must behave
//! identically to the fat reference models ([`HwDirEntry`],
//! [`SwDirModel`]) under long random operation tapes, across every
//! pointer-capacity × node-count regime pairing. Companion to
//! `prop_model.rs`, which checks the reference models themselves
//! against pure set semantics.
//!
//! Cases are generated with the deterministic `SplitMix64` generator,
//! so every failure is reproducible from the printed case number.

use limitless_dir::{HwDirEntry, HwDirTable, SwDirModel, SwDirectory};
use limitless_sim::{BlockAddr, NodeId, SplitMix64};

const CASES: u64 = 48;

/// Node counts spanning all three hardware regimes (Mask at <= 64;
/// Fixed8 above 64 with capacity <= 8; Slab above both) and both
/// software regimes (mask at <= 64 nodes, records beyond), plus the
/// 255/256/257 and 1023/1024 boundaries where the presence-word count
/// steps and the scale-out machines actually run.
const NODE_COUNTS: [usize; 8] = [16, 64, 68, 255, 256, 257, 1023, 1024];

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v
}

#[test]
fn hw_rows_match_fat_entry_under_random_tapes() {
    let mut rng = SplitMix64::new(0x7001);
    for &nodes in &NODE_COUNTS {
        for capacity in [0usize, 1, 2, 5, 8, 9, 13] {
            // Node ids drawn slightly past 64 to force Fixed8 alias
            // collisions (`node & 63`) when the machine allows it; on
            // the big boundary machines the full range is used instead
            // so the slab's upper presence words see traffic.
            let span = if nodes > 256 { nodes } else { nodes.min(80) } as u64;
            for case in 0..CASES {
                let mut t = HwDirTable::with_nodes(capacity, nodes);
                let row = t.push_row();
                let mut m = HwDirEntry::new(capacity);
                let mut scratch: Vec<NodeId> = Vec::new();
                let tag = format!("nodes={nodes} cap={capacity} case={case}");
                for _ in 0..60 {
                    let node = NodeId(rng.next_below(span) as u16);
                    match rng.next_below(10) {
                        // Record a reader: outcomes must agree exactly.
                        0..=5 => {
                            let got = t.row_mut(row).record_reader(node);
                            let want = m.record_reader(node);
                            assert_eq!(got, want, "{tag}");
                        }
                        // Remove: agreement on whether it was present.
                        6 | 7 => {
                            let got = t.row_mut(row).remove_ptr(node);
                            let want = m.remove_ptr(node);
                            assert_eq!(got, want, "{tag}");
                        }
                        // Drain into a reused buffer vs the model's
                        // fresh-Vec drain: same set, both left empty.
                        8 => {
                            scratch.clear();
                            t.row_mut(row).take_ptrs_into(&mut scratch);
                            assert_eq!(sorted(scratch.clone()), sorted(m.drain_ptrs()), "{tag}");
                            assert_eq!(t.row(row).ptr_count(), 0, "{tag}");
                        }
                        // Clear without observing.
                        _ => {
                            t.row_mut(row).clear_ptrs();
                            m.drain_ptrs();
                        }
                    }
                    // Full-state agreement after every operation.
                    assert_eq!(t.row(row).ptr_count(), m.ptr_count(), "{tag}");
                    assert_eq!(
                        sorted(t.row(row).ptrs_vec()),
                        sorted(m.ptrs().to_vec()),
                        "{tag}"
                    );
                    let probe = NodeId(rng.next_below(span) as u16);
                    assert_eq!(
                        t.row(row).contains_ptr(probe),
                        m.ptrs().contains(&probe),
                        "{tag} probe={probe:?}"
                    );
                    t.row(row)
                        .structural_invariants()
                        .unwrap_or_else(|e| panic!("{tag}: {e}"));
                }
            }
        }
    }
}

#[test]
fn sw_directory_matches_model_under_random_tapes() {
    let mut rng = SplitMix64::new(0x7002);
    for &nodes in &NODE_COUNTS {
        let span = nodes as u64;
        for case in 0..CASES {
            let mut d = SwDirectory::for_nodes(nodes);
            let mut m = SwDirModel::new();
            let mut scratch: Vec<NodeId> = Vec::new();
            let tag = format!("nodes={nodes} case={case}");
            for _ in 0..120 {
                let id = rng.next_below(6) as u32;
                let block = BlockAddr(u64::from(id));
                let node = NodeId(rng.next_below(span) as u16);
                match rng.next_below(12) {
                    0..=5 => {
                        let got = d.record_reader(id, node);
                        let want = m.record_reader(block, node);
                        assert_eq!(got, want, "{tag}");
                    }
                    6 => {
                        // Batch record: same count of new readers.
                        let batch = [node, NodeId(rng.next_below(span) as u16)];
                        let got = d.record_readers(id, &batch);
                        let want = m.record_readers(block, &batch);
                        assert_eq!(got, want, "{tag}");
                    }
                    7 | 8 => {
                        scratch.clear();
                        let got = d.drain_readers_into(id, &mut scratch);
                        let want = m.drain_readers(block);
                        assert_eq!(got, want.len(), "{tag}");
                        assert_eq!(sorted(scratch.clone()), sorted(want), "{tag}");
                        assert_eq!(d.reader_count(id), 0, "{tag}");
                    }
                    9 => {
                        assert_eq!(d.clear_readers(id), m.clear_readers(block), "{tag}");
                    }
                    _ => {
                        let got = d.remove_reader(id, node);
                        let want = m.remove_reader(block, node);
                        assert_eq!(got, want, "{tag}");
                    }
                }
                // Full-state agreement after every operation.
                assert_eq!(d.reader_count(id), m.readers(block).len(), "{tag}");
                assert_eq!(
                    sorted(d.readers_vec(id)),
                    sorted(m.readers(block).to_vec()),
                    "{tag}"
                );
                let probe = NodeId(rng.next_below(span) as u16);
                assert_eq!(
                    d.contains_reader(id, probe),
                    m.readers(block).contains(&probe),
                    "{tag}"
                );
                assert_eq!(d.live_entries(), m.live_entries(), "{tag}");
                d.structural_invariants(id)
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
            }
            // The operation counters bill identically: the id-keyed
            // table must not make software traps look cheaper (or
            // dearer) than the reference hash-map implementation did.
            assert_eq!(d.stats(), m.stats(), "{tag}");
        }
    }
}

/// The mask-regime bulk drain (`take_ptr_mask` → `record_reader_mask`)
/// must be observationally identical — contents *and* stat billing —
/// to feeding the same pointers through the per-node loop.
#[test]
fn mask_bulk_transfer_matches_per_node_loop() {
    let mut rng = SplitMix64::new(0x7003);
    for case in 0..CASES {
        let mut fast = SwDirectory::for_nodes(64);
        let mut slow = SwDirectory::for_nodes(64);
        let mut m = SwDirModel::new();
        for round in 0..8 {
            let id = rng.next_below(3) as u32;
            let block = BlockAddr(u64::from(id));
            let mask = rng.next_u64() & rng.next_u64(); // sparse-ish
            let stored = fast.record_reader_mask(id, mask);
            let mut stored_slow = 0usize;
            let mut stored_model = 0usize;
            for bit in 0..64u16 {
                if mask & (1u64 << bit) != 0 {
                    stored_slow += usize::from(slow.record_reader(id, NodeId(bit)));
                    stored_model += usize::from(m.record_reader(block, NodeId(bit)));
                }
            }
            assert_eq!(stored, stored_slow, "case {case} round {round}");
            assert_eq!(stored, stored_model, "case {case} round {round}");
            assert_eq!(
                fast.readers_vec(id),
                sorted(slow.readers_vec(id)),
                "case {case} round {round}"
            );
            assert_eq!(fast.stats(), slow.stats(), "case {case} round {round}");
            assert_eq!(fast.stats(), m.stats(), "case {case} round {round}");
            // Occasionally drain so empty→nonempty alloc billing gets
            // re-exercised on recycled records.
            if rng.next_below(3) == 0 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                assert_eq!(
                    fast.drain_readers_into(id, &mut a),
                    slow.drain_readers_into(id, &mut b)
                );
                m.drain_readers(block);
                assert_eq!(sorted(a), sorted(b), "case {case} round {round}");
            }
        }
    }
}
