//! The software-extended directory: what the protocol extension
//! software maintains in the home node's ordinary memory.
//!
//! The flexible coherence interface (paper §4.1) gives handlers a
//! free-listing memory manager and hash-table administration; the
//! hand-tuned assembly version replaces both with a special-purpose
//! scheme. The *cost* of those operations is charged by the protocol
//! layer's cost model; this module provides the functional behaviour
//! plus operation counts so the cost model has something to bill.

use std::collections::hash_map::Entry;

use limitless_sim::{BlockAddr, FxHashMap, NodeId};

/// The software extension record for one overflowed block: the
/// pointers that did not fit in hardware.
///
/// The paper's memory-usage optimization for small worker sets
/// (§5: `Dir_nH_1S_{NB,LACK}` beating `Dir_nH_1S_{NB}` at size 4) is
/// modelled by the free list handing out small records first; the
/// functional content is just the pointer set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwDirEntry {
    readers: Vec<NodeId>,
}

impl SwDirEntry {
    /// Creates an empty extension record.
    pub fn new() -> Self {
        SwDirEntry::default()
    }

    /// Records a reader; returns `true` if it was new.
    pub fn record_reader(&mut self, node: NodeId) -> bool {
        if self.readers.contains(&node) {
            false
        } else {
            self.readers.push(node);
            true
        }
    }

    /// The recorded readers.
    pub fn readers(&self) -> &[NodeId] {
        &self.readers
    }

    /// Removes all readers, returning them (for invalidation).
    pub fn drain(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.readers)
    }

    /// Number of recorded readers.
    pub fn len(&self) -> usize {
        self.readers.len()
    }

    /// Whether no readers are recorded.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty()
    }
}

/// Operation counters for the software directory (inputs to the
/// handler cost model and to memory-overhead accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwDirStats {
    /// Hash-table lookups performed.
    pub lookups: u64,
    /// Extension records allocated from the free list.
    pub allocs: u64,
    /// Extension records returned to the free list.
    pub frees: u64,
    /// Pointers stored into extension records.
    pub ptrs_stored: u64,
    /// High-water mark of live extension records.
    pub peak_entries: u64,
}

/// The per-node software directory: a hash table of extension records
/// with free-list accounting.
///
/// # Examples
///
/// ```
/// use limitless_dir::SwDirectory;
/// use limitless_sim::{BlockAddr, NodeId};
///
/// let mut d = SwDirectory::new();
/// d.record_reader(BlockAddr(7), NodeId(3));
/// assert_eq!(d.readers(BlockAddr(7)), &[NodeId(3)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SwDirectory {
    table: FxHashMap<BlockAddr, SwDirEntry>,
    free_list: Vec<SwDirEntry>,
    stats: SwDirStats,
}

impl SwDirectory {
    /// Creates an empty software directory.
    pub fn new() -> Self {
        SwDirectory::default()
    }

    /// Looks up the extension record for `block`, if one exists.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<&SwDirEntry> {
        self.stats.lookups += 1;
        self.table.get(&block)
    }

    /// Whether an extension record exists for `block` (uncounted probe
    /// for assertions and stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.table.contains_key(&block)
    }

    /// Records a reader for `block`, allocating an extension record
    /// if needed. Returns `true` if the reader was newly recorded.
    pub fn record_reader(&mut self, block: BlockAddr, node: NodeId) -> bool {
        self.stats.lookups += 1;
        let entry = match self.table.entry(block) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                self.stats.allocs += 1;
                let rec = self.free_list.pop().unwrap_or_default();
                let r = v.insert(rec);
                r
            }
        };
        let new = entry.record_reader(node);
        if new {
            self.stats.ptrs_stored += 1;
        }
        self.stats.peak_entries = self.stats.peak_entries.max(self.table.len() as u64);
        new
    }

    /// Records many readers at once (the overflow handler emptying the
    /// hardware pointers into software). Returns how many were new.
    pub fn record_readers(&mut self, block: BlockAddr, nodes: &[NodeId]) -> usize {
        nodes
            .iter()
            .filter(|&&n| self.record_reader(block, n))
            .count()
    }

    /// Removes and returns all readers for `block`, freeing its record
    /// back to the free list. Returns an empty vector if no record
    /// exists.
    pub fn drain_readers(&mut self, block: BlockAddr) -> Vec<NodeId> {
        self.stats.lookups += 1;
        match self.table.remove(&block) {
            Some(mut rec) => {
                let readers = rec.drain();
                self.stats.frees += 1;
                self.free_list.push(rec);
                readers
            }
            None => Vec::new(),
        }
    }

    /// Removes all readers for `block` without returning them, freeing
    /// its record back to the free list *with its reader-array
    /// capacity intact* (unlike [`SwDirectory::drain_readers`], which
    /// moves the array out). This is the zero-allocation path for
    /// handlers that invalidate from a separately computed sharer list.
    /// Returns how many readers were dropped.
    pub fn clear_readers(&mut self, block: BlockAddr) -> usize {
        self.stats.lookups += 1;
        match self.table.remove(&block) {
            Some(mut rec) => {
                let n = rec.readers.len();
                rec.readers.clear();
                self.stats.frees += 1;
                self.free_list.push(rec);
                n
            }
            None => 0,
        }
    }

    /// The readers recorded for `block` (empty slice if none).
    pub fn readers(&self, block: BlockAddr) -> &[NodeId] {
        self.table.get(&block).map_or(&[], |e| e.readers())
    }

    /// Removes one reader pointer from `block`'s record (replacement
    /// hint). Frees the record if it becomes empty. Returns whether
    /// the pointer was present.
    pub fn remove_reader(&mut self, block: BlockAddr, node: NodeId) -> bool {
        self.stats.lookups += 1;
        if let Some(rec) = self.table.get_mut(&block) {
            if let Some(i) = rec.readers.iter().position(|&p| p == node) {
                rec.readers.swap_remove(i);
                if rec.is_empty() {
                    let rec = self.table.remove(&block).expect("record vanished");
                    self.stats.frees += 1;
                    self.free_list.push(rec);
                }
                return true;
            }
        }
        false
    }

    /// Number of live extension records.
    pub fn live_entries(&self) -> usize {
        self.table.len()
    }

    /// Extension-record invariants for `block`, checked by the
    /// coherence sanitizer: no duplicate reader pointers, and no
    /// record left allocated but empty (empty records are returned to
    /// the free list on the last removal).
    pub fn structural_invariants(&self, block: BlockAddr) -> Result<(), String> {
        let Some(rec) = self.table.get(&block) else {
            return Ok(());
        };
        if rec.is_empty() {
            return Err("empty software record left allocated".to_string());
        }
        for (i, &p) in rec.readers.iter().enumerate() {
            if rec.readers[..i].contains(&p) {
                return Err(format!("duplicate software reader pointer {p}"));
            }
        }
        Ok(())
    }

    /// Operation counters.
    pub fn stats(&self) -> SwDirStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut d = SwDirectory::new();
        assert!(d.record_reader(BlockAddr(1), NodeId(5)));
        assert!(!d.record_reader(BlockAddr(1), NodeId(5)));
        assert!(d.record_reader(BlockAddr(1), NodeId(6)));
        assert_eq!(d.readers(BlockAddr(1)), &[NodeId(5), NodeId(6)]);
        assert_eq!(d.readers(BlockAddr(2)), &[]);
    }

    #[test]
    fn drain_frees_record() {
        let mut d = SwDirectory::new();
        d.record_reader(BlockAddr(1), NodeId(5));
        d.record_reader(BlockAddr(1), NodeId(6));
        let readers = d.drain_readers(BlockAddr(1));
        assert_eq!(readers, vec![NodeId(5), NodeId(6)]);
        assert_eq!(d.live_entries(), 0);
        assert_eq!(d.stats().frees, 1);
        assert!(d.drain_readers(BlockAddr(1)).is_empty());
    }

    #[test]
    fn free_list_recycles_records() {
        let mut d = SwDirectory::new();
        d.record_reader(BlockAddr(1), NodeId(5));
        d.drain_readers(BlockAddr(1));
        d.record_reader(BlockAddr(2), NodeId(6));
        let s = d.stats();
        // Second record came off the free list but still counts as an
        // allocation event for the cost model.
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn batch_record_counts_new_only() {
        let mut d = SwDirectory::new();
        d.record_reader(BlockAddr(1), NodeId(2));
        let added = d.record_readers(BlockAddr(1), &[NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(added, 2);
        assert_eq!(d.readers(BlockAddr(1)).len(), 3);
    }

    #[test]
    fn clear_readers_keeps_recycled_capacity() {
        let mut d = SwDirectory::new();
        for n in 0..8 {
            d.record_reader(BlockAddr(1), NodeId(n));
        }
        assert_eq!(d.clear_readers(BlockAddr(1)), 8);
        assert_eq!(d.live_entries(), 0);
        assert_eq!(d.stats().frees, 1);
        // The recycled record still owns its grown reader array, so
        // re-recording up to the old high-water mark allocates nothing.
        d.record_reader(BlockAddr(2), NodeId(0));
        assert_eq!(d.readers(BlockAddr(2)), &[NodeId(0)]);
        assert_eq!(d.clear_readers(BlockAddr(3)), 0);
    }

    #[test]
    fn remove_reader_frees_empty_record() {
        let mut d = SwDirectory::new();
        d.record_reader(BlockAddr(1), NodeId(2));
        assert!(d.remove_reader(BlockAddr(1), NodeId(2)));
        assert_eq!(d.live_entries(), 0);
        assert!(!d.remove_reader(BlockAddr(1), NodeId(2)));
    }

    #[test]
    fn peak_entries_tracks_high_water() {
        let mut d = SwDirectory::new();
        for b in 0..10 {
            d.record_reader(BlockAddr(b), NodeId(0));
        }
        for b in 0..10 {
            d.drain_readers(BlockAddr(b));
        }
        assert_eq!(d.stats().peak_entries, 10);
        assert_eq!(d.live_entries(), 0);
    }

    #[test]
    fn contains_does_not_bill_lookup() {
        let mut d = SwDirectory::new();
        d.record_reader(BlockAddr(1), NodeId(0));
        let before = d.stats().lookups;
        assert!(d.contains(BlockAddr(1)));
        assert!(!d.contains(BlockAddr(9)));
        assert_eq!(d.stats().lookups, before);
    }
}
