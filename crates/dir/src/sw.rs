//! The software-extended directory: what the protocol extension
//! software maintains in the home node's ordinary memory.
//!
//! The flexible coherence interface (paper §4.1) gives handlers a
//! free-listing memory manager and hash-table administration; the
//! hand-tuned assembly version replaces both with a special-purpose
//! scheme. The *cost* of those operations is charged by the protocol
//! layer's cost model; this module provides the functional behaviour
//! plus operation counts so the cost model has something to bill.
//!
//! Two implementations live here:
//!
//! * [`SwDirectory`] — production storage, keyed by the **dense `u32`
//!   block ids** the per-home interner hands out. Because the ids are
//!   dense and unique, the "hash table" is an open-addressed table
//!   whose hash is the identity: slot = id, probe length exactly 1,
//!   growth by plain extension with **no rehash** (a stored id's slot
//!   never moves — the degenerate limit of the growable node-cache
//!   scheme in SNIPPETS.md snippet 2). On machines of <= 64 nodes a
//!   record is a single `u64` reader bitmask (the mask regime); on
//!   larger machines records are recycled `ceil(nodes / 64)`-word
//!   presence bitmasks off a free list (the record regime — the mask
//!   regime widened to arbitrary node counts, so membership is one
//!   bit test and draining walks 64 presence bits per step).
//! * [`SwDirModel`] — the original `FxHashMap<BlockAddr, SwDirEntry>`
//!   implementation, kept as the reference model the production table
//!   is differentially tested against (`tests/prop_dirhot.rs`).

use std::collections::hash_map::Entry;

use limitless_sim::{BlockAddr, FxHashMap, NodeId};

/// The software extension record for one overflowed block: the
/// pointers that did not fit in hardware.
///
/// The paper's memory-usage optimization for small worker sets
/// (§5: `Dir_nH_1S_{NB,LACK}` beating `Dir_nH_1S_{NB}` at size 4) is
/// modelled by the free list handing out small records first; the
/// functional content is just the pointer set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwDirEntry {
    readers: Vec<NodeId>,
}

impl SwDirEntry {
    /// Creates an empty extension record.
    pub fn new() -> Self {
        SwDirEntry::default()
    }

    /// Records a reader; returns `true` if it was new.
    pub fn record_reader(&mut self, node: NodeId) -> bool {
        if self.readers.contains(&node) {
            false
        } else {
            self.readers.push(node);
            true
        }
    }

    /// The recorded readers.
    pub fn readers(&self) -> &[NodeId] {
        &self.readers
    }

    /// Removes all readers, returning them (for invalidation).
    pub fn drain(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.readers)
    }

    /// Number of recorded readers.
    pub fn len(&self) -> usize {
        self.readers.len()
    }

    /// Whether no readers are recorded.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty()
    }
}

/// Operation counters for the software directory (inputs to the
/// handler cost model and to memory-overhead accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwDirStats {
    /// Hash-table lookups performed.
    pub lookups: u64,
    /// Extension records allocated from the free list.
    pub allocs: u64,
    /// Extension records returned to the free list.
    pub frees: u64,
    /// Pointers stored into extension records.
    pub ptrs_stored: u64,
    /// High-water mark of live extension records.
    pub peak_entries: u64,
}

/// Sentinel head index: no extension record for this block id.
const NO_RECORD: u32 = u32::MAX;

/// The per-home software directory, keyed by dense `u32` block ids.
///
/// Slot `id` of the table belongs to block id `id` forever (identity
/// hash, probe length 1); growing the table extends the slot vector
/// without moving anything. See the module docs for the two record
/// regimes. The operation counters ([`SwDirStats`]) bill exactly like
/// the reference [`SwDirModel`]: one lookup per recorded/queried
/// pointer on the mutating paths, an "allocation" whenever an empty
/// record goes live (even when its storage is recycled), a "free"
/// whenever a live record empties.
///
/// # Examples
///
/// ```
/// use limitless_dir::SwDirectory;
/// use limitless_sim::NodeId;
///
/// let mut d = SwDirectory::new();
/// d.record_reader(7, NodeId(3));
/// assert_eq!(d.readers_vec(7), vec![NodeId(3)]);
/// assert!(d.contains_reader(7, NodeId(3)));
/// ```
#[derive(Clone, Debug)]
pub struct SwDirectory {
    /// Mask regime (<= 64 nodes): one reader bitmask per block id.
    mask_regime: bool,
    /// Mask regime storage; `masks[id] == 0` means no record.
    masks: Vec<u64>,
    /// Record regime: presence words per record (`ceil(nodes / 64)`).
    words: usize,
    /// Record regime: per-id index into `records`, [`NO_RECORD`] when
    /// absent.
    heads: Vec<u32>,
    /// Record regime storage: `words` presence-bit `u64`s per record
    /// (readers iterate in ascending node order).
    records: Vec<Vec<u64>>,
    /// Record regime: live reader count per record (spares multi-word
    /// popcounts on the hot paths).
    counts: Vec<u32>,
    /// Recycled `records` slots (word storage retained, zeroed).
    free: Vec<u32>,
    /// Live (non-empty) record count.
    live: usize,
    stats: SwDirStats,
}

impl Default for SwDirectory {
    fn default() -> Self {
        SwDirectory::new()
    }
}

impl SwDirectory {
    /// Creates an empty software directory for a paper-scale machine
    /// (<= 64 nodes, mask regime). Equivalent to `for_nodes(64)`.
    pub fn new() -> Self {
        SwDirectory::for_nodes(64)
    }

    /// Creates an empty software directory for a `nodes`-node machine;
    /// the node count picks the record regime (see the module docs).
    pub fn for_nodes(nodes: usize) -> Self {
        let mask_regime = nodes <= 64;
        SwDirectory {
            mask_regime,
            masks: Vec::new(),
            words: if mask_regime { 0 } else { nodes.div_ceil(64) },
            heads: Vec::new(),
            records: Vec::new(),
            counts: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: SwDirStats::default(),
        }
    }

    /// Grows the slot column to cover `id`. New slots are empty; a
    /// slot, once assigned, never moves (no rehash on growth).
    #[inline]
    fn ensure(&mut self, id: u32) {
        let want = id as usize + 1;
        if self.mask_regime {
            if self.masks.len() < want {
                self.masks.resize(want, 0);
            }
        } else if self.heads.len() < want {
            self.heads.resize(want, NO_RECORD);
        }
    }

    /// Bumps the live-record count and its high-water mark (a record
    /// just went empty → non-empty, an "allocation" to the cost model
    /// even when the storage is recycled).
    #[inline]
    fn note_alloc(&mut self) {
        self.stats.allocs += 1;
        self.live += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(self.live as u64);
    }

    /// Whether an extension record exists for `id` (uncounted probe
    /// for assertions and stats).
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        if self.mask_regime {
            self.masks.get(id as usize).is_some_and(|&m| m != 0)
        } else {
            self.heads.get(id as usize).is_some_and(|&h| h != NO_RECORD)
        }
    }

    /// Records a reader for `id`, allocating an extension record if
    /// needed. Returns `true` if the reader was newly recorded.
    pub fn record_reader(&mut self, id: u32, node: NodeId) -> bool {
        self.stats.lookups += 1;
        self.ensure(id);
        if self.mask_regime {
            debug_assert!(u32::from(node.0) < 64, "node {node} outside mask regime");
            let m = &mut self.masks[id as usize];
            let bit = 1u64 << (node.0 & 63);
            let was = *m;
            *m |= bit;
            if was == 0 {
                self.note_alloc();
            }
            let new = was & bit == 0;
            self.stats.ptrs_stored += u64::from(new);
            new
        } else {
            debug_assert!(
                usize::from(node.0 >> 6) < self.words,
                "node {node} outside the record regime's presence words"
            );
            let slot = self.record_slot(id);
            let w = &mut self.records[slot][usize::from(node.0 >> 6)];
            let bit = 1u64 << (node.0 & 63);
            if *w & bit != 0 {
                false
            } else {
                *w |= bit;
                self.counts[slot] += 1;
                self.stats.ptrs_stored += 1;
                true
            }
        }
    }

    /// Record-regime helper: the `records` index for `id`, allocating
    /// (recycled first) when absent. Recycled word storage arrives
    /// zeroed; fresh records are zero-filled to `words`.
    fn record_slot(&mut self, id: u32) -> usize {
        let h = self.heads[id as usize];
        if h != NO_RECORD {
            return h as usize;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.records.len()).expect("2^32 extension records");
                self.records.push(vec![0; self.words]);
                self.counts.push(0);
                s
            }
        };
        self.heads[id as usize] = slot;
        self.note_alloc();
        slot as usize
    }

    /// Records many readers at once (the overflow handler emptying the
    /// hardware pointers into software). Returns how many were new.
    pub fn record_readers(&mut self, id: u32, nodes: &[NodeId]) -> usize {
        nodes.iter().filter(|&&n| self.record_reader(id, n)).count()
    }

    /// Mask-regime fast path for the overflow handler: ORs a whole
    /// presence bitmask (from [`HwEntryMut::take_ptr_mask`]) into the
    /// record in one operation, billing exactly like the equivalent
    /// per-node [`SwDirectory::record_readers`] loop. Returns how many
    /// readers were new.
    ///
    /// [`HwEntryMut::take_ptr_mask`]: crate::HwEntryMut::take_ptr_mask
    ///
    /// # Panics
    ///
    /// Debug-panics when called in the record regime (> 64 nodes; the
    /// hardware table never produces a mask there).
    pub fn record_reader_mask(&mut self, id: u32, mask: u64) -> usize {
        debug_assert!(self.mask_regime, "reader bitmasks need the mask regime");
        self.stats.lookups += u64::from(mask.count_ones());
        if mask == 0 {
            return 0;
        }
        self.ensure(id);
        let m = &mut self.masks[id as usize];
        let new = mask & !*m;
        let was = *m;
        *m |= mask;
        if was == 0 {
            self.note_alloc();
        }
        self.stats.ptrs_stored += u64::from(new.count_ones());
        new.count_ones() as usize
    }

    /// Record-regime fast path for the overflow handler: ORs a slice
    /// of presence words (from [`HwEntryMut::take_ptr_words_into`];
    /// bit `b` of word `w` is node `w * 64 + b`) into the record 64
    /// readers per step, billing exactly like the equivalent per-node
    /// [`SwDirectory::record_readers`] loop. Returns how many readers
    /// were new.
    ///
    /// [`HwEntryMut::take_ptr_words_into`]: crate::HwEntryMut::take_ptr_words_into
    ///
    /// # Panics
    ///
    /// Debug-panics when called in the mask regime (<= 64 nodes; use
    /// [`SwDirectory::record_reader_mask`] there) or when `words`
    /// exceeds the record width.
    pub fn record_reader_words(&mut self, id: u32, words: &[u64]) -> usize {
        debug_assert!(!self.mask_regime, "presence words need the record regime");
        debug_assert!(
            words.len() <= self.words,
            "presence words wider than the machine"
        );
        let total: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
        self.stats.lookups += total;
        if total == 0 {
            return 0;
        }
        self.ensure(id);
        let slot = self.record_slot(id);
        let rec = &mut self.records[slot];
        let mut new = 0u32;
        for (dst, &src) in rec.iter_mut().zip(words) {
            let add = src & !*dst;
            *dst |= add;
            new += add.count_ones();
        }
        self.counts[slot] += new;
        self.stats.ptrs_stored += u64::from(new);
        new as usize
    }

    /// Removes all readers for `id`, appending them to `out` in
    /// ascending node order (both regimes walk presence bits, the
    /// record regime 64 per step) and freeing the record. Returns how
    /// many readers were removed.
    pub fn drain_readers_into(&mut self, id: u32, out: &mut Vec<NodeId>) -> usize {
        self.stats.lookups += 1;
        if self.mask_regime {
            let Some(m) = self.masks.get_mut(id as usize) else {
                return 0;
            };
            let mut m = std::mem::take(m);
            if m == 0 {
                return 0;
            }
            let n = m.count_ones() as usize;
            while m != 0 {
                out.push(NodeId(m.trailing_zeros() as u16));
                m &= m - 1;
            }
            self.stats.frees += 1;
            self.live -= 1;
            n
        } else {
            let Some(&h) = self.heads.get(id as usize) else {
                return 0;
            };
            if h == NO_RECORD {
                return 0;
            }
            self.heads[id as usize] = NO_RECORD;
            let rec = &mut self.records[h as usize];
            for (wi, w) in rec.iter_mut().enumerate() {
                let mut m = std::mem::take(w);
                while m != 0 {
                    out.push(NodeId(((wi as u32) * 64 + m.trailing_zeros()) as u16));
                    m &= m - 1;
                }
            }
            let n = self.counts[h as usize] as usize;
            self.counts[h as usize] = 0;
            self.free.push(h);
            self.stats.frees += 1;
            self.live -= 1;
            n
        }
    }

    /// Removes all readers for `id` without returning them, freeing
    /// the record (record regime: its zeroed word storage goes back to
    /// the free list). This is the zero-allocation path for handlers
    /// that invalidate from a separately computed sharer list. Returns
    /// how many readers were dropped.
    pub fn clear_readers(&mut self, id: u32) -> usize {
        self.stats.lookups += 1;
        if self.mask_regime {
            let Some(m) = self.masks.get_mut(id as usize) else {
                return 0;
            };
            let m = std::mem::take(m);
            if m == 0 {
                return 0;
            }
            self.stats.frees += 1;
            self.live -= 1;
            m.count_ones() as usize
        } else {
            let Some(&h) = self.heads.get(id as usize) else {
                return 0;
            };
            if h == NO_RECORD {
                return 0;
            }
            self.heads[id as usize] = NO_RECORD;
            self.records[h as usize].fill(0);
            let n = self.counts[h as usize] as usize;
            self.counts[h as usize] = 0;
            self.free.push(h);
            self.stats.frees += 1;
            self.live -= 1;
            n
        }
    }

    /// Number of readers recorded for `id` (uncounted).
    #[inline]
    pub fn reader_count(&self, id: u32) -> usize {
        if self.mask_regime {
            self.masks
                .get(id as usize)
                .map_or(0, |m| m.count_ones() as usize)
        } else {
            match self.heads.get(id as usize) {
                Some(&h) if h != NO_RECORD => self.counts[h as usize] as usize,
                _ => 0,
            }
        }
    }

    /// Whether `node` is recorded as a reader of `id` (uncounted).
    #[inline]
    pub fn contains_reader(&self, id: u32, node: NodeId) -> bool {
        if self.mask_regime {
            u32::from(node.0) < 64
                && self
                    .masks
                    .get(id as usize)
                    .is_some_and(|&m| m & (1u64 << (node.0 & 63)) != 0)
        } else {
            match self.heads.get(id as usize) {
                Some(&h) if h != NO_RECORD => {
                    let w = usize::from(node.0 >> 6);
                    w < self.words && self.records[h as usize][w] & (1u64 << (node.0 & 63)) != 0
                }
                _ => false,
            }
        }
    }

    /// Appends the readers of `id` to `out` without removing them
    /// (ascending node order in both regimes; uncounted).
    #[inline]
    pub fn extend_readers(&self, id: u32, out: &mut Vec<NodeId>) {
        if self.mask_regime {
            let Some(&m) = self.masks.get(id as usize) else {
                return;
            };
            let mut m = m;
            while m != 0 {
                out.push(NodeId(m.trailing_zeros() as u16));
                m &= m - 1;
            }
        } else if let Some(&h) = self.heads.get(id as usize) {
            if h != NO_RECORD {
                for (wi, &w) in self.records[h as usize].iter().enumerate() {
                    let mut m = w;
                    while m != 0 {
                        out.push(NodeId(((wi as u32) * 64 + m.trailing_zeros()) as u16));
                        m &= m - 1;
                    }
                }
            }
        }
    }

    /// The readers of `id` as a fresh vector (sanitizer and test
    /// convenience).
    pub fn readers_vec(&self, id: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.extend_readers(id, &mut out);
        out
    }

    /// The reader bitmask of `id` under the mask regime (`None` in the
    /// record regime).
    #[inline]
    pub fn reader_mask(&self, id: u32) -> Option<u64> {
        if self.mask_regime {
            Some(self.masks.get(id as usize).copied().unwrap_or(0))
        } else {
            None
        }
    }

    /// Removes one reader pointer from `id`'s record (replacement
    /// hint). Frees the record if it becomes empty. Returns whether
    /// the pointer was present.
    pub fn remove_reader(&mut self, id: u32, node: NodeId) -> bool {
        self.stats.lookups += 1;
        if self.mask_regime {
            if u32::from(node.0) >= 64 {
                return false;
            }
            let Some(m) = self.masks.get_mut(id as usize) else {
                return false;
            };
            let bit = 1u64 << (node.0 & 63);
            if *m & bit == 0 {
                return false;
            }
            *m &= !bit;
            if *m == 0 {
                self.stats.frees += 1;
                self.live -= 1;
            }
            true
        } else {
            let Some(&h) = self.heads.get(id as usize) else {
                return false;
            };
            if h == NO_RECORD {
                return false;
            }
            let w = usize::from(node.0 >> 6);
            if w >= self.words {
                return false;
            }
            let word = &mut self.records[h as usize][w];
            let bit = 1u64 << (node.0 & 63);
            if *word & bit == 0 {
                return false;
            }
            *word &= !bit;
            self.counts[h as usize] -= 1;
            if self.counts[h as usize] == 0 {
                self.heads[id as usize] = NO_RECORD;
                self.free.push(h);
                self.stats.frees += 1;
                self.live -= 1;
            }
            true
        }
    }

    /// Number of live extension records.
    pub fn live_entries(&self) -> usize {
        self.live
    }

    /// Empties the directory while keeping the regime choice and the
    /// slot/record storage capacity — the machine-reuse reset path.
    /// Afterwards the directory behaves exactly like a freshly
    /// constructed one (counters restart at zero; record-regime word
    /// storage is recycled zeroed).
    pub fn clear(&mut self) {
        self.masks.clear();
        self.heads.clear();
        self.free.clear();
        for (i, rec) in self.records.iter_mut().enumerate() {
            rec.fill(0);
            self.counts[i] = 0;
            self.free.push(i as u32);
        }
        self.live = 0;
        self.stats = SwDirStats::default();
    }

    /// Extension-record invariants for `id`, checked by the coherence
    /// sanitizer: no record left allocated but empty, and the cached
    /// reader count matching the presence bits (duplicates are
    /// unrepresentable in both regimes, and empty masks *are* "no
    /// record" under the mask regime, so only the record regime can
    /// fail).
    pub fn structural_invariants(&self, id: u32) -> Result<(), String> {
        if self.mask_regime {
            return Ok(());
        }
        let Some(&h) = self.heads.get(id as usize) else {
            return Ok(());
        };
        if h == NO_RECORD {
            return Ok(());
        }
        let count = self.counts[h as usize];
        if count == 0 {
            return Err("empty software record left allocated".to_string());
        }
        let popcount: u32 = self.records[h as usize]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        if popcount != count {
            return Err(format!(
                "software record counts {count} readers but stores {popcount}"
            ));
        }
        Ok(())
    }

    /// Operation counters.
    pub fn stats(&self) -> SwDirStats {
        self.stats
    }
}

/// The original hash-table software directory, kept as the reference
/// model for differential tests of [`SwDirectory`]: an
/// `FxHashMap<BlockAddr, SwDirEntry>` with free-list accounting.
#[derive(Clone, Debug, Default)]
pub struct SwDirModel {
    table: FxHashMap<BlockAddr, SwDirEntry>,
    free_list: Vec<SwDirEntry>,
    stats: SwDirStats,
}

impl SwDirModel {
    /// Creates an empty software directory.
    pub fn new() -> Self {
        SwDirModel::default()
    }

    /// Looks up the extension record for `block`, if one exists.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<&SwDirEntry> {
        self.stats.lookups += 1;
        self.table.get(&block)
    }

    /// Whether an extension record exists for `block` (uncounted probe
    /// for assertions and stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.table.contains_key(&block)
    }

    /// Records a reader for `block`, allocating an extension record
    /// if needed. Returns `true` if the reader was newly recorded.
    pub fn record_reader(&mut self, block: BlockAddr, node: NodeId) -> bool {
        self.stats.lookups += 1;
        let entry = match self.table.entry(block) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                self.stats.allocs += 1;
                let rec = self.free_list.pop().unwrap_or_default();
                v.insert(rec)
            }
        };
        let new = entry.record_reader(node);
        if new {
            self.stats.ptrs_stored += 1;
        }
        self.stats.peak_entries = self.stats.peak_entries.max(self.table.len() as u64);
        new
    }

    /// Records many readers at once. Returns how many were new.
    pub fn record_readers(&mut self, block: BlockAddr, nodes: &[NodeId]) -> usize {
        nodes
            .iter()
            .filter(|&&n| self.record_reader(block, n))
            .count()
    }

    /// Removes and returns all readers for `block`, freeing its record
    /// back to the free list. Returns an empty vector if no record
    /// exists.
    pub fn drain_readers(&mut self, block: BlockAddr) -> Vec<NodeId> {
        self.stats.lookups += 1;
        match self.table.remove(&block) {
            Some(mut rec) => {
                let readers = rec.drain();
                self.stats.frees += 1;
                self.free_list.push(rec);
                readers
            }
            None => Vec::new(),
        }
    }

    /// Removes all readers for `block` without returning them, freeing
    /// its record with capacity intact. Returns how many were dropped.
    pub fn clear_readers(&mut self, block: BlockAddr) -> usize {
        self.stats.lookups += 1;
        match self.table.remove(&block) {
            Some(mut rec) => {
                let n = rec.readers.len();
                rec.readers.clear();
                self.stats.frees += 1;
                self.free_list.push(rec);
                n
            }
            None => 0,
        }
    }

    /// The readers recorded for `block` (empty slice if none).
    pub fn readers(&self, block: BlockAddr) -> &[NodeId] {
        self.table.get(&block).map_or(&[], |e| e.readers())
    }

    /// Removes one reader pointer from `block`'s record. Frees the
    /// record if it becomes empty. Returns whether it was present.
    pub fn remove_reader(&mut self, block: BlockAddr, node: NodeId) -> bool {
        self.stats.lookups += 1;
        if let Some(rec) = self.table.get_mut(&block) {
            if let Some(i) = rec.readers.iter().position(|&p| p == node) {
                rec.readers.swap_remove(i);
                if rec.is_empty() {
                    let rec = self.table.remove(&block).expect("record vanished");
                    self.stats.frees += 1;
                    self.free_list.push(rec);
                }
                return true;
            }
        }
        false
    }

    /// Number of live extension records.
    pub fn live_entries(&self) -> usize {
        self.table.len()
    }

    /// Extension-record invariants for `block`: no duplicate reader
    /// pointers, no record left allocated but empty.
    pub fn structural_invariants(&self, block: BlockAddr) -> Result<(), String> {
        let Some(rec) = self.table.get(&block) else {
            return Ok(());
        };
        if rec.is_empty() {
            return Err("empty software record left allocated".to_string());
        }
        for (i, &p) in rec.readers.iter().enumerate() {
            if rec.readers[..i].contains(&p) {
                return Err(format!("duplicate software reader pointer {p}"));
            }
        }
        Ok(())
    }

    /// Operation counters.
    pub fn stats(&self) -> SwDirStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a test body against both record regimes (mask at 64
    /// nodes, record vectors at 256). NodeIds must stay < 64.
    fn both_regimes(f: impl Fn(&mut SwDirectory)) {
        for nodes in [64usize, 256] {
            let mut d = SwDirectory::for_nodes(nodes);
            f(&mut d);
        }
    }

    #[test]
    fn regime_selection_holds_at_the_scale_boundaries() {
        // 64 nodes is the last mask-regime machine; 65 tips into
        // record vectors, and the word count tracks ceil(nodes / 64)
        // exactly across the 255..=1024 ladder.
        assert!(SwDirectory::for_nodes(64).mask_regime);
        for (nodes, want) in [
            (65, 2),
            (255, 4),
            (256, 4),
            (257, 5),
            (1023, 16),
            (1024, 16),
        ] {
            let d = SwDirectory::for_nodes(nodes);
            assert!(!d.mask_regime, "{nodes}");
            assert_eq!(d.words, want, "{nodes}");
        }
        // The last addressable node on odd-sized machines lives in a
        // partially-used top word and must round-trip.
        for nodes in [255usize, 257, 1023] {
            let mut d = SwDirectory::for_nodes(nodes);
            let last = NodeId((nodes - 1) as u16);
            assert!(d.record_reader(7, last), "{nodes}");
            assert!(d.contains_reader(7, last), "{nodes}");
            assert!(!d.contains_reader(7, NodeId::NONE), "{nodes}");
            assert_eq!(d.readers_vec(7), vec![last], "{nodes}");
            assert!(d.remove_reader(7, last), "{nodes}");
            assert_eq!(d.live_entries(), 0, "{nodes}");
            d.structural_invariants(7).unwrap();
        }
    }

    #[test]
    fn record_and_read_back() {
        both_regimes(|d| {
            assert!(d.record_reader(1, NodeId(5)));
            assert!(!d.record_reader(1, NodeId(5)));
            assert!(d.record_reader(1, NodeId(6)));
            assert_eq!(d.readers_vec(1), vec![NodeId(5), NodeId(6)]);
            assert_eq!(d.reader_count(1), 2);
            assert!(d.contains_reader(1, NodeId(5)));
            assert!(!d.contains_reader(1, NodeId(7)));
            assert_eq!(d.readers_vec(2), Vec::new());
        });
    }

    #[test]
    fn drain_frees_record() {
        both_regimes(|d| {
            d.record_reader(1, NodeId(5));
            d.record_reader(1, NodeId(6));
            let mut readers = Vec::new();
            assert_eq!(d.drain_readers_into(1, &mut readers), 2);
            assert_eq!(readers, vec![NodeId(5), NodeId(6)]);
            assert_eq!(d.live_entries(), 0);
            assert_eq!(d.stats().frees, 1);
            readers.clear();
            assert_eq!(d.drain_readers_into(1, &mut readers), 0);
            assert!(readers.is_empty());
        });
    }

    #[test]
    fn free_list_recycles_records() {
        both_regimes(|d| {
            d.record_reader(1, NodeId(5));
            let mut scratch = Vec::new();
            d.drain_readers_into(1, &mut scratch);
            d.record_reader(2, NodeId(6));
            let s = d.stats();
            // Second record came off the free list but still counts as
            // an allocation event for the cost model.
            assert_eq!(s.allocs, 2);
            assert_eq!(s.frees, 1);
        });
    }

    #[test]
    fn batch_record_counts_new_only() {
        both_regimes(|d| {
            d.record_reader(1, NodeId(2));
            let added = d.record_readers(1, &[NodeId(2), NodeId(3), NodeId(4)]);
            assert_eq!(added, 2);
            assert_eq!(d.reader_count(1), 3);
        });
    }

    #[test]
    fn mask_record_bills_like_the_node_loop() {
        // The one-word drain path must leave stats indistinguishable
        // from the per-node loop it replaces.
        let mut a = SwDirectory::for_nodes(64);
        let mut b = SwDirectory::for_nodes(64);
        a.record_reader(1, NodeId(3));
        b.record_reader(1, NodeId(3));
        let nodes = [NodeId(3), NodeId(5), NodeId(60)];
        let mask = nodes.iter().fold(0u64, |m, n| m | 1 << n.0);
        assert_eq!(a.record_reader_mask(1, mask), b.record_readers(1, &nodes));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.readers_vec(1), b.readers_vec(1));
        // Empty masks are free: no lookup, no allocation.
        let before = a.stats();
        assert_eq!(a.record_reader_mask(2, 0), 0);
        assert_eq!(a.stats(), before);
        assert!(!a.contains(2));
    }

    #[test]
    fn word_record_bills_like_the_node_loop() {
        // The record-regime bulk path (presence words from the slab
        // hardware table) must leave stats and contents identical to
        // the per-node loop it replaces, across word boundaries.
        for nodes in [256usize, 1024] {
            let mut a = SwDirectory::for_nodes(nodes);
            let mut b = SwDirectory::for_nodes(nodes);
            a.record_reader(1, NodeId(70));
            b.record_reader(1, NodeId(70));
            let readers = [NodeId(3), NodeId(63), NodeId(64), NodeId(70), NodeId(200)];
            let mut words = vec![0u64; nodes.div_ceil(64)];
            for n in readers {
                words[usize::from(n.0 >> 6)] |= 1 << (n.0 & 63);
            }
            assert_eq!(
                a.record_reader_words(1, &words),
                b.record_readers(1, &readers)
            );
            assert_eq!(a.stats(), b.stats());
            let mut sorted_b = b.readers_vec(1);
            sorted_b.sort_unstable();
            assert_eq!(a.readers_vec(1), sorted_b);
            // All-zero word slices are free: no lookup, no allocation.
            let before = a.stats();
            assert_eq!(a.record_reader_words(2, &vec![0u64; words.len()]), 0);
            assert_eq!(a.stats(), before);
            assert!(!a.contains(2));
        }
    }

    #[test]
    fn record_regime_crosses_word_boundaries() {
        let mut d = SwDirectory::for_nodes(1024);
        let ids = [0u16, 63, 64, 65, 511, 512, 1023];
        for n in ids {
            assert!(d.record_reader(9, NodeId(n)));
            assert!(!d.record_reader(9, NodeId(n)));
        }
        assert_eq!(d.reader_count(9), ids.len());
        assert_eq!(
            d.readers_vec(9),
            ids.iter().map(|&n| NodeId(n)).collect::<Vec<_>>()
        );
        assert!(d.contains_reader(9, NodeId(1023)));
        assert!(!d.contains_reader(9, NodeId(1022)));
        assert!(d.remove_reader(9, NodeId(64)));
        assert!(d.contains_reader(9, NodeId(63)) && d.contains_reader(9, NodeId(65)));
        let mut out = Vec::new();
        assert_eq!(d.drain_readers_into(9, &mut out), ids.len() - 1);
        assert_eq!(d.live_entries(), 0);
        assert!(d.structural_invariants(9).is_ok());
    }

    #[test]
    fn clear_readers_keeps_recycled_capacity() {
        both_regimes(|d| {
            for n in 0..8 {
                d.record_reader(1, NodeId(n));
            }
            assert_eq!(d.clear_readers(1), 8);
            assert_eq!(d.live_entries(), 0);
            assert_eq!(d.stats().frees, 1);
            // The recycled record still owns its zeroed word storage,
            // so re-recording allocates nothing new (trivially true
            // under the mask regime).
            d.record_reader(2, NodeId(0));
            assert_eq!(d.readers_vec(2), vec![NodeId(0)]);
            assert_eq!(d.clear_readers(3), 0);
        });
    }

    #[test]
    fn remove_reader_frees_empty_record() {
        both_regimes(|d| {
            d.record_reader(1, NodeId(2));
            assert!(d.remove_reader(1, NodeId(2)));
            assert_eq!(d.live_entries(), 0);
            assert!(!d.remove_reader(1, NodeId(2)));
            assert!(!d.contains(1));
        });
    }

    #[test]
    fn peak_entries_tracks_high_water() {
        both_regimes(|d| {
            let mut scratch = Vec::new();
            for b in 0..10 {
                d.record_reader(b, NodeId(0));
            }
            for b in 0..10 {
                d.drain_readers_into(b, &mut scratch);
            }
            assert_eq!(d.stats().peak_entries, 10);
            assert_eq!(d.live_entries(), 0);
        });
    }

    #[test]
    fn contains_does_not_bill_lookup() {
        both_regimes(|d| {
            d.record_reader(1, NodeId(0));
            let before = d.stats().lookups;
            assert!(d.contains(1));
            assert!(!d.contains(9));
            assert!(d.contains_reader(1, NodeId(0)));
            assert_eq!(d.reader_count(1), 1);
            assert_eq!(d.stats().lookups, before);
        });
    }

    #[test]
    fn slots_are_identity_hashed_and_growth_never_rehashes() {
        let mut d = SwDirectory::for_nodes(64);
        d.record_reader(3, NodeId(1));
        // Growing the table (touching a much larger id) must leave the
        // earlier record exactly where it was.
        d.record_reader(4000, NodeId(2));
        assert_eq!(d.reader_mask(3), Some(1 << 1));
        assert_eq!(d.readers_vec(4000), vec![NodeId(2)]);
        assert_eq!(d.live_entries(), 2);
    }

    #[test]
    fn model_matches_old_behaviour() {
        // The reference model keeps the original BlockAddr-keyed API
        // and billing.
        let mut d = SwDirModel::new();
        assert!(d.record_reader(BlockAddr(1), NodeId(5)));
        assert!(!d.record_reader(BlockAddr(1), NodeId(5)));
        assert_eq!(d.readers(BlockAddr(1)), &[NodeId(5)]);
        assert_eq!(d.drain_readers(BlockAddr(1)), vec![NodeId(5)]);
        d.record_reader(BlockAddr(2), NodeId(6));
        let s = d.stats();
        assert_eq!((s.allocs, s.frees), (2, 1));
        assert!(d.lookup(BlockAddr(2)).is_some());
        assert!(d.structural_invariants(BlockAddr(2)).is_ok());
    }
}
