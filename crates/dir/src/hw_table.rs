//! Struct-of-arrays storage for hardware directory entries.
//!
//! [`super::hw::HwDirEntry`] models one entry as a fat struct with its
//! own heap-allocated pointer array — fine for reasoning, wasteful for
//! a table of hundreds of thousands of entries where a directory event
//! touches exactly one. `HwDirTable` stores the same state as parallel
//! columns: one `Vec` per field, flag bits packed into a `u8` bitset
//! column, `Option<NodeId>` fields collapsed to [`NodeId::NONE`]
//! sentinels.
//!
//! Pointer sets are stored in one of three regimes, picked once at
//! construction from `(nodes, capacity)` (DESIGN.md §12):
//!
//! * **Mask** (`nodes <= 64`) — the whole pointer set is a single
//!   `u64` presence bitmask over dense node ids. Membership, insert
//!   and remove are one bit operation each; the pointer count is a
//!   popcount; draining to the software extension is moving one word.
//!   This covers every paper-scale machine *including* the full-map
//!   reference protocol (whose capacity equals the node count).
//! * **Fixed8** (`nodes > 64`, `capacity <= 8`) — an 8-slot
//!   `NodeId`-array row ([`NodeId::NONE`]-filled past the live
//!   prefix, so membership is a branch-free 8-wide compare the
//!   compiler vectorizes) paired with a 64-bit *alias filter* mask
//!   over `node mod 64`: a clear filter bit proves absence without
//!   touching the slots.
//! * **Slab** (`nodes > 64`, `capacity > 8`) — a *word-parallel*
//!   presence-bit slab: each row owns `ceil(nodes / 64)` contiguous
//!   `u64` words (the mask regime widened to arbitrary node counts),
//!   plus the live-length column so the pointer count never needs a
//!   multi-word popcount. Membership, insert and remove are one bit
//!   operation after a word index; draining and invalidation fan-out
//!   walk 64 presence bits per step instead of scanning a
//!   stride-`capacity` `NodeId` array. This is what keeps full-map
//!   directories affordable at 1024 nodes: a row is 16 words
//!   (128 bytes) instead of 1024 two-byte slots, and the u64 chunks
//!   are the portable form of the SIMD membership scan (wide enough
//!   that `core::simd` gating buys nothing on current targets).
//!
//! [`HwEntryMut`] and [`HwEntryRef`] are row views exposing the same
//! method set in every regime, so the protocol engine and the
//! [`ExtensionHandler`](../../limitless_core) ecosystem are oblivious
//! to the layout; `hw.rs` is kept as the reference model the table is
//! differentially tested against. The one observable difference is
//! pointer *iteration order* (ascending node id under the mask and
//! slab regimes, insertion order under Fixed8) — the engine only
//! consumes pointer sets through sorted/deduplicated sharer lists,
//! membership tests and counts, so the order never reaches a
//! simulation output.

use limitless_sim::NodeId;

use crate::hw::{HwDirEntry, HwState, PtrStoreOutcome};

/// Bit positions in the packed per-entry flag column.
mod flag {
    /// The home node itself holds a read-only copy (one-bit pointer).
    pub const LOCAL_BIT: u8 = 1 << 0;
    /// The entry has overflowed into the software extension.
    pub const OVERFLOWED: u8 = 1 << 1;
    /// The pending transaction request is a write.
    pub const PENDING_IS_WRITE: u8 = 1 << 2;
}

/// Slot count of the fixed-width array regime.
const FIXED8: usize = 8;

/// Pointer-storage layout, fixed per table at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Regime {
    /// Pure presence bitmask over node ids (machines of <= 64 nodes).
    Mask,
    /// 8-slot inline array + alias-filter mask (> 64 nodes, <= 8 ptrs).
    Fixed8,
    /// Word-parallel presence-bit slab (> 64 nodes, > 8 ptrs: big
    /// full-map) — `ceil(nodes / 64)` `u64` words per row.
    Slab,
}

/// Column-oriented storage for every hardware directory entry of one
/// home node.
///
/// # Examples
///
/// ```
/// use limitless_dir::{HwDirTable, HwState, PtrStoreOutcome};
/// use limitless_sim::NodeId;
///
/// let mut t = HwDirTable::new(2);
/// let row = t.push_row();
/// let mut e = t.row_mut(row);
/// assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
/// assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Stored);
/// assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Overflow);
/// assert_eq!(t.row(row).state(), HwState::Uncached); // engine sets states
/// assert_eq!(t.row(row).ptrs_vec(), vec![NodeId(1), NodeId(2)]);
/// assert!(t.row(row).contains_ptr(NodeId(2)));
/// ```
#[derive(Clone, Debug)]
pub struct HwDirTable {
    /// Uniform pointer capacity per entry.
    capacity: usize,
    regime: Regime,
    /// `NodeId` slab stride: 8 (Fixed8); 0 otherwise.
    stride: usize,
    /// Presence words per row: `ceil(nodes / 64)` (Slab); 0 otherwise.
    words: usize,
    state: Vec<HwState>,
    flags: Vec<u8>,
    acks: Vec<u32>,
    /// Pending transaction requester ([`NodeId::NONE`] when absent).
    pending: Vec<NodeId>,
    /// Sole owner in `ReadWrite` ([`NodeId::NONE`] when absent).
    owner: Vec<NodeId>,
    /// Pointers in use per entry (Fixed8/Slab; stays 0 under Mask).
    len: Vec<u16>,
    /// Presence bitmask (Mask) or alias filter (Fixed8); unused (0)
    /// under Slab.
    mask: Vec<u64>,
    /// Flat pointer slab; entry `i` owns `slab[i*stride..][..stride]`.
    /// Empty under Mask and Slab.
    slab: Vec<NodeId>,
    /// Flat presence-word slab; entry `i` owns
    /// `bits[i*words..][..words]`. Empty outside the Slab regime.
    bits: Vec<u64>,
}

impl Default for HwDirTable {
    fn default() -> Self {
        HwDirTable::new(0)
    }
}

impl HwDirTable {
    /// Creates an empty table for a paper-scale machine (<= 64 nodes,
    /// mask regime) whose entries have `capacity` hardware pointers
    /// each. Equivalent to `with_nodes(capacity, 64)`.
    pub fn new(capacity: usize) -> Self {
        HwDirTable::with_nodes(capacity, 64)
    }

    /// Creates an empty table for a `nodes`-node machine whose entries
    /// have `capacity` hardware pointers each. The `(nodes, capacity)`
    /// pair picks the pointer-storage regime (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `u16::MAX` (pointer counts are
    /// stored as `u16`; machines are at most 65 536 nodes).
    pub fn with_nodes(capacity: usize, nodes: usize) -> Self {
        assert!(
            capacity <= usize::from(u16::MAX),
            "pointer capacity too large"
        );
        let regime = if nodes <= 64 {
            Regime::Mask
        } else if capacity <= FIXED8 {
            Regime::Fixed8
        } else {
            Regime::Slab
        };
        let stride = match regime {
            Regime::Fixed8 => FIXED8,
            Regime::Mask | Regime::Slab => 0,
        };
        let words = match regime {
            Regime::Slab => nodes.div_ceil(64),
            Regime::Mask | Regime::Fixed8 => 0,
        };
        HwDirTable {
            capacity,
            regime,
            stride,
            words,
            state: Vec::new(),
            flags: Vec::new(),
            acks: Vec::new(),
            pending: Vec::new(),
            owner: Vec::new(),
            len: Vec::new(),
            mask: Vec::new(),
            slab: Vec::new(),
            bits: Vec::new(),
        }
    }

    /// The uniform pointer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Removes every entry while keeping the regime parameters and the
    /// column capacity — the machine-reuse reset path. The table is
    /// indistinguishable from a freshly constructed one afterwards;
    /// rows are re-created by [`HwDirTable::push_row`] as blocks are
    /// re-interned.
    pub fn clear(&mut self) {
        self.state.clear();
        self.flags.clear();
        self.acks.clear();
        self.pending.clear();
        self.owner.clear();
        self.len.clear();
        self.mask.clear();
        self.slab.clear();
        self.bits.clear();
    }

    /// Appends a fresh `Uncached` entry, returning its row index.
    pub fn push_row(&mut self) -> u32 {
        let row = u32::try_from(self.state.len()).expect("more than 2^32 directory rows");
        self.state.push(HwState::Uncached);
        self.flags.push(0);
        self.acks.push(0);
        self.pending.push(NodeId::NONE);
        self.owner.push(NodeId::NONE);
        self.len.push(0);
        self.mask.push(0);
        self.slab
            .resize(self.slab.len() + self.stride, NodeId::NONE);
        self.bits.resize(self.bits.len() + self.words, 0);
        row
    }

    /// Read-only view of one entry.
    #[inline]
    pub fn row(&self, row: u32) -> HwEntryRef<'_> {
        HwEntryRef {
            t: self,
            i: row as usize,
        }
    }

    /// Mutable view of one entry.
    #[inline]
    pub fn row_mut(&mut self, row: u32) -> HwEntryMut<'_> {
        HwEntryMut {
            i: row as usize,
            t: self,
        }
    }

    /// Live pointer prefix of a Fixed8 row (empty under Mask and Slab,
    /// whose `stride` is 0).
    #[inline]
    fn ptr_slice(&self, i: usize) -> &[NodeId] {
        &self.slab[i * self.stride..][..usize::from(self.len[i])]
    }

    /// Presence words of a Slab row (empty outside the Slab regime,
    /// whose `words` is 0).
    #[inline]
    fn word_slice(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words..][..self.words]
    }
}

/// Iterator over one entry's hardware pointers: walks set bits in
/// ascending node-id order under the mask and slab regimes, the live
/// slab prefix in insertion order under Fixed8.
#[derive(Clone, Debug)]
pub enum PtrIter<'a> {
    /// Remaining presence bits (mask regime).
    Mask(u64),
    /// Live slab prefix (Fixed8 regime).
    Slice(std::slice::Iter<'a, NodeId>),
    /// Word-parallel presence bits (Slab regime): the current word's
    /// remaining bits plus the words not yet reached.
    Words {
        /// Presence words after the current one.
        rest: std::slice::Iter<'a, u64>,
        /// Bits remaining in the current word.
        cur: u64,
        /// Node id of the current word's bit 0.
        base: u32,
    },
}

impl<'a> PtrIter<'a> {
    /// Word-parallel iterator over a presence-word slice (bit `b` of
    /// word `w` is node `w * 64 + b`).
    fn over_words(words: &'a [u64]) -> Self {
        match words.split_first() {
            Some((&first, rest)) => PtrIter::Words {
                rest: rest.iter(),
                cur: first,
                base: 0,
            },
            None => PtrIter::Words {
                rest: [].iter(),
                cur: 0,
                base: 0,
            },
        }
    }
}

impl Iterator for PtrIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            PtrIter::Mask(m) => {
                if *m == 0 {
                    return None;
                }
                let bit = m.trailing_zeros();
                *m &= *m - 1;
                Some(NodeId(bit as u16))
            }
            PtrIter::Slice(it) => it.next().copied(),
            PtrIter::Words { rest, cur, base } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some(NodeId((*base + bit) as u16));
                }
                *cur = *rest.next()?;
                *base += 64;
            },
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            PtrIter::Mask(m) => m.count_ones() as usize,
            PtrIter::Slice(it) => it.len(),
            PtrIter::Words { rest, cur, .. } => {
                (cur.count_ones() + rest.as_slice().iter().map(|w| w.count_ones()).sum::<u32>())
                    as usize
            }
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for PtrIter<'_> {}

macro_rules! shared_row_accessors {
    () => {
        /// Current coherence state.
        #[inline]
        pub fn state(&self) -> HwState {
            self.t.state[self.i]
        }

        /// The hardware pointer capacity.
        #[inline]
        pub fn capacity(&self) -> usize {
            self.t.capacity
        }

        /// Iterates the pointers currently stored in hardware
        /// (ascending node order under the mask and slab regimes,
        /// insertion order under Fixed8).
        #[inline]
        pub fn ptr_iter(&self) -> PtrIter<'_> {
            match self.t.regime {
                Regime::Mask => PtrIter::Mask(self.t.mask[self.i]),
                Regime::Fixed8 => PtrIter::Slice(self.t.ptr_slice(self.i).iter()),
                Regime::Slab => PtrIter::over_words(self.t.word_slice(self.i)),
            }
        }

        /// The stored pointers as a fresh vector (sanitizer and test
        /// convenience — the hot paths use [`Self::ptr_iter`],
        /// [`Self::contains_ptr`] and [`Self::ptr_count`]).
        pub fn ptrs_vec(&self) -> Vec<NodeId> {
            self.ptr_iter().collect()
        }

        /// Whether `node` is recorded as a hardware pointer.
        #[inline]
        pub fn contains_ptr(&self, node: NodeId) -> bool {
            match self.t.regime {
                Regime::Mask => {
                    u32::from(node.0) < 64 && self.t.mask[self.i] & (1u64 << (node.0 & 63)) != 0
                }
                Regime::Fixed8 => {
                    if self.t.mask[self.i] & (1u64 << (node.0 & 63)) == 0 {
                        return false; // filter bit clear: provably absent
                    }
                    let base = self.i * FIXED8;
                    self.t.slab[base..base + FIXED8].iter().any(|&q| q == node)
                }
                Regime::Slab => {
                    let w = usize::from(node.0 >> 6);
                    w < self.t.words
                        && self.t.bits[self.i * self.t.words + w] & (1u64 << (node.0 & 63)) != 0
                }
            }
        }

        /// The presence bitmask over node ids, when this table runs
        /// the mask regime (`None` otherwise — the Fixed8 filter mask
        /// is *not* a presence mask).
        #[inline]
        pub fn ptr_mask(&self) -> Option<u64> {
            match self.t.regime {
                Regime::Mask => Some(self.t.mask[self.i]),
                _ => None,
            }
        }

        /// The presence words over node ids (bit `b` of word `w` is
        /// node `w * 64 + b`), when this table runs the word-parallel
        /// slab regime (`None` otherwise — the Fixed8 filter mask is
        /// not a presence mask, and the mask regime's single word is
        /// exposed by [`Self::ptr_mask`]).
        #[inline]
        pub fn ptr_words(&self) -> Option<&[u64]> {
            match self.t.regime {
                Regime::Slab => Some(self.t.word_slice(self.i)),
                _ => None,
            }
        }

        /// Number of hardware pointers in use.
        #[inline]
        pub fn ptr_count(&self) -> usize {
            match self.t.regime {
                Regime::Mask => self.t.mask[self.i].count_ones() as usize,
                _ => usize::from(self.t.len[self.i]),
            }
        }

        /// Whether the one-bit local pointer is set.
        #[inline]
        pub fn local_bit(&self) -> bool {
            self.t.flags[self.i] & flag::LOCAL_BIT != 0
        }

        /// Whether the entry has overflowed into the software extension.
        #[inline]
        pub fn overflowed(&self) -> bool {
            self.t.flags[self.i] & flag::OVERFLOWED != 0
        }

        /// Outstanding acknowledgment count.
        #[inline]
        pub fn acks_pending(&self) -> u32 {
            self.t.acks[self.i]
        }

        /// The requester recorded for transaction completion.
        #[inline]
        pub fn pending_requester(&self) -> Option<NodeId> {
            self.t.pending[self.i].get()
        }

        /// Whether the pending request is a write.
        #[inline]
        pub fn pending_is_write(&self) -> bool {
            self.t.flags[self.i] & flag::PENDING_IS_WRITE != 0
        }

        /// The sole owner when in `ReadWrite` state.
        #[inline]
        pub fn owner(&self) -> Option<NodeId> {
            if self.state() == HwState::ReadWrite {
                self.t.owner[self.i].get()
            } else {
                None
            }
        }

        /// Entry-local structural invariants (same checks and messages
        /// as [`HwDirEntry::structural_invariants`]; duplicate
        /// pointers are unrepresentable under the mask and slab
        /// regimes).
        pub fn structural_invariants(&self) -> Result<(), String> {
            let n = self.ptr_count();
            if n > self.capacity() {
                return Err(format!(
                    "{} pointers stored in a {}-pointer entry",
                    n,
                    self.capacity()
                ));
            }
            if self.t.regime == Regime::Fixed8 {
                let ptrs = self.t.ptr_slice(self.i);
                for (i, &p) in ptrs.iter().enumerate() {
                    if ptrs[..i].contains(&p) {
                        return Err(format!("duplicate hardware pointer {p}"));
                    }
                }
            }
            match self.state() {
                HwState::Uncached | HwState::ReadOnly | HwState::ReadWrite => {
                    if self.acks_pending() != 0 {
                        return Err(format!(
                            "{} acknowledgments outstanding outside a transaction ({:?})",
                            self.acks_pending(),
                            self.state()
                        ));
                    }
                }
                HwState::ReadTransaction | HwState::WriteTransaction => {
                    if self.pending_requester().is_none() {
                        return Err(format!("{:?} with no pending requester", self.state()));
                    }
                    if n != 0 {
                        return Err(format!(
                            "{:?} holds {} pointers while the storage doubles as the ack counter",
                            self.state(),
                            n
                        ));
                    }
                    let want_write = self.state() == HwState::WriteTransaction;
                    if self.pending_is_write() != want_write {
                        return Err(format!(
                            "{:?} records a pending {}",
                            self.state(),
                            if self.pending_is_write() {
                                "write"
                            } else {
                                "read"
                            }
                        ));
                    }
                }
            }
            Ok(())
        }

        /// Copies the row into the fat reference model (for the
        /// sanitizer's history records and differential tests).
        pub fn to_model(&self) -> HwDirEntry {
            let mut e = HwDirEntry::new(self.capacity());
            e.set_state(self.state());
            for p in self.ptr_iter() {
                e.raw_push_ptr(p);
            }
            e.set_local_bit(self.local_bit());
            e.set_overflowed(self.overflowed());
            e.set_acks_pending(self.acks_pending());
            e.set_pending(self.pending_requester(), self.pending_is_write());
            e.set_raw_owner(self.t.owner[self.i].get());
            e
        }
    };
}

/// Read-only view of one [`HwDirTable`] row.
#[derive(Clone, Copy, Debug)]
pub struct HwEntryRef<'a> {
    t: &'a HwDirTable,
    i: usize,
}

impl<'a> HwEntryRef<'a> {
    shared_row_accessors!();
}

/// Mutable view of one [`HwDirTable`] row, exposing the
/// [`HwDirEntry`] method set over the column storage.
#[derive(Debug)]
pub struct HwEntryMut<'a> {
    t: &'a mut HwDirTable,
    i: usize,
}

impl<'a> HwEntryMut<'a> {
    shared_row_accessors!();

    /// Reborrows the view for a shorter lifetime (to hand it to a
    /// [`HandlerCtx`](../../limitless_core) without giving it up).
    #[inline]
    pub fn reborrow(&mut self) -> HwEntryMut<'_> {
        HwEntryMut {
            t: &mut *self.t,
            i: self.i,
        }
    }

    /// Read-only alias of this row.
    #[inline]
    pub fn as_ref(&self) -> HwEntryRef<'_> {
        HwEntryRef {
            t: &*self.t,
            i: self.i,
        }
    }

    /// Sets the coherence state.
    #[inline]
    pub fn set_state(&mut self, s: HwState) {
        self.t.state[self.i] = s;
    }

    /// Sets or clears the one-bit local pointer.
    #[inline]
    pub fn set_local_bit(&mut self, v: bool) {
        self.set_flag(flag::LOCAL_BIT, v);
    }

    /// Marks the entry as extended in software, or back to
    /// hardware-only.
    #[inline]
    pub fn set_overflowed(&mut self, v: bool) {
        self.set_flag(flag::OVERFLOWED, v);
    }

    #[inline]
    fn set_flag(&mut self, bit: u8, v: bool) {
        if v {
            self.t.flags[self.i] |= bit;
        } else {
            self.t.flags[self.i] &= !bit;
        }
    }

    /// Records a read-only sharer; identical semantics to
    /// [`HwDirEntry::record_reader`] (duplicates are stored, a full
    /// pointer array overflows). One bit test + popcount under the
    /// mask regime.
    pub fn record_reader(&mut self, node: NodeId) -> PtrStoreOutcome {
        match self.t.regime {
            Regime::Mask => {
                debug_assert!(u32::from(node.0) < 64, "node {node} outside mask regime");
                let m = self.t.mask[self.i];
                let bit = 1u64 << (node.0 & 63);
                if m & bit != 0 {
                    return PtrStoreOutcome::Stored;
                }
                if (m.count_ones() as usize) < self.t.capacity {
                    self.t.mask[self.i] = m | bit;
                    PtrStoreOutcome::Stored
                } else {
                    PtrStoreOutcome::Overflow
                }
            }
            Regime::Fixed8 => {
                if self.contains_ptr(node) {
                    return PtrStoreOutcome::Stored;
                }
                let n = usize::from(self.t.len[self.i]);
                if n < self.t.capacity {
                    self.t.slab[self.i * FIXED8 + n] = node;
                    self.t.len[self.i] += 1;
                    self.t.mask[self.i] |= 1u64 << (node.0 & 63);
                    PtrStoreOutcome::Stored
                } else {
                    PtrStoreOutcome::Overflow
                }
            }
            Regime::Slab => {
                debug_assert!(
                    usize::from(node.0 >> 6) < self.t.words,
                    "node {node} outside the slab regime's presence words"
                );
                let w = self.i * self.t.words + usize::from(node.0 >> 6);
                let bit = 1u64 << (node.0 & 63);
                if self.t.bits[w] & bit != 0 {
                    return PtrStoreOutcome::Stored;
                }
                if usize::from(self.t.len[self.i]) < self.t.capacity {
                    self.t.bits[w] |= bit;
                    self.t.len[self.i] += 1;
                    PtrStoreOutcome::Stored
                } else {
                    PtrStoreOutcome::Overflow
                }
            }
        }
    }

    /// Removes a specific pointer (set-semantics, like the model's
    /// swap-remove). Returns whether it was present.
    pub fn remove_ptr(&mut self, node: NodeId) -> bool {
        match self.t.regime {
            Regime::Mask => {
                if u32::from(node.0) >= 64 {
                    return false;
                }
                let bit = 1u64 << (node.0 & 63);
                let present = self.t.mask[self.i] & bit != 0;
                self.t.mask[self.i] &= !bit;
                present
            }
            Regime::Fixed8 => {
                let base = self.i * self.t.stride;
                let n = usize::from(self.t.len[self.i]);
                let ptrs = &mut self.t.slab[base..base + n];
                let Some(p) = ptrs.iter().position(|&q| q == node) else {
                    return false;
                };
                ptrs[p] = ptrs[n - 1];
                self.t.len[self.i] -= 1;
                // Keep the dead suffix NONE for the 8-wide compare
                // and rebuild the alias filter (another pointer may
                // share the removed one's filter bit).
                self.t.slab[base + n - 1] = NodeId::NONE;
                let mut filter = 0u64;
                for &q in &self.t.slab[base..base + n - 1] {
                    filter |= 1u64 << (q.0 & 63);
                }
                self.t.mask[self.i] = filter;
                true
            }
            Regime::Slab => {
                let w = usize::from(node.0 >> 6);
                if w >= self.t.words {
                    return false;
                }
                let slot = self.i * self.t.words + w;
                let bit = 1u64 << (node.0 & 63);
                let present = self.t.bits[slot] & bit != 0;
                if present {
                    self.t.bits[slot] &= !bit;
                    self.t.len[self.i] -= 1;
                }
                present
            }
        }
    }

    /// Empties all hardware pointers into `out` (appending; ascending
    /// node order under the mask and slab regimes, insertion order
    /// under Fixed8) without touching the heap beyond `out` itself.
    /// The slab regime drains 64 presence bits per step.
    pub fn take_ptrs_into(&mut self, out: &mut Vec<NodeId>) {
        match self.t.regime {
            Regime::Mask => {
                let mut m = self.t.mask[self.i];
                self.t.mask[self.i] = 0;
                while m != 0 {
                    out.push(NodeId(m.trailing_zeros() as u16));
                    m &= m - 1;
                }
            }
            Regime::Fixed8 => {
                out.extend_from_slice(self.t.ptr_slice(self.i));
                self.clear_ptrs();
            }
            Regime::Slab => {
                let base = self.i * self.t.words;
                for (wi, w) in self.t.bits[base..base + self.t.words]
                    .iter_mut()
                    .enumerate()
                {
                    let mut m = std::mem::take(w);
                    while m != 0 {
                        out.push(NodeId(((wi as u32) * 64 + m.trailing_zeros()) as u16));
                        m &= m - 1;
                    }
                }
                self.t.len[self.i] = 0;
            }
        }
    }

    /// Empties all hardware pointers and returns them as the presence
    /// bitmask, when this table runs the mask regime (`None` leaves
    /// the entry untouched). The one-word drain path for the overflow
    /// trap handler.
    #[inline]
    pub fn take_ptr_mask(&mut self) -> Option<u64> {
        match self.t.regime {
            Regime::Mask => Some(std::mem::take(&mut self.t.mask[self.i])),
            _ => None,
        }
    }

    /// Empties all hardware pointers into `out` as presence words (bit
    /// `b` of appended word `w` is node `w * 64 + b`), when this table
    /// runs the word-parallel slab regime (`None` leaves the entry
    /// untouched and appends nothing). Returns the drained pointer
    /// count: the >64-node bulk path for the overflow trap handler,
    /// moving 64 pointers per word instead of one per slot.
    pub fn take_ptr_words_into(&mut self, out: &mut Vec<u64>) -> Option<usize> {
        match self.t.regime {
            Regime::Slab => {
                let base = self.i * self.t.words;
                out.extend_from_slice(&self.t.bits[base..base + self.t.words]);
                self.t.bits[base..base + self.t.words].fill(0);
                let n = usize::from(self.t.len[self.i]);
                self.t.len[self.i] = 0;
                Some(n)
            }
            _ => None,
        }
    }

    /// Empties all hardware pointers without reading them.
    pub fn clear_ptrs(&mut self) {
        match self.t.regime {
            Regime::Mask => self.t.mask[self.i] = 0,
            Regime::Fixed8 => {
                let base = self.i * FIXED8;
                self.t.slab[base..base + FIXED8].fill(NodeId::NONE);
                self.t.len[self.i] = 0;
                self.t.mask[self.i] = 0;
            }
            Regime::Slab => {
                let base = self.i * self.t.words;
                self.t.bits[base..base + self.t.words].fill(0);
                self.t.len[self.i] = 0;
            }
        }
    }

    /// Installs a single owner pointer for the `ReadWrite` state.
    pub fn set_sole_owner(&mut self, node: NodeId) {
        self.clear_ptrs();
        self.t.owner[self.i] = node;
        self.t.state[self.i] = HwState::ReadWrite;
        self.set_local_bit(false);
    }

    /// Clears the owner pointer (leaving `ReadWrite`).
    pub fn clear_owner(&mut self) {
        self.t.owner[self.i] = NodeId::NONE;
    }

    /// Begins a transaction; identical semantics to
    /// [`HwDirEntry::begin_transaction`] (the ack counter reuses
    /// pointer storage, so the pointers are cleared).
    pub fn begin_transaction(
        &mut self,
        state: HwState,
        acks: u32,
        requester: Option<NodeId>,
        is_write: bool,
    ) {
        debug_assert!(matches!(
            state,
            HwState::ReadTransaction | HwState::WriteTransaction
        ));
        self.clear_ptrs();
        self.t.state[self.i] = state;
        self.t.acks[self.i] = acks;
        self.t.pending[self.i] = NodeId::from_option(requester);
        self.set_flag(flag::PENDING_IS_WRITE, is_write);
    }

    /// Sets the outstanding acknowledgment count.
    #[inline]
    pub fn set_acks_pending(&mut self, n: u32) {
        self.t.acks[self.i] = n;
    }

    /// Counts one acknowledgment; returns the number still pending.
    ///
    /// # Panics
    ///
    /// Panics if no acknowledgments are outstanding (a protocol bug).
    pub fn count_ack(&mut self) -> u32 {
        assert!(self.t.acks[self.i] > 0, "spurious acknowledgment");
        self.t.acks[self.i] -= 1;
        self.t.acks[self.i]
    }

    /// Clears transaction bookkeeping (on completion).
    pub fn end_transaction(&mut self) {
        self.t.acks[self.i] = 0;
        self.t.pending[self.i] = NodeId::NONE;
        self.set_flag(flag::PENDING_IS_WRITE, false);
    }

    /// Resets the entry to `Uncached` with no pointers.
    pub fn reset(&mut self) {
        self.t.state[self.i] = HwState::Uncached;
        self.clear_ptrs();
        self.t.owner[self.i] = NodeId::NONE;
        self.set_local_bit(false);
        self.set_overflowed(false);
        self.end_transaction();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The regimes a test should cover: paper-scale mask, >64-node
    /// fixed array, and (given enough capacity) the big slab.
    const NODE_COUNTS: [usize; 3] = [64, 256, 1024];

    fn one_row(capacity: usize, nodes: usize) -> HwDirTable {
        let mut t = HwDirTable::with_nodes(capacity, nodes);
        t.push_row();
        t
    }

    fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn pointers_fill_then_overflow_in_every_regime() {
        for nodes in NODE_COUNTS {
            let mut t = one_row(2, nodes);
            let mut e = t.row_mut(0);
            assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
            assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Stored);
            assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Overflow);
            assert_eq!(e.ptr_count(), 2);
            assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
            assert!(e.contains_ptr(NodeId(1)) && e.contains_ptr(NodeId(2)));
            assert!(!e.contains_ptr(NodeId(3)));
        }
    }

    #[test]
    fn regime_selection_holds_at_the_scale_boundaries() {
        // nodes <= 64 is the mask regime regardless of capacity.
        for cap in [2usize, 8, 64] {
            assert_eq!(HwDirTable::with_nodes(cap, 64).regime, Regime::Mask);
        }
        // Past the mask regime the capacity picks the storage shape,
        // and it must not flip anywhere along the 255..=1024 ladder.
        for nodes in [65usize, 255, 256, 257, 1023, 1024] {
            let fixed = HwDirTable::with_nodes(8, nodes);
            assert_eq!(fixed.regime, Regime::Fixed8, "{nodes}");
            assert_eq!((fixed.stride, fixed.words), (FIXED8, 0), "{nodes}");
            let slab = HwDirTable::with_nodes(9, nodes);
            assert_eq!(slab.regime, Regime::Slab, "{nodes}");
            assert_eq!(slab.stride, 0, "{nodes}");
            assert_eq!(slab.words, nodes.div_ceil(64), "{nodes}");
        }
        // Word geometry at the 64-bit seams: 255 and 256 both fit four
        // words, 257 spills into a fifth; 1023 and 1024 share sixteen.
        for (nodes, want) in [(255, 4), (256, 4), (257, 5), (1023, 16), (1024, 16)] {
            assert_eq!(HwDirTable::with_nodes(nodes, nodes).words, want, "{nodes}");
        }
    }

    #[test]
    fn slab_handles_last_node_and_sentinel_at_odd_machine_sizes() {
        // Machines whose node count is not a multiple of 64 leave the
        // top word partially used; the last addressable node must
        // round-trip, and the NodeId::NONE sentinel (u16::MAX) must
        // never read as present or corrupt a word out of bounds.
        for nodes in [255usize, 257, 1023] {
            let mut t = one_row(nodes, nodes);
            let mut e = t.row_mut(0);
            let last = NodeId((nodes - 1) as u16);
            assert_eq!(e.record_reader(last), PtrStoreOutcome::Stored, "{nodes}");
            assert!(e.contains_ptr(last), "{nodes}");
            assert!(!e.contains_ptr(NodeId::NONE), "{nodes}");
            assert!(!e.remove_ptr(NodeId::NONE), "{nodes}");
            assert_eq!(e.ptr_iter().collect::<Vec<_>>(), vec![last], "{nodes}");
            assert!(e.remove_ptr(last), "{nodes}");
            assert_eq!(e.ptr_count(), 0, "{nodes}");
            t.row(0).structural_invariants().unwrap();
        }
    }

    #[test]
    fn slab_regime_handles_wide_full_map() {
        // 256-node full map: capacity 256 > 8 forces the slab regime.
        let mut t = one_row(256, 256);
        let mut e = t.row_mut(0);
        for n in 0..200u16 {
            assert_eq!(e.record_reader(NodeId(n)), PtrStoreOutcome::Stored);
        }
        assert_eq!(e.ptr_count(), 200);
        assert!(e.contains_ptr(NodeId(199)));
        assert!(e.remove_ptr(NodeId(100)));
        assert_eq!(e.ptr_count(), 199);
        assert!(!e.contains_ptr(NodeId(100)));
    }

    #[test]
    fn slab_regime_crosses_word_boundaries() {
        // 1024-node full map: 16 presence words per row. Exercise ids
        // on both sides of every word seam the test ids touch.
        let mut t = one_row(1024, 1024);
        let mut e = t.row_mut(0);
        let ids = [0u16, 63, 64, 65, 127, 128, 511, 512, 767, 1023];
        for &n in &ids {
            assert_eq!(e.record_reader(NodeId(n)), PtrStoreOutcome::Stored);
        }
        assert_eq!(e.ptr_count(), ids.len());
        for &n in &ids {
            assert!(e.contains_ptr(NodeId(n)), "missing {n}");
        }
        assert!(!e.contains_ptr(NodeId(62)) && !e.contains_ptr(NodeId(66)));
        // Iteration is ascending node order, one word at a time.
        let got: Vec<u16> = e.ptr_iter().map(|p| p.0).collect();
        assert_eq!(got, ids);
        assert!(e.remove_ptr(NodeId(64)));
        assert!(!e.contains_ptr(NodeId(64)));
        assert!(e.contains_ptr(NodeId(63)) && e.contains_ptr(NodeId(65)));
        assert_eq!(e.ptr_count(), ids.len() - 1);
    }

    #[test]
    fn slab_regime_drains_as_presence_words() {
        let mut t = one_row(256, 256);
        let mut e = t.row_mut(0);
        for n in [3u16, 64, 130, 255] {
            e.record_reader(NodeId(n));
        }
        let mut words = Vec::new();
        assert_eq!(e.take_ptr_words_into(&mut words), Some(4));
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], 1 << 3);
        assert_eq!(words[1], 1 << 0);
        assert_eq!(words[2], 1 << 2);
        assert_eq!(words[3], 1 << 63);
        assert_eq!(e.ptr_count(), 0);
        assert_eq!(e.ptrs_vec(), Vec::new());
        // Refusal outside the slab regime leaves the entry intact.
        for nodes in [64usize, 256] {
            let mut t = one_row(3, nodes);
            let mut e = t.row_mut(0);
            e.record_reader(NodeId(5));
            if nodes == 64 {
                let mut w = Vec::new();
                assert_eq!(e.take_ptr_words_into(&mut w), None);
                assert!(w.is_empty());
                assert_eq!(e.ptr_count(), 1);
            } else {
                // Fixed8 (capacity 3 <= 8) refuses too.
                let mut w = Vec::new();
                assert_eq!(e.take_ptr_words_into(&mut w), None);
                assert_eq!(e.ptr_count(), 1);
            }
        }
    }

    #[test]
    fn fixed8_filter_mask_survives_aliased_removal() {
        // 256 nodes, capacity 5: Fixed8 regime. NodeId(3) and
        // NodeId(67) share filter bit 3; removing one must not make
        // the other unfindable.
        let mut t = one_row(5, 256);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(3));
        e.record_reader(NodeId(67));
        assert!(e.remove_ptr(NodeId(3)));
        assert!(e.contains_ptr(NodeId(67)));
        assert!(!e.contains_ptr(NodeId(3)));
        assert!(e.remove_ptr(NodeId(67)));
        assert_eq!(e.ptr_count(), 0);
    }

    #[test]
    fn rows_are_independent() {
        for nodes in NODE_COUNTS {
            let mut t = HwDirTable::with_nodes(3, nodes);
            let (a, b) = (t.push_row(), t.push_row());
            t.row_mut(a).record_reader(NodeId(1));
            t.row_mut(b).record_reader(NodeId(9));
            t.row_mut(b).set_local_bit(true);
            assert_eq!(t.row(a).ptrs_vec(), vec![NodeId(1)]);
            assert_eq!(t.row(b).ptrs_vec(), vec![NodeId(9)]);
            assert!(!t.row(a).local_bit());
            assert!(t.row(b).local_bit());
        }
    }

    #[test]
    fn drain_yields_the_pointer_set_and_keeps_storage() {
        for nodes in NODE_COUNTS {
            let mut t = one_row(3, nodes);
            let mut e = t.row_mut(0);
            e.record_reader(NodeId(2));
            e.record_reader(NodeId(1));
            let mut out = Vec::new();
            e.take_ptrs_into(&mut out);
            assert_eq!(sorted(out), vec![NodeId(1), NodeId(2)]);
            assert_eq!(e.ptr_count(), 0);
            assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Stored);
        }
    }

    #[test]
    fn mask_regime_drains_as_one_word() {
        let mut t = one_row(3, 64);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(5));
        e.record_reader(NodeId(0));
        assert_eq!(e.ptr_mask(), Some(0b100001));
        assert_eq!(e.take_ptr_mask(), Some(0b100001));
        assert_eq!(e.ptr_count(), 0);
        // Non-mask regimes refuse, leaving the entry intact.
        let mut t = one_row(3, 256);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(5));
        assert_eq!(e.ptr_mask(), None);
        assert_eq!(e.take_ptr_mask(), None);
        assert_eq!(e.ptr_count(), 1);
    }

    #[test]
    fn remove_ptr_matches_the_model_set() {
        for nodes in NODE_COUNTS {
            let mut t = one_row(4, nodes);
            let mut m = HwDirEntry::new(4);
            let mut e = t.row_mut(0);
            for n in [1u16, 2, 3, 4] {
                e.record_reader(NodeId(n));
                m.record_reader(NodeId(n));
            }
            assert_eq!(e.remove_ptr(NodeId(2)), m.remove_ptr(NodeId(2)));
            assert_eq!(sorted(e.ptrs_vec()), sorted(m.ptrs().to_vec()));
            assert_eq!(e.remove_ptr(NodeId(2)), m.remove_ptr(NodeId(2)));
        }
    }

    #[test]
    fn transaction_round_trip_matches_model_invariants() {
        for nodes in NODE_COUNTS {
            let mut t = one_row(2, nodes);
            let mut e = t.row_mut(0);
            e.record_reader(NodeId(1));
            e.begin_transaction(HwState::WriteTransaction, 2, Some(NodeId(9)), true);
            assert_eq!(e.ptr_count(), 0);
            assert!(e.structural_invariants().is_ok());
            assert_eq!(e.count_ack(), 1);
            assert_eq!(e.count_ack(), 0);
            assert_eq!(e.pending_requester(), Some(NodeId(9)));
            e.end_transaction();
            assert_eq!(e.acks_pending(), 0);
            assert_eq!(e.pending_requester(), None);
        }
    }

    #[test]
    #[should_panic(expected = "spurious acknowledgment")]
    fn spurious_ack_panics() {
        let mut t = one_row(1, 64);
        t.row_mut(0).count_ack();
    }

    #[test]
    fn owner_only_visible_in_read_write() {
        let mut t = one_row(0, 64);
        let mut e = t.row_mut(0);
        e.set_sole_owner(NodeId(3));
        assert_eq!(e.owner(), Some(NodeId(3)));
        e.set_state(HwState::Uncached);
        assert_eq!(e.owner(), None);
    }

    #[test]
    fn reset_clears_everything() {
        for nodes in NODE_COUNTS {
            let mut t = one_row(2, nodes);
            let mut e = t.row_mut(0);
            e.record_reader(NodeId(1));
            e.set_local_bit(true);
            e.set_overflowed(true);
            e.begin_transaction(HwState::WriteTransaction, 1, Some(NodeId(3)), false);
            e.reset();
            assert_eq!(e.state(), HwState::Uncached);
            assert_eq!(e.ptr_count(), 0);
            assert!(!e.local_bit());
            assert!(!e.overflowed());
            assert_eq!(e.acks_pending(), 0);
            assert!(e.to_model().structural_invariants().is_ok());
        }
    }

    /// Differential check: a pseudo-random operation tape applied to
    /// both representations must leave them observably identical —
    /// as *sets* — at every step, in every regime.
    #[test]
    fn differential_against_fat_model() {
        for nodes in NODE_COUNTS {
            for cap in [0usize, 1, 2, 5, 9] {
                let mut t = one_row(cap, nodes);
                let mut m = HwDirEntry::new(cap);
                let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (cap as u64) ^ ((nodes as u64) << 32);
                let mut scratch = Vec::new();
                for step in 0..4000 {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Drawing nodes near the top of the id range also
                    // exercises Fixed8 filter-bit aliasing (e.g. 66
                    // aliases 2 when nodes > 64).
                    let span = nodes.min(68) as u64;
                    let node = NodeId(((rng >> 33) % span) as u16);
                    let mut e = t.row_mut(0);
                    match (rng >> 56) % 10 {
                        0..=2 => {
                            assert_eq!(
                                e.record_reader(node),
                                m.record_reader(node),
                                "step {step} nodes {nodes} cap {cap}"
                            );
                        }
                        3 => {
                            assert_eq!(e.remove_ptr(node), m.remove_ptr(node));
                        }
                        4 => {
                            scratch.clear();
                            e.take_ptrs_into(&mut scratch);
                            assert_eq!(sorted(scratch.clone()), sorted(m.drain_ptrs()));
                        }
                        5 => {
                            e.set_sole_owner(node);
                            m.set_sole_owner(node);
                        }
                        6 => {
                            e.begin_transaction(HwState::WriteTransaction, 3, Some(node), true);
                            m.begin_transaction(HwState::WriteTransaction, 3, Some(node), true);
                            assert_eq!(e.count_ack(), m.count_ack());
                            e.end_transaction();
                            m.end_transaction();
                            e.set_state(HwState::Uncached);
                            m.set_state(HwState::Uncached);
                        }
                        7 => {
                            e.set_local_bit(node.0.is_multiple_of(2));
                            m.set_local_bit(node.0.is_multiple_of(2));
                            e.set_overflowed(node.0.is_multiple_of(3));
                            m.set_overflowed(node.0.is_multiple_of(3));
                        }
                        8 => {
                            e.reset();
                            m.reset();
                        }
                        _ => {
                            e.clear_owner();
                            m.clear_owner();
                        }
                    }
                    let e = t.row(0);
                    assert_eq!(e.state(), m.state(), "step {step}");
                    assert_eq!(
                        sorted(e.ptrs_vec()),
                        sorted(m.ptrs().to_vec()),
                        "step {step} nodes {nodes} cap {cap}"
                    );
                    for probe in 0..68u16.min(nodes as u16) {
                        assert_eq!(
                            e.contains_ptr(NodeId(probe)),
                            m.ptrs().contains(&NodeId(probe)),
                            "step {step} probe {probe}"
                        );
                    }
                    assert_eq!(e.ptr_count(), m.ptr_count());
                    assert_eq!(e.local_bit(), m.local_bit());
                    assert_eq!(e.overflowed(), m.overflowed());
                    assert_eq!(e.acks_pending(), m.acks_pending());
                    assert_eq!(e.pending_requester(), m.pending_requester());
                    assert_eq!(e.owner(), m.owner());
                    assert_eq!(
                        e.structural_invariants().is_ok(),
                        m.structural_invariants().is_ok()
                    );
                }
            }
        }
    }
}
