//! Struct-of-arrays storage for hardware directory entries.
//!
//! [`super::hw::HwDirEntry`] models one entry as a fat struct with its
//! own heap-allocated pointer array — fine for reasoning, wasteful for
//! a table of hundreds of thousands of entries where a directory event
//! touches exactly one. `HwDirTable` stores the same state as parallel
//! columns: one `Vec` per field, flag bits packed into a `u8` bitset
//! column, `Option<NodeId>` fields collapsed to [`NodeId::NONE`]
//! sentinels, and every entry's pointer array carved out of one flat
//! slab at a uniform stride (the protocol's pointer capacity is a
//! per-machine constant, so the stride is too). A directory event
//! reads a handful of adjacent bytes instead of chasing a `Vec` per
//! block, and draining the pointers to software no longer gives up the
//! entry's pointer storage.
//!
//! [`HwEntryMut`] and [`HwEntryRef`] are row views exposing the exact
//! `HwDirEntry` method set, so the protocol engine and the
//! [`ExtensionHandler`](../../limitless_core) ecosystem are oblivious
//! to the layout change; `hw.rs` is kept as the reference model the
//! table is differentially tested against.

use limitless_sim::NodeId;

use crate::hw::{HwDirEntry, HwState, PtrStoreOutcome};

/// Bit positions in the packed per-entry flag column.
mod flag {
    /// The home node itself holds a read-only copy (one-bit pointer).
    pub const LOCAL_BIT: u8 = 1 << 0;
    /// The entry has overflowed into the software extension.
    pub const OVERFLOWED: u8 = 1 << 1;
    /// The pending transaction request is a write.
    pub const PENDING_IS_WRITE: u8 = 1 << 2;
}

/// Column-oriented storage for every hardware directory entry of one
/// home node.
///
/// # Examples
///
/// ```
/// use limitless_dir::{HwDirTable, HwState, PtrStoreOutcome};
/// use limitless_sim::NodeId;
///
/// let mut t = HwDirTable::new(2);
/// let row = t.push_row();
/// let mut e = t.row_mut(row);
/// assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
/// assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Stored);
/// assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Overflow);
/// assert_eq!(t.row(row).state(), HwState::Uncached); // engine sets states
/// assert_eq!(t.row(row).ptrs(), &[NodeId(1), NodeId(2)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HwDirTable {
    /// Uniform pointer capacity (= the slab stride).
    capacity: usize,
    state: Vec<HwState>,
    flags: Vec<u8>,
    acks: Vec<u32>,
    /// Pending transaction requester ([`NodeId::NONE`] when absent).
    pending: Vec<NodeId>,
    /// Sole owner in `ReadWrite` ([`NodeId::NONE`] when absent).
    owner: Vec<NodeId>,
    /// Pointers in use per entry.
    len: Vec<u16>,
    /// Flat pointer slab; entry `i` owns `slab[i*capacity..][..capacity]`.
    slab: Vec<NodeId>,
}

impl HwDirTable {
    /// Creates an empty table whose entries have `capacity` hardware
    /// pointers each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `u16::MAX` (pointer counts are
    /// stored as `u16`; machines are at most 65 536 nodes).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity <= usize::from(u16::MAX),
            "pointer capacity too large"
        );
        HwDirTable {
            capacity,
            ..HwDirTable::default()
        }
    }

    /// The uniform pointer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Appends a fresh `Uncached` entry, returning its row index.
    pub fn push_row(&mut self) -> u32 {
        let row = u32::try_from(self.state.len()).expect("more than 2^32 directory rows");
        self.state.push(HwState::Uncached);
        self.flags.push(0);
        self.acks.push(0);
        self.pending.push(NodeId::NONE);
        self.owner.push(NodeId::NONE);
        self.len.push(0);
        self.slab
            .resize(self.slab.len() + self.capacity, NodeId::NONE);
        row
    }

    /// Read-only view of one entry.
    #[inline]
    pub fn row(&self, row: u32) -> HwEntryRef<'_> {
        HwEntryRef {
            t: self,
            i: row as usize,
        }
    }

    /// Mutable view of one entry.
    #[inline]
    pub fn row_mut(&mut self, row: u32) -> HwEntryMut<'_> {
        HwEntryMut {
            i: row as usize,
            t: self,
        }
    }

    #[inline]
    fn ptr_slice(&self, i: usize) -> &[NodeId] {
        &self.slab[i * self.capacity..][..usize::from(self.len[i])]
    }
}

macro_rules! shared_row_accessors {
    () => {
        /// Current coherence state.
        #[inline]
        pub fn state(&self) -> HwState {
            self.t.state[self.i]
        }

        /// The hardware pointer capacity.
        #[inline]
        pub fn capacity(&self) -> usize {
            self.t.capacity
        }

        /// The pointers currently stored in hardware.
        #[inline]
        pub fn ptrs(&self) -> &[NodeId] {
            self.t.ptr_slice(self.i)
        }

        /// Number of hardware pointers in use.
        #[inline]
        pub fn ptr_count(&self) -> usize {
            usize::from(self.t.len[self.i])
        }

        /// Whether the one-bit local pointer is set.
        #[inline]
        pub fn local_bit(&self) -> bool {
            self.t.flags[self.i] & flag::LOCAL_BIT != 0
        }

        /// Whether the entry has overflowed into the software extension.
        #[inline]
        pub fn overflowed(&self) -> bool {
            self.t.flags[self.i] & flag::OVERFLOWED != 0
        }

        /// Outstanding acknowledgment count.
        #[inline]
        pub fn acks_pending(&self) -> u32 {
            self.t.acks[self.i]
        }

        /// The requester recorded for transaction completion.
        #[inline]
        pub fn pending_requester(&self) -> Option<NodeId> {
            self.t.pending[self.i].get()
        }

        /// Whether the pending request is a write.
        #[inline]
        pub fn pending_is_write(&self) -> bool {
            self.t.flags[self.i] & flag::PENDING_IS_WRITE != 0
        }

        /// The sole owner when in `ReadWrite` state.
        #[inline]
        pub fn owner(&self) -> Option<NodeId> {
            if self.state() == HwState::ReadWrite {
                self.t.owner[self.i].get()
            } else {
                None
            }
        }

        /// Entry-local structural invariants (same checks and messages
        /// as [`HwDirEntry::structural_invariants`]).
        pub fn structural_invariants(&self) -> Result<(), String> {
            let ptrs = self.ptrs();
            if ptrs.len() > self.capacity() {
                return Err(format!(
                    "{} pointers stored in a {}-pointer entry",
                    ptrs.len(),
                    self.capacity()
                ));
            }
            for (i, &p) in ptrs.iter().enumerate() {
                if ptrs[..i].contains(&p) {
                    return Err(format!("duplicate hardware pointer {p}"));
                }
            }
            match self.state() {
                HwState::Uncached | HwState::ReadOnly | HwState::ReadWrite => {
                    if self.acks_pending() != 0 {
                        return Err(format!(
                            "{} acknowledgments outstanding outside a transaction ({:?})",
                            self.acks_pending(),
                            self.state()
                        ));
                    }
                }
                HwState::ReadTransaction | HwState::WriteTransaction => {
                    if self.pending_requester().is_none() {
                        return Err(format!("{:?} with no pending requester", self.state()));
                    }
                    if !ptrs.is_empty() {
                        return Err(format!(
                            "{:?} holds {} pointers while the storage doubles as the ack counter",
                            self.state(),
                            ptrs.len()
                        ));
                    }
                    let want_write = self.state() == HwState::WriteTransaction;
                    if self.pending_is_write() != want_write {
                        return Err(format!(
                            "{:?} records a pending {}",
                            self.state(),
                            if self.pending_is_write() {
                                "write"
                            } else {
                                "read"
                            }
                        ));
                    }
                }
            }
            Ok(())
        }

        /// Copies the row into the fat reference model (for the
        /// sanitizer's history records and differential tests).
        pub fn to_model(&self) -> HwDirEntry {
            let mut e = HwDirEntry::new(self.capacity());
            e.set_state(self.state());
            for &p in self.ptrs() {
                e.raw_push_ptr(p);
            }
            e.set_local_bit(self.local_bit());
            e.set_overflowed(self.overflowed());
            e.set_acks_pending(self.acks_pending());
            e.set_pending(self.pending_requester(), self.pending_is_write());
            e.set_raw_owner(self.t.owner[self.i].get());
            e
        }
    };
}

/// Read-only view of one [`HwDirTable`] row.
#[derive(Clone, Copy, Debug)]
pub struct HwEntryRef<'a> {
    t: &'a HwDirTable,
    i: usize,
}

impl<'a> HwEntryRef<'a> {
    shared_row_accessors!();
}

/// Mutable view of one [`HwDirTable`] row, exposing the exact
/// [`HwDirEntry`] method set over the column storage.
#[derive(Debug)]
pub struct HwEntryMut<'a> {
    t: &'a mut HwDirTable,
    i: usize,
}

impl<'a> HwEntryMut<'a> {
    shared_row_accessors!();

    /// Reborrows the view for a shorter lifetime (to hand it to a
    /// [`HandlerCtx`](../../limitless_core) without giving it up).
    #[inline]
    pub fn reborrow(&mut self) -> HwEntryMut<'_> {
        HwEntryMut {
            t: &mut *self.t,
            i: self.i,
        }
    }

    /// Read-only alias of this row.
    #[inline]
    pub fn as_ref(&self) -> HwEntryRef<'_> {
        HwEntryRef {
            t: &*self.t,
            i: self.i,
        }
    }

    /// Sets the coherence state.
    #[inline]
    pub fn set_state(&mut self, s: HwState) {
        self.t.state[self.i] = s;
    }

    /// Sets or clears the one-bit local pointer.
    #[inline]
    pub fn set_local_bit(&mut self, v: bool) {
        self.set_flag(flag::LOCAL_BIT, v);
    }

    /// Marks the entry as extended in software, or back to
    /// hardware-only.
    #[inline]
    pub fn set_overflowed(&mut self, v: bool) {
        self.set_flag(flag::OVERFLOWED, v);
    }

    #[inline]
    fn set_flag(&mut self, bit: u8, v: bool) {
        if v {
            self.t.flags[self.i] |= bit;
        } else {
            self.t.flags[self.i] &= !bit;
        }
    }

    /// Records a read-only sharer; identical semantics to
    /// [`HwDirEntry::record_reader`] (duplicates are stored, a full
    /// pointer array overflows).
    pub fn record_reader(&mut self, node: NodeId) -> PtrStoreOutcome {
        if self.ptrs().contains(&node) {
            return PtrStoreOutcome::Stored;
        }
        let n = usize::from(self.t.len[self.i]);
        if n < self.t.capacity {
            self.t.slab[self.i * self.t.capacity + n] = node;
            self.t.len[self.i] += 1;
            PtrStoreOutcome::Stored
        } else {
            PtrStoreOutcome::Overflow
        }
    }

    /// Removes a specific pointer (swap-remove, like the model).
    /// Returns whether it was present.
    pub fn remove_ptr(&mut self, node: NodeId) -> bool {
        let base = self.i * self.t.capacity;
        let n = usize::from(self.t.len[self.i]);
        let ptrs = &mut self.t.slab[base..base + n];
        if let Some(p) = ptrs.iter().position(|&q| q == node) {
            ptrs[p] = ptrs[n - 1];
            self.t.len[self.i] -= 1;
            true
        } else {
            false
        }
    }

    /// Empties all hardware pointers, returning them in insertion
    /// order (allocating compatibility shim over
    /// [`HwEntryMut::take_ptrs_into`]).
    pub fn drain_ptrs(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.take_ptrs_into(&mut out);
        out
    }

    /// Empties all hardware pointers into `out` (appending, insertion
    /// order preserved) without touching the heap — the slab storage
    /// stays with the entry.
    pub fn take_ptrs_into(&mut self, out: &mut Vec<NodeId>) {
        out.extend_from_slice(self.ptrs());
        self.t.len[self.i] = 0;
    }

    /// Empties all hardware pointers without reading them.
    pub fn clear_ptrs(&mut self) {
        self.t.len[self.i] = 0;
    }

    /// Installs a single owner pointer for the `ReadWrite` state.
    pub fn set_sole_owner(&mut self, node: NodeId) {
        self.t.len[self.i] = 0;
        self.t.owner[self.i] = node;
        self.t.state[self.i] = HwState::ReadWrite;
        self.set_local_bit(false);
    }

    /// Clears the owner pointer (leaving `ReadWrite`).
    pub fn clear_owner(&mut self) {
        self.t.owner[self.i] = NodeId::NONE;
    }

    /// Begins a transaction; identical semantics to
    /// [`HwDirEntry::begin_transaction`] (the ack counter reuses
    /// pointer storage, so the pointers are cleared).
    pub fn begin_transaction(
        &mut self,
        state: HwState,
        acks: u32,
        requester: Option<NodeId>,
        is_write: bool,
    ) {
        debug_assert!(matches!(
            state,
            HwState::ReadTransaction | HwState::WriteTransaction
        ));
        self.t.len[self.i] = 0;
        self.t.state[self.i] = state;
        self.t.acks[self.i] = acks;
        self.t.pending[self.i] = NodeId::from_option(requester);
        self.set_flag(flag::PENDING_IS_WRITE, is_write);
    }

    /// Sets the outstanding acknowledgment count.
    #[inline]
    pub fn set_acks_pending(&mut self, n: u32) {
        self.t.acks[self.i] = n;
    }

    /// Counts one acknowledgment; returns the number still pending.
    ///
    /// # Panics
    ///
    /// Panics if no acknowledgments are outstanding (a protocol bug).
    pub fn count_ack(&mut self) -> u32 {
        assert!(self.t.acks[self.i] > 0, "spurious acknowledgment");
        self.t.acks[self.i] -= 1;
        self.t.acks[self.i]
    }

    /// Clears transaction bookkeeping (on completion).
    pub fn end_transaction(&mut self) {
        self.t.acks[self.i] = 0;
        self.t.pending[self.i] = NodeId::NONE;
        self.set_flag(flag::PENDING_IS_WRITE, false);
    }

    /// Resets the entry to `Uncached` with no pointers.
    pub fn reset(&mut self) {
        self.t.state[self.i] = HwState::Uncached;
        self.t.len[self.i] = 0;
        self.t.owner[self.i] = NodeId::NONE;
        self.set_local_bit(false);
        self.set_overflowed(false);
        self.end_transaction();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_row(capacity: usize) -> HwDirTable {
        let mut t = HwDirTable::new(capacity);
        t.push_row();
        t
    }

    #[test]
    fn pointers_fill_then_overflow() {
        let mut t = one_row(2);
        let mut e = t.row_mut(0);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Overflow);
        assert_eq!(e.ptr_count(), 2);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
    }

    #[test]
    fn rows_are_independent() {
        let mut t = HwDirTable::new(3);
        let (a, b) = (t.push_row(), t.push_row());
        t.row_mut(a).record_reader(NodeId(1));
        t.row_mut(b).record_reader(NodeId(9));
        t.row_mut(b).set_local_bit(true);
        assert_eq!(t.row(a).ptrs(), &[NodeId(1)]);
        assert_eq!(t.row(b).ptrs(), &[NodeId(9)]);
        assert!(!t.row(a).local_bit());
        assert!(t.row(b).local_bit());
    }

    #[test]
    fn drain_preserves_insertion_order_and_keeps_slab() {
        let mut t = one_row(3);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(2));
        e.record_reader(NodeId(1));
        let mut out = Vec::new();
        e.take_ptrs_into(&mut out);
        assert_eq!(out, vec![NodeId(2), NodeId(1)]);
        assert_eq!(e.ptr_count(), 0);
        assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Stored);
    }

    #[test]
    fn remove_ptr_is_swap_remove_like_the_model() {
        let mut t = one_row(4);
        let mut m = HwDirEntry::new(4);
        let mut e = t.row_mut(0);
        for n in [1u16, 2, 3, 4] {
            e.record_reader(NodeId(n));
            m.record_reader(NodeId(n));
        }
        assert_eq!(e.remove_ptr(NodeId(2)), m.remove_ptr(NodeId(2)));
        assert_eq!(e.ptrs(), m.ptrs());
        assert_eq!(e.remove_ptr(NodeId(2)), m.remove_ptr(NodeId(2)));
    }

    #[test]
    fn transaction_round_trip_matches_model_invariants() {
        let mut t = one_row(2);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(1));
        e.begin_transaction(HwState::WriteTransaction, 2, Some(NodeId(9)), true);
        assert_eq!(e.ptr_count(), 0);
        assert!(e.structural_invariants().is_ok());
        assert_eq!(e.count_ack(), 1);
        assert_eq!(e.count_ack(), 0);
        assert_eq!(e.pending_requester(), Some(NodeId(9)));
        e.end_transaction();
        assert_eq!(e.acks_pending(), 0);
        assert_eq!(e.pending_requester(), None);
    }

    #[test]
    #[should_panic(expected = "spurious acknowledgment")]
    fn spurious_ack_panics() {
        let mut t = one_row(1);
        t.row_mut(0).count_ack();
    }

    #[test]
    fn owner_only_visible_in_read_write() {
        let mut t = one_row(0);
        let mut e = t.row_mut(0);
        e.set_sole_owner(NodeId(3));
        assert_eq!(e.owner(), Some(NodeId(3)));
        e.set_state(HwState::Uncached);
        assert_eq!(e.owner(), None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = one_row(2);
        let mut e = t.row_mut(0);
        e.record_reader(NodeId(1));
        e.set_local_bit(true);
        e.set_overflowed(true);
        e.begin_transaction(HwState::WriteTransaction, 1, Some(NodeId(3)), false);
        e.reset();
        assert_eq!(e.state(), HwState::Uncached);
        assert_eq!(e.ptr_count(), 0);
        assert!(!e.local_bit());
        assert!(!e.overflowed());
        assert_eq!(e.acks_pending(), 0);
        assert!(e.to_model().structural_invariants().is_ok());
    }

    /// Differential check: a pseudo-random operation tape applied to
    /// both representations must leave them observably identical at
    /// every step.
    #[test]
    fn differential_against_fat_model() {
        for cap in [0usize, 1, 2, 5] {
            let mut t = one_row(cap);
            let mut m = HwDirEntry::new(cap);
            let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (cap as u64);
            for step in 0..4000 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let node = NodeId((rng >> 33) as u16 % 8);
                let mut e = t.row_mut(0);
                match (rng >> 56) % 10 {
                    0..=2 => {
                        assert_eq!(e.record_reader(node), m.record_reader(node), "step {step}");
                    }
                    3 => {
                        assert_eq!(e.remove_ptr(node), m.remove_ptr(node));
                    }
                    4 => {
                        assert_eq!(e.drain_ptrs(), m.drain_ptrs());
                    }
                    5 => {
                        e.set_sole_owner(node);
                        m.set_sole_owner(node);
                    }
                    6 => {
                        e.begin_transaction(HwState::WriteTransaction, 3, Some(node), true);
                        m.begin_transaction(HwState::WriteTransaction, 3, Some(node), true);
                        assert_eq!(e.count_ack(), m.count_ack());
                        e.end_transaction();
                        m.end_transaction();
                        e.set_state(HwState::Uncached);
                        m.set_state(HwState::Uncached);
                    }
                    7 => {
                        e.set_local_bit(node.0.is_multiple_of(2));
                        m.set_local_bit(node.0.is_multiple_of(2));
                        e.set_overflowed(node.0.is_multiple_of(3));
                        m.set_overflowed(node.0.is_multiple_of(3));
                    }
                    8 => {
                        e.reset();
                        m.reset();
                    }
                    _ => {
                        e.clear_owner();
                        m.clear_owner();
                    }
                }
                let e = t.row(0);
                assert_eq!(e.state(), m.state(), "step {step}");
                assert_eq!(e.ptrs(), m.ptrs(), "step {step}");
                assert_eq!(e.local_bit(), m.local_bit());
                assert_eq!(e.overflowed(), m.overflowed());
                assert_eq!(e.acks_pending(), m.acks_pending());
                assert_eq!(e.pending_requester(), m.pending_requester());
                assert_eq!(e.owner(), m.owner());
                assert_eq!(
                    e.structural_invariants().is_ok(),
                    m.structural_invariants().is_ok()
                );
            }
        }
    }
}
