//! The hardware directory entry.

use limitless_sim::NodeId;

/// Coherence state of a block as seen by its home directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HwState {
    /// No cached copies anywhere.
    #[default]
    Uncached,
    /// One or more read-only copies; pointers (plus the software
    /// extension, if overflowed) name them.
    ReadOnly,
    /// Exactly one read-write copy; pointer 0 names the owner.
    ReadWrite,
    /// A read request is waiting for the current owner to flush its
    /// dirty copy back (transient; requests answered with BUSY).
    ReadTransaction,
    /// Invalidations are outstanding; the ack counter is live
    /// (transient; requests answered with BUSY).
    WriteTransaction,
}

impl HwState {
    /// Whether the directory can accept a new request in this state,
    /// or must bounce it with a BUSY reply.
    pub fn accepts_requests(self) -> bool {
        !matches!(self, HwState::ReadTransaction | HwState::WriteTransaction)
    }
}

/// Result of asking the hardware to record a reader pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrStoreOutcome {
    /// The pointer fit in hardware (or was already present).
    Stored,
    /// All hardware pointers are in use: the directory must interrupt
    /// the local processor to extend itself in software.
    Overflow,
}

/// The hardware directory entry for one memory block.
///
/// Capacity is `ptrs` explicit pointers (0–64 in this model; Alewife
/// implements 0–5) plus, optionally, a dedicated one-bit pointer for
/// the home node's own copy. The one-bit local pointer's documented
/// purpose (paper §3.1) is to keep the local node from overflowing its
/// own directory; it buys only ~2 % performance.
///
/// During write transactions the pointer storage doubles as an
/// acknowledgment counter, which is why a one-pointer protocol can
/// count acks in hardware but then has nowhere to remember the
/// requester (`Dir_nH_1S_{NB,LACK}`) — and why counting acks *and*
/// remembering the requester needs two pointers' worth of storage
/// (paper §2.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HwDirEntry {
    state: HwState,
    /// Explicit hardware pointers (remote sharers, or the single
    /// owner when `ReadWrite`).
    ptrs: Vec<NodeId>,
    capacity: usize,
    /// One-bit pointer: the home node itself holds a read-only copy.
    local_bit: bool,
    /// Entry has overflowed; the software extension holds additional
    /// pointers and must be consulted on writes ("trap on write"
    /// meta-state).
    overflowed: bool,
    /// Outstanding invalidation acknowledgments (live in the
    /// transaction states).
    acks_pending: u32,
    /// Requester to satisfy when the transaction completes (uses the
    /// second pointer's storage).
    pending_requester: Option<NodeId>,
    /// Pending request was a write (vs. a read).
    pending_is_write: bool,
    /// The single owner in `ReadWrite` state. Functionally this is
    /// pointer 0; it is stored separately so that a zero-capacity
    /// entry (whose "owner" lives in protocol software) reuses the
    /// same code path.
    owner: Option<NodeId>,
}

impl HwDirEntry {
    /// Creates an `Uncached` entry with `capacity` hardware pointers.
    pub fn new(capacity: usize) -> Self {
        HwDirEntry {
            state: HwState::Uncached,
            ptrs: Vec::with_capacity(capacity.min(8)),
            capacity,
            local_bit: false,
            overflowed: false,
            acks_pending: 0,
            pending_requester: None,
            pending_is_write: false,
            owner: None,
        }
    }

    /// Current coherence state.
    pub fn state(&self) -> HwState {
        self.state
    }

    /// Sets the coherence state.
    pub fn set_state(&mut self, s: HwState) {
        self.state = s;
    }

    /// The hardware pointer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The pointers currently stored in hardware.
    pub fn ptrs(&self) -> &[NodeId] {
        &self.ptrs
    }

    /// Whether the one-bit local pointer is set.
    pub fn local_bit(&self) -> bool {
        self.local_bit
    }

    /// Sets or clears the one-bit local pointer.
    pub fn set_local_bit(&mut self, v: bool) {
        self.local_bit = v;
    }

    /// Whether the entry has overflowed into the software extension.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Marks the entry as extended in software (set by the overflow
    /// trap handler) or back to hardware-only.
    pub fn set_overflowed(&mut self, v: bool) {
        self.overflowed = v;
    }

    /// Records a read-only sharer. Returns [`PtrStoreOutcome::Overflow`]
    /// when the pointer array is full and the sharer is not already
    /// recorded — the condition that raises the software-extension
    /// interrupt.
    pub fn record_reader(&mut self, node: NodeId) -> PtrStoreOutcome {
        if self.ptrs.contains(&node) {
            return PtrStoreOutcome::Stored;
        }
        if self.ptrs.len() < self.capacity {
            self.ptrs.push(node);
            PtrStoreOutcome::Stored
        } else {
            PtrStoreOutcome::Overflow
        }
    }

    /// Removes a specific pointer (e.g. on a replacement hint or a
    /// transfer to software). Returns whether it was present.
    pub fn remove_ptr(&mut self, node: NodeId) -> bool {
        if let Some(i) = self.ptrs.iter().position(|&p| p == node) {
            self.ptrs.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Empties all hardware pointers, returning them (the overflow
    /// handler moves them into the software directory).
    pub fn drain_ptrs(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.ptrs)
    }

    /// Installs a single owner pointer for the `ReadWrite` state.
    pub fn set_sole_owner(&mut self, node: NodeId) {
        self.ptrs.clear();
        self.owner = Some(node);
        self.state = HwState::ReadWrite;
        self.local_bit = false;
    }

    /// The sole owner when in `ReadWrite` state (kept in pointer 0; in
    /// a zero-pointer directory the owner lives in software instead).
    pub fn owner(&self) -> Option<NodeId> {
        if self.state == HwState::ReadWrite {
            self.owner
        } else {
            None
        }
    }

    /// Clears the owner pointer (leaving `ReadWrite`).
    pub fn clear_owner(&mut self) {
        self.owner = None;
    }

    /// Begins a transaction: `acks` acknowledgments outstanding,
    /// `requester` to be satisfied on completion (`is_write` says
    /// with which permission). The ack counter reuses pointer storage,
    /// so the pointers are cleared.
    pub fn begin_transaction(
        &mut self,
        state: HwState,
        acks: u32,
        requester: Option<NodeId>,
        is_write: bool,
    ) {
        debug_assert!(matches!(
            state,
            HwState::ReadTransaction | HwState::WriteTransaction
        ));
        self.ptrs.clear();
        self.state = state;
        self.acks_pending = acks;
        self.pending_requester = requester;
        self.pending_is_write = is_write;
    }

    /// Outstanding acknowledgment count.
    pub fn acks_pending(&self) -> u32 {
        self.acks_pending
    }

    /// Sets the outstanding acknowledgment count (software handlers
    /// hand the counter back to hardware this way).
    pub fn set_acks_pending(&mut self, n: u32) {
        self.acks_pending = n;
    }

    /// Counts one acknowledgment; returns the number still pending.
    ///
    /// # Panics
    ///
    /// Panics if no acknowledgments are outstanding (a protocol bug).
    pub fn count_ack(&mut self) -> u32 {
        assert!(self.acks_pending > 0, "spurious acknowledgment");
        self.acks_pending -= 1;
        self.acks_pending
    }

    /// The requester recorded for transaction completion.
    pub fn pending_requester(&self) -> Option<NodeId> {
        self.pending_requester
    }

    /// Whether the pending request is a write.
    pub fn pending_is_write(&self) -> bool {
        self.pending_is_write
    }

    /// Clears transaction bookkeeping (on completion).
    pub fn end_transaction(&mut self) {
        self.acks_pending = 0;
        self.pending_requester = None;
        self.pending_is_write = false;
    }

    /// Resets the entry to `Uncached` with no pointers (used by
    /// invalidation completion when the block returns to memory).
    pub fn reset(&mut self) {
        self.state = HwState::Uncached;
        self.ptrs.clear();
        self.owner = None;
        self.local_bit = false;
        self.overflowed = false;
        self.end_transaction();
    }

    /// Number of hardware pointers in use.
    pub fn ptr_count(&self) -> usize {
        self.ptrs.len()
    }

    // -- raw escape hatches used by the SoA table's `to_model` bridge
    //    and by differential tests; they bypass the state machine.

    /// Appends a pointer without capacity or duplicate checks.
    #[doc(hidden)]
    pub fn raw_push_ptr(&mut self, node: NodeId) {
        self.ptrs.push(node);
    }

    /// Sets the pending-transaction bookkeeping directly.
    #[doc(hidden)]
    pub fn set_pending(&mut self, requester: Option<NodeId>, is_write: bool) {
        self.pending_requester = requester;
        self.pending_is_write = is_write;
    }

    /// Sets the owner field directly (regardless of state).
    #[doc(hidden)]
    pub fn set_raw_owner(&mut self, owner: Option<NodeId>) {
        self.owner = owner;
    }

    /// Entry-local structural invariants, checked by the coherence
    /// sanitizer after every directory transition: pointer bounds, no
    /// duplicate pointers, and counter/requester bookkeeping agreeing
    /// with the state machine.
    pub fn structural_invariants(&self) -> Result<(), String> {
        if self.ptrs.len() > self.capacity {
            return Err(format!(
                "{} pointers stored in a {}-pointer entry",
                self.ptrs.len(),
                self.capacity
            ));
        }
        for (i, &p) in self.ptrs.iter().enumerate() {
            if self.ptrs[..i].contains(&p) {
                return Err(format!("duplicate hardware pointer {p}"));
            }
        }
        match self.state {
            HwState::Uncached | HwState::ReadOnly | HwState::ReadWrite => {
                if self.acks_pending != 0 {
                    return Err(format!(
                        "{} acknowledgments outstanding outside a transaction ({:?})",
                        self.acks_pending, self.state
                    ));
                }
            }
            HwState::ReadTransaction | HwState::WriteTransaction => {
                if self.pending_requester.is_none() {
                    return Err(format!("{:?} with no pending requester", self.state));
                }
                if !self.ptrs.is_empty() {
                    return Err(format!(
                        "{:?} holds {} pointers while the storage doubles as the ack counter",
                        self.state,
                        self.ptrs.len()
                    ));
                }
                let want_write = self.state == HwState::WriteTransaction;
                if self.pending_is_write != want_write {
                    return Err(format!(
                        "{:?} records a pending {}",
                        self.state,
                        if self.pending_is_write {
                            "write"
                        } else {
                            "read"
                        }
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointers_fill_then_overflow() {
        let mut e = HwDirEntry::new(2);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Overflow);
        assert_eq!(e.ptr_count(), 2);
    }

    #[test]
    fn duplicate_reader_does_not_overflow() {
        let mut e = HwDirEntry::new(1);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
        assert_eq!(e.ptr_count(), 1);
    }

    #[test]
    fn zero_capacity_always_overflows() {
        let mut e = HwDirEntry::new(0);
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Overflow);
    }

    #[test]
    fn drain_empties_pointers() {
        let mut e = HwDirEntry::new(3);
        e.record_reader(NodeId(1));
        e.record_reader(NodeId(2));
        let drained = e.drain_ptrs();
        assert_eq!(drained, vec![NodeId(1), NodeId(2)]);
        assert_eq!(e.ptr_count(), 0);
        // After draining, hardware pointers are free again.
        assert_eq!(e.record_reader(NodeId(3)), PtrStoreOutcome::Stored);
    }

    #[test]
    fn sole_owner_round_trip() {
        let mut e = HwDirEntry::new(2);
        e.record_reader(NodeId(1));
        e.set_sole_owner(NodeId(5));
        assert_eq!(e.state(), HwState::ReadWrite);
        assert_eq!(e.owner(), Some(NodeId(5)));
        assert_eq!(e.ptr_count(), 0); // owner uses dedicated storage
        e.set_state(HwState::Uncached);
        assert_eq!(e.owner(), None); // owner only meaningful in ReadWrite
        e.clear_owner();
    }

    #[test]
    fn zero_capacity_entry_still_tracks_owner() {
        let mut e = HwDirEntry::new(0);
        e.set_sole_owner(NodeId(3));
        assert_eq!(e.owner(), Some(NodeId(3)));
    }

    #[test]
    fn ack_counting() {
        let mut e = HwDirEntry::new(2);
        e.record_reader(NodeId(1));
        e.record_reader(NodeId(2));
        e.begin_transaction(HwState::WriteTransaction, 2, Some(NodeId(9)), true);
        assert_eq!(e.state(), HwState::WriteTransaction);
        assert!(!e.state().accepts_requests());
        assert_eq!(e.ptr_count(), 0); // counter reuses pointer storage
        assert_eq!(e.count_ack(), 1);
        assert_eq!(e.count_ack(), 0);
        assert_eq!(e.pending_requester(), Some(NodeId(9)));
        assert!(e.pending_is_write());
        e.end_transaction();
        assert_eq!(e.acks_pending(), 0);
        assert_eq!(e.pending_requester(), None);
    }

    #[test]
    #[should_panic(expected = "spurious acknowledgment")]
    fn spurious_ack_panics() {
        let mut e = HwDirEntry::new(1);
        e.count_ack();
    }

    #[test]
    fn local_bit_is_independent_of_pointers() {
        let mut e = HwDirEntry::new(1);
        e.set_local_bit(true);
        assert!(e.local_bit());
        assert_eq!(e.record_reader(NodeId(1)), PtrStoreOutcome::Stored);
        assert_eq!(e.record_reader(NodeId(2)), PtrStoreOutcome::Overflow);
        assert!(e.local_bit());
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = HwDirEntry::new(2);
        e.record_reader(NodeId(1));
        e.set_local_bit(true);
        e.set_overflowed(true);
        e.begin_transaction(HwState::WriteTransaction, 1, Some(NodeId(3)), false);
        e.reset();
        assert_eq!(e.state(), HwState::Uncached);
        assert_eq!(e.ptr_count(), 0);
        assert!(!e.local_bit());
        assert!(!e.overflowed());
        assert_eq!(e.acks_pending(), 0);
    }

    #[test]
    fn remove_ptr_reports_presence() {
        let mut e = HwDirEntry::new(3);
        e.record_reader(NodeId(1));
        e.record_reader(NodeId(2));
        assert!(e.remove_ptr(NodeId(1)));
        assert!(!e.remove_ptr(NodeId(1)));
        assert_eq!(e.ptrs(), &[NodeId(2)]);
    }

    #[test]
    fn transient_states_bounce_requests() {
        assert!(HwState::Uncached.accepts_requests());
        assert!(HwState::ReadOnly.accepts_requests());
        assert!(HwState::ReadWrite.accepts_requests());
        assert!(!HwState::ReadTransaction.accepts_requests());
        assert!(!HwState::WriteTransaction.accepts_requests());
    }
}
