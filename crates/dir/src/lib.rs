//! Directory structures for software-extended coherence.
//!
//! Every memory block has a *home node* that stores the block's DRAM
//! copy and its **directory entry**. This crate provides the two
//! halves of a software-extended directory:
//!
//! * [`HwDirEntry`] — the hardware part: between zero and a handful of
//!   explicit node pointers, a one-bit pointer for the home node's own
//!   cached copy, the meta-state that says whether the entry has
//!   overflowed into software, and the acknowledgment counter that
//!   reuses pointer storage during write transactions (paper §2, §3.1).
//! * [`SwDirectory`] — the software part: an open-addressed table
//!   keyed by dense `u32` block ids (identity hash, probe length 1,
//!   growth without rehash) holding the extension records the protocol
//!   extension software manipulates through the flexible coherence
//!   interface (paper §4.1).
//!
//! Production storage for the hardware half is the struct-of-arrays
//! [`HwDirTable`], whose [`HwEntryMut`]/[`HwEntryRef`] row views expose
//! the `HwDirEntry` method set over packed column vectors; pointer sets
//! live in a per-row `u64` presence bitmask on machines of <= 64 nodes
//! and in inline fixed-width (or strided slab) storage beyond that
//! (DESIGN.md §12). `HwDirEntry` and [`SwDirModel`] remain the fat
//! reference models both halves are differentially tested against.
//!
//! # Examples
//!
//! ```
//! use limitless_dir::{HwDirEntry, PtrStoreOutcome};
//! use limitless_sim::NodeId;
//!
//! let mut e = HwDirEntry::new(2); // two hardware pointers
//! assert_eq!(e.record_reader(NodeId(4)), PtrStoreOutcome::Stored);
//! assert_eq!(e.record_reader(NodeId(9)), PtrStoreOutcome::Stored);
//! assert_eq!(e.record_reader(NodeId(12)), PtrStoreOutcome::Overflow);
//! ```

pub mod hw;
pub mod hw_table;
pub mod sw;

pub use hw::{HwDirEntry, HwState, PtrStoreOutcome};
pub use hw_table::{HwDirTable, HwEntryMut, HwEntryRef, PtrIter};
pub use sw::{SwDirEntry, SwDirModel, SwDirStats, SwDirectory};
