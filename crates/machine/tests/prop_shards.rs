//! The engine-equivalence property at scale: a 256-node machine run
//! serially and with 2, 3, 4 and 8 event lanes must produce
//! bit-identical results — the same cycle count, event count,
//! aggregate statistics, final memory image and, most sensitively, the
//! same machine-wide block-id assignment. Dense block ids are handed
//! out in first-touch order at each home node, so the per-home
//! interner fingerprints detect *any* reordering of directory events
//! between engines, even one that happens not to change a counter.
//!
//! Two extra cases target the lookahead-matrix machinery specifically:
//! a prime node count (67 nodes over 4 lanes — maximally uneven
//! partition bounds on a non-square mesh) and a tiny barrier-latency
//! override that collapses lane 0's matrix rows far below everyone
//! else's (a strongly asymmetric `D`).

use limitless_core::ProtocolSpec;
use limitless_machine::{FnProgram, Machine, MachineConfig, Op, Program, RunReport};
use limitless_sim::{Addr, NodeId, SplitMix64};

const NODES: usize = 256;
const BLOCKS: u64 = 512;
const STEPS: usize = 48;

/// Random partitioned-writer programs (each node writes only its own
/// blocks, reads anywhere), the same construction the protocol
/// equivalence property uses.
fn programs(nodes: usize, blocks: u64, steps: usize, seed: u64) -> Vec<Box<dyn Program>> {
    (0..nodes)
        .map(|i| {
            let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut step = 0usize;
            Box::new(FnProgram(move |node: NodeId, _| {
                if step >= steps {
                    return Op::Finish;
                }
                step += 1;
                if step.is_multiple_of(16) {
                    return Op::Barrier;
                }
                let r = rng.next_below(10);
                if r < 3 {
                    let b =
                        u64::from(node.0) + nodes as u64 * rng.next_below(blocks / nodes as u64);
                    Op::Write(Addr(0x1000 + b * 16), u64::from(node.0) << 32 | step as u64)
                } else if r < 4 {
                    Op::Compute(rng.next_below(60) + 1)
                } else {
                    Op::Read(Addr(0x1000 + rng.next_below(blocks) * 16))
                }
            })) as Box<dyn Program>
        })
        .collect()
}

struct RunOutput {
    report: RunReport,
    image: Vec<(Addr, u64)>,
    fingerprints: Vec<u64>,
}

fn run_cfg(cfg: MachineConfig, nodes: usize, seed: u64) -> RunOutput {
    run_sized(cfg, nodes, BLOCKS, STEPS, seed)
}

fn run_sized(cfg: MachineConfig, nodes: usize, blocks: u64, steps: usize, seed: u64) -> RunOutput {
    let mut m = Machine::new(cfg);
    m.load(programs(nodes, blocks, steps, seed));
    let report = m.run();
    RunOutput {
        image: m.memory_image(),
        fingerprints: m.interner_fingerprints(),
        report,
    }
}

fn run(seed: u64, shards: usize) -> RunOutput {
    run_cfg(
        MachineConfig::builder()
            .nodes(NODES)
            .protocol(ProtocolSpec::limitless(5))
            .shards(shards)
            .build(),
        NODES,
        seed,
    )
}

fn assert_identical(reference: &RunOutput, sharded: &RunOutput, tag: &str) {
    assert_eq!(
        reference.report.cycles, sharded.report.cycles,
        "cycle count diverged: {tag}"
    );
    assert_eq!(
        reference.report.events, sharded.report.events,
        "event count diverged: {tag}"
    );
    assert_eq!(
        reference.report.stats, sharded.report.stats,
        "aggregate statistics diverged: {tag}"
    );
    assert_eq!(
        reference.image, sharded.image,
        "memory image diverged: {tag}"
    );
    assert_eq!(
        reference.fingerprints, sharded.fingerprints,
        "block-id assignment diverged: {tag}"
    );
}

#[test]
fn sharded_runs_at_256_nodes_are_bit_identical() {
    const CASES: u64 = 3;
    let mut case_rng = SplitMix64::new(0x256);
    for _ in 0..CASES {
        let seed = case_rng.next_u64();
        let reference = run(seed, 1);
        assert_eq!(
            reference.fingerprints.len(),
            NODES,
            "one interner fingerprint per home node"
        );
        assert!(
            reference.fingerprints.iter().any(|&f| f != 0),
            "the workload must touch the directories"
        );
        for shards in [2usize, 3, 4, 8] {
            let sharded = run(seed, shards);
            assert_identical(
                &reference,
                &sharded,
                &format!("{shards} shards (seed {seed:#x})"),
            );
        }
    }
}

/// A prime node count over 4 and 8 lanes: the partition bounds are
/// maximally uneven (17/17/17/16) and the mesh rows are ragged, so
/// `range_hops` sees every row-segment shape the partitioner can
/// produce.
#[test]
fn prime_node_counts_are_bit_identical() {
    const PRIME_NODES: usize = 67;
    let cfg = |shards: usize| {
        MachineConfig::builder()
            .nodes(PRIME_NODES)
            .protocol(ProtocolSpec::limitless(5))
            .shards(shards)
            .build()
    };
    let mut case_rng = SplitMix64::new(0x67);
    let seed = case_rng.next_u64();
    let reference = run_cfg(cfg(1), PRIME_NODES, seed);
    assert!(
        reference.fingerprints.iter().any(|&f| f != 0),
        "the workload must touch the directories"
    );
    for shards in [4usize, 8] {
        let sharded = run_cfg(cfg(shards), PRIME_NODES, seed);
        assert_identical(
            &reference,
            &sharded,
            &format!("67 nodes, {shards} shards (seed {seed:#x})"),
        );
    }
}

/// The scale-out boundary node counts: 255 and 257 straddle a
/// presence-word seam in the slab directory (four words either side of
/// 256), 1023 and 1024 are the paper-fidelity rung where `u16` node
/// ids, the lane partitioner and the lookahead matrix meet their
/// largest machines. The big rungs run the 16-pointer protocol so the
/// word-parallel slab hardware regime (capacity > 8) carries the
/// directory traffic end to end; programs are shortened to keep the
/// 1024-node machines test-sized.
#[test]
fn scale_boundary_node_counts_are_bit_identical() {
    let mut case_rng = SplitMix64::new(0x400);
    let cases: [(usize, usize, &[usize]); 4] = [
        (255, 5, &[4]),
        (257, 5, &[4]),
        (1023, 16, &[2, 4]),
        (1024, 16, &[2, 4]),
    ];
    for (nodes, ptrs, lane_counts) in cases {
        let cfg = |shards: usize| {
            MachineConfig::builder()
                .nodes(nodes)
                .protocol(ProtocolSpec::limitless(ptrs))
                .shards(shards)
                .build()
        };
        let blocks = 2 * nodes as u64;
        let steps = if nodes > 512 { 20 } else { 32 };
        let seed = case_rng.next_u64();
        let reference = run_sized(cfg(1), nodes, blocks, steps, seed);
        assert_eq!(reference.fingerprints.len(), nodes, "{nodes} nodes");
        assert!(
            reference.fingerprints.iter().any(|&f| f != 0),
            "the workload must touch the directories at {nodes} nodes"
        );
        for &shards in lane_counts {
            let sharded = run_sized(cfg(shards), nodes, blocks, steps, seed);
            assert_identical(
                &reference,
                &sharded,
                &format!("{nodes} nodes, {shards} shards (seed {seed:#x})"),
            );
        }
    }
}

/// A strongly asymmetric lookahead matrix: with the barrier latency
/// forced down to 2 cycles, lane 0 (the barrier master's lane) has
/// `D[0][b]` rows far below every mesh-message row, so its peers run
/// much shorter windows against it than against each other. Identity
/// must survive the imbalance.
#[test]
fn asymmetric_lookahead_matrix_is_bit_identical() {
    const SMALL_NODES: usize = 64;
    let cfg = |shards: usize| {
        MachineConfig::builder()
            .nodes(SMALL_NODES)
            .protocol(ProtocolSpec::limitless(5))
            .barrier_cycles(2)
            .shards(shards)
            .build()
    };
    let mut case_rng = SplitMix64::new(0xA5);
    let seed = case_rng.next_u64();
    let reference = run_cfg(cfg(1), SMALL_NODES, seed);
    for shards in [2usize, 3, 4, 8] {
        let sharded = run_cfg(cfg(shards), SMALL_NODES, seed);
        assert_identical(
            &reference,
            &sharded,
            &format!("barrier_cycles=2, {shards} shards (seed {seed:#x})"),
        );
    }
}
