//! The engine-equivalence property at scale: a 256-node machine run
//! serially and with 2 and 4 event lanes must produce bit-identical
//! results — the same cycle count, event count, aggregate statistics,
//! final memory image and, most sensitively, the same machine-wide
//! block-id assignment. Dense block ids are handed out in first-touch
//! order at each home node, so the per-home interner fingerprints
//! detect *any* reordering of directory events between engines, even
//! one that happens not to change a counter.

use limitless_core::ProtocolSpec;
use limitless_machine::{FnProgram, Machine, MachineConfig, Op, Program, RunReport};
use limitless_sim::{Addr, NodeId, SplitMix64};

const NODES: usize = 256;
const BLOCKS: u64 = 512;
const STEPS: usize = 48;

/// Random partitioned-writer programs (each node writes only its own
/// blocks, reads anywhere), the same construction the protocol
/// equivalence property uses — scaled to 256 nodes.
fn programs(seed: u64) -> Vec<Box<dyn Program>> {
    (0..NODES)
        .map(|i| {
            let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut step = 0usize;
            Box::new(FnProgram(move |node: NodeId, _| {
                if step >= STEPS {
                    return Op::Finish;
                }
                step += 1;
                if step.is_multiple_of(16) {
                    return Op::Barrier;
                }
                let r = rng.next_below(10);
                if r < 3 {
                    let b =
                        u64::from(node.0) + NODES as u64 * rng.next_below(BLOCKS / NODES as u64);
                    Op::Write(Addr(0x1000 + b * 16), u64::from(node.0) << 32 | step as u64)
                } else if r < 4 {
                    Op::Compute(rng.next_below(60) + 1)
                } else {
                    Op::Read(Addr(0x1000 + rng.next_below(BLOCKS) * 16))
                }
            })) as Box<dyn Program>
        })
        .collect()
}

struct RunOutput {
    report: RunReport,
    image: Vec<(Addr, u64)>,
    fingerprints: Vec<u64>,
}

fn run(seed: u64, shards: usize) -> RunOutput {
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(NODES)
            .protocol(ProtocolSpec::limitless(5))
            .shards(shards)
            .build(),
    );
    m.load(programs(seed));
    let report = m.run();
    RunOutput {
        image: m.memory_image(),
        fingerprints: m.interner_fingerprints(),
        report,
    }
}

#[test]
fn sharded_runs_at_256_nodes_are_bit_identical() {
    const CASES: u64 = 3;
    let mut case_rng = SplitMix64::new(0x256);
    for _ in 0..CASES {
        let seed = case_rng.next_u64();
        let reference = run(seed, 1);
        assert_eq!(
            reference.fingerprints.len(),
            NODES,
            "one interner fingerprint per home node"
        );
        assert!(
            reference.fingerprints.iter().any(|&f| f != 0),
            "the workload must touch the directories"
        );
        for shards in [2usize, 4] {
            let sharded = run(seed, shards);
            assert_eq!(
                reference.report.cycles, sharded.report.cycles,
                "cycle count diverged at {shards} shards (seed {seed:#x})"
            );
            assert_eq!(
                reference.report.events, sharded.report.events,
                "event count diverged at {shards} shards (seed {seed:#x})"
            );
            assert_eq!(
                reference.report.stats, sharded.report.stats,
                "aggregate statistics diverged at {shards} shards (seed {seed:#x})"
            );
            assert_eq!(
                reference.image, sharded.image,
                "memory image diverged at {shards} shards (seed {seed:#x})"
            );
            assert_eq!(
                reference.fingerprints, sharded.fingerprints,
                "block-id assignment diverged at {shards} shards (seed {seed:#x})"
            );
        }
    }
}
