//! The machine-reuse identity property: [`Machine::reset`] followed
//! by a run must be bit-identical — cycle count, event count,
//! aggregate statistics, final memory image and per-home interner
//! fingerprints — to building a fresh machine from the same
//! configuration and running the same workload there. This is the
//! contract the sweep service's worker pool stands on when it parks
//! and revives machines between cells: a recycled machine must be
//! indistinguishable from a new one.
//!
//! The property is checked at 16, 64 and 256 nodes on the serial
//! engine, at 16 nodes on the sharded engine, and once under
//! `CheckLevel::Full` where the per-node read streams (every read's
//! address *and value*) join the comparison — the most sensitive
//! observable the machine has.

use limitless_core::ProtocolSpec;
use limitless_machine::{CheckLevel, FnProgram, Machine, MachineConfig, Op, Program, RunReport};
use limitless_sim::{Addr, NodeId, SplitMix64};

const BLOCKS: u64 = 256;
const STEPS: usize = 40;

/// Random partitioned-writer programs (each node writes only its own
/// blocks, reads anywhere) — the same construction the shard- and
/// protocol-equivalence properties use.
fn programs(nodes: usize, seed: u64) -> Vec<Box<dyn Program>> {
    (0..nodes)
        .map(|i| {
            let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut step = 0usize;
            Box::new(FnProgram(move |node: NodeId, _| {
                if step >= STEPS {
                    return Op::Finish;
                }
                step += 1;
                if step.is_multiple_of(16) {
                    return Op::Barrier;
                }
                let r = rng.next_below(10);
                if r < 3 {
                    let b =
                        u64::from(node.0) + nodes as u64 * rng.next_below(BLOCKS / nodes as u64);
                    Op::Write(Addr(0x1000 + b * 16), u64::from(node.0) << 32 | step as u64)
                } else if r < 4 {
                    Op::Compute(rng.next_below(60) + 1)
                } else {
                    Op::Read(Addr(0x1000 + rng.next_below(BLOCKS) * 16))
                }
            })) as Box<dyn Program>
        })
        .collect()
}

fn config(nodes: usize, shards: usize, check: CheckLevel) -> MachineConfig {
    MachineConfig::builder()
        .nodes(nodes)
        .protocol(ProtocolSpec::limitless(4))
        .victim_cache(true)
        .shards(shards)
        .check_level(check)
        .build()
}

struct RunOutput {
    report: RunReport,
    image: Vec<(Addr, u64)>,
    fingerprints: Vec<u64>,
    read_streams: Option<Vec<Vec<(Addr, u64)>>>,
}

/// Runs `seed`'s workload on `m` (assumed fresh or freshly reset).
fn run_on(m: &mut Machine, nodes: usize, seed: u64) -> RunOutput {
    m.load(programs(nodes, seed));
    let report = m.run();
    RunOutput {
        image: m.memory_image(),
        fingerprints: m.interner_fingerprints(),
        read_streams: m.read_streams().map(<[_]>::to_vec),
        report,
    }
}

fn assert_identical(fresh: &RunOutput, reused: &RunOutput, label: &str) {
    assert_eq!(
        fresh.report.cycles, reused.report.cycles,
        "{label}: cycle count diverged after reset"
    );
    assert_eq!(
        fresh.report.events, reused.report.events,
        "{label}: event count diverged after reset"
    );
    assert_eq!(
        fresh.report.stats, reused.report.stats,
        "{label}: aggregate statistics diverged after reset"
    );
    assert_eq!(
        fresh.image, reused.image,
        "{label}: memory image diverged after reset"
    );
    assert_eq!(
        fresh.fingerprints, reused.fingerprints,
        "{label}: block-id assignment diverged after reset"
    );
    assert_eq!(
        fresh.read_streams, reused.read_streams,
        "{label}: read streams diverged after reset"
    );
}

/// The core round: dirty a machine with workload A, reset it, run
/// workload B, and demand bit-identity with workload B on a fresh
/// machine of the same configuration.
fn check_reset_identity(nodes: usize, shards: usize, check: CheckLevel, seed_a: u64, seed_b: u64) {
    let label = format!("{nodes} nodes, {shards} shard(s), {check:?}");
    let fresh = run_on(
        &mut Machine::new(config(nodes, shards, check)),
        nodes,
        seed_b,
    );
    assert!(
        fresh.fingerprints.iter().any(|&f| f != 0),
        "{label}: the workload must touch the directories"
    );

    let mut reused = Machine::new(config(nodes, shards, check));
    let first = run_on(&mut reused, nodes, seed_a);
    assert!(
        first.report.events > 0,
        "{label}: the dirtying run must do real work"
    );
    reused.reset();
    let second = run_on(&mut reused, nodes, seed_b);
    assert_identical(&fresh, &second, &label);
}

#[test]
fn reset_is_bit_identical_at_16_nodes() {
    let mut rng = SplitMix64::new(0x5e5e0016);
    for _ in 0..3 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        check_reset_identity(16, 1, CheckLevel::Off, a, b);
    }
}

#[test]
fn reset_is_bit_identical_at_64_nodes() {
    let mut rng = SplitMix64::new(0x5e5e0064);
    let (a, b) = (rng.next_u64(), rng.next_u64());
    check_reset_identity(64, 1, CheckLevel::Off, a, b);
}

#[test]
fn reset_is_bit_identical_at_256_nodes() {
    let mut rng = SplitMix64::new(0x5e5e0256);
    let (a, b) = (rng.next_u64(), rng.next_u64());
    check_reset_identity(256, 1, CheckLevel::Off, a, b);
}

#[test]
fn reset_is_bit_identical_on_the_sharded_engine() {
    let mut rng = SplitMix64::new(0x5e5e0002);
    let (a, b) = (rng.next_u64(), rng.next_u64());
    check_reset_identity(16, 2, CheckLevel::Off, a, b);
}

#[test]
fn reset_is_bit_identical_under_full_checking() {
    // CheckLevel::Full arms the sanitizer registry, per-node read
    // logs and the event-history rings — all state a stale reset
    // would corrupt first. The read streams carry every read's value,
    // so a single leaked cache line or directory entry changes them.
    let mut rng = SplitMix64::new(0x5e5e000f);
    let (a, b) = (rng.next_u64(), rng.next_u64());
    check_reset_identity(16, 1, CheckLevel::Full, a, b);
}

#[test]
fn reset_also_reproduces_the_same_workload() {
    // Reset-and-rerun of the *same* workload is the sweep service's
    // min-of-N path; identity must hold there too (trivially implied
    // by the property above, but this is the cheapest regression to
    // localize a failure with).
    let seed = 0x51_6e_a1;
    let mut m = Machine::new(config(16, 1, CheckLevel::Off));
    let first = run_on(&mut m, 16, seed);
    m.reset();
    let second = run_on(&mut m, 16, seed);
    assert_identical(&first, &second, "same-workload rerun");
}
