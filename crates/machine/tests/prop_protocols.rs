//! The crown-jewel property: every protocol in the spectrum implements
//! the *same memory model*. Random programs with partitioned writers
//! must produce identical final memory images under every protocol,
//! with the coherence checker silent throughout, and every run must be
//! cycle-deterministic.

use limitless_core::ProtocolSpec;
use limitless_machine::{FnProgram, Machine, MachineConfig, Op, Program};
use limitless_sim::{Addr, NodeId, SplitMix64};

const NODES: usize = 4;
const BLOCKS: u64 = 8;

fn programs(seed: u64, steps: usize) -> Vec<Box<dyn Program>> {
    (0..NODES)
        .map(|i| {
            let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut step = 0usize;
            Box::new(FnProgram(move |node: NodeId, _| {
                if step >= steps {
                    return Op::Finish;
                }
                step += 1;
                if step.is_multiple_of(16) {
                    return Op::Barrier;
                }
                let r = rng.next_below(10);
                if r < 3 {
                    // Partitioned writes: deterministic final image.
                    let mine: Vec<u64> = (0..BLOCKS)
                        .filter(|b| b % NODES as u64 == u64::from(node.0))
                        .collect();
                    let b = mine[rng.next_below(mine.len() as u64) as usize];
                    Op::Write(Addr(0x1000 + b * 16), u64::from(node.0) << 32 | step as u64)
                } else if r < 4 {
                    Op::Compute(rng.next_below(60) + 1)
                } else {
                    Op::Read(Addr(0x1000 + rng.next_below(BLOCKS) * 16))
                }
            })) as Box<dyn Program>
        })
        .collect()
}

fn run(p: ProtocolSpec, seed: u64, steps: usize) -> (u64, Vec<u64>) {
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(NODES)
            .protocol(p)
            .check_coherence(true)
            .build(),
    );
    m.load(programs(seed, steps));
    let report = m.run();
    let image = (0..BLOCKS).map(|b| m.peek(Addr(0x1000 + b * 16))).collect();
    (report.cycles.as_u64(), image)
}

/// All protocols agree on the final memory image; every run is
/// individually deterministic. Twelve randomized cases, seeded
/// deterministically with `SplitMix64`.
#[test]
fn all_protocols_implement_the_same_memory() {
    const CASES: u64 = 12;
    let mut case_rng = SplitMix64::new(0x5001);
    for case in 0..CASES {
        let seed = case_rng.next_u64();
        let steps = 20 + case_rng.next_below(40) as usize;
        let protocols = [
            ProtocolSpec::zero_ptr(),
            ProtocolSpec::one_ptr_ack(),
            ProtocolSpec::one_ptr_lack(),
            ProtocolSpec::one_ptr_hw(),
            ProtocolSpec::limitless(2),
            ProtocolSpec::limitless(5),
            ProtocolSpec::dir1_sw(),
            ProtocolSpec::full_map(),
        ];
        let mut reference: Option<Vec<u64>> = None;
        for p in protocols {
            let (cycles1, image1) = run(p, seed, steps);
            let (cycles2, image2) = run(p, seed, steps);
            assert_eq!(cycles1, cycles2, "case {case}: non-deterministic under {p}");
            assert_eq!(&image1, &image2, "case {case}: image differs on rerun");
            match &reference {
                None => reference = Some(image1),
                Some(r) => assert_eq!(r, &image1, "case {case}: memory differs under {p}"),
            }
        }
    }
}
