//! The global coherence-invariant checker.
//!
//! A shadow registry of who holds each block and with what permission.
//! Maintained from the machine's cache mutations, it asserts the two
//! invariants every coherence protocol must preserve:
//!
//! 1. **Single writer**: at most one node holds a block `Dirty`, and
//!    while it does, no other node holds the block at all.
//! 2. **No stale grants**: a shared fill never lands while another
//!    node owns the block exclusively.
//!
//! Violations indicate protocol bugs and panic immediately (this is a
//! verification tool, not production error handling).

use limitless_sim::{BlockAddr, FxHashMap, NodeId};

/// Who currently caches a block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Holders {
    owner: Option<NodeId>,
    sharers: Vec<NodeId>,
}

/// The coherence registry. All methods panic on invariant violations.
#[derive(Clone, Debug, Default)]
pub struct CoherenceRegistry {
    blocks: FxHashMap<BlockAddr, Holders>,
    /// Invalidations sent minus acknowledgments received, per block.
    /// Must balance to zero at quiesce (every `Inv` draws exactly one
    /// `InvAck`; local-bit invalidations are synchronous and unacked).
    inv_balance: FxHashMap<BlockAddr, i64>,
    /// Deferred violation reports (conditions that are suspicious but
    /// not immediately fatal under `CheckLevel::Basic`); surfaced at
    /// the quiesce audit.
    violations: Vec<String>,
    /// Number of fills/invalidations observed (sanity metric).
    pub events: u64,
}

impl CoherenceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CoherenceRegistry::default()
    }

    fn entry(&mut self, b: BlockAddr) -> &mut Holders {
        self.events += 1;
        self.blocks.entry(b).or_default()
    }

    /// Node `n` installed `b` with read-only permission.
    ///
    /// # Panics
    ///
    /// Panics if another node owns `b` exclusively.
    pub fn fill_shared(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        assert!(
            h.owner.is_none() || h.owner == Some(n),
            "coherence violation: shared fill of {b} at {n} while {:?} owns it",
            h.owner
        );
        h.owner = None;
        if !h.sharers.contains(&n) {
            h.sharers.push(n);
        }
    }

    /// Node `n` installed `b` with exclusive permission.
    ///
    /// # Panics
    ///
    /// Panics if any other node still holds `b`.
    pub fn fill_exclusive(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        let others: Vec<NodeId> = h.sharers.iter().copied().filter(|&s| s != n).collect();
        assert!(
            others.is_empty(),
            "coherence violation: exclusive fill of {b} at {n} while shared by {others:?}"
        );
        assert!(
            h.owner.is_none() || h.owner == Some(n),
            "coherence violation: exclusive fill of {b} at {n} while owned by {:?}",
            h.owner
        );
        h.sharers.clear();
        h.owner = Some(n);
    }

    /// Node `n` dropped or invalidated its copy of `b`.
    pub fn drop_copy(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        if h.owner == Some(n) {
            h.owner = None;
        }
        h.sharers.retain(|&s| s != n);
    }

    /// Node `n` downgraded its exclusive copy to shared.
    pub fn downgrade(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        if h.owner == Some(n) {
            h.owner = None;
            if !h.sharers.contains(&n) {
                h.sharers.push(n);
            }
        }
    }

    /// Current exclusive owner of `b`, if any.
    pub fn owner(&self, b: BlockAddr) -> Option<NodeId> {
        self.blocks.get(&b).and_then(|h| h.owner)
    }

    /// Number of read-only holders of `b`.
    pub fn sharer_count(&self, b: BlockAddr) -> usize {
        self.blocks.get(&b).map_or(0, |h| h.sharers.len())
    }

    /// Whether node `n` is registered as a read-only holder of `b`.
    pub fn is_sharer(&self, b: BlockAddr, n: NodeId) -> bool {
        self.blocks.get(&b).is_some_and(|h| h.sharers.contains(&n))
    }

    /// An invalidation message for `b` left the home node.
    pub fn note_inv_sent(&mut self, b: BlockAddr) {
        *self.inv_balance.entry(b).or_insert(0) += 1;
    }

    /// An invalidation acknowledgment for `b` arrived at the home node.
    ///
    /// # Panics
    ///
    /// Panics if no matching invalidation is outstanding.
    pub fn note_inv_ack(&mut self, b: BlockAddr) {
        let bal = self.inv_balance.entry(b).or_insert(0);
        assert!(
            *bal > 0,
            "coherence violation: acknowledgment for {b} without a matching invalidation in flight"
        );
        *bal -= 1;
    }

    /// Blocks whose invalidation/acknowledgment counts do not balance,
    /// sorted by address. Empty at quiesce in a correct protocol.
    pub fn unbalanced_invs(&self) -> Vec<(BlockAddr, i64)> {
        let mut out: Vec<(BlockAddr, i64)> = self
            .inv_balance
            .iter()
            .filter(|&(_, &bal)| bal != 0)
            .map(|(&b, &bal)| (b, bal))
            .collect();
        out.sort_unstable_by_key(|&(b, _)| b.0);
        out
    }

    /// Records a non-fatal violation for the quiesce audit.
    pub fn report_violation(&mut self, msg: String) {
        self.violations.push(msg);
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Iterates every tracked block with its owner and sharer list.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, Option<NodeId>, &[NodeId])> + '_ {
        self.blocks
            .iter()
            .map(|(&b, h)| (b, h.owner, h.sharers.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_accumulate_and_drop() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.fill_shared(BlockAddr(1), NodeId(1));
        assert_eq!(r.sharer_count(BlockAddr(1)), 2);
        r.drop_copy(BlockAddr(1), NodeId(0));
        assert_eq!(r.sharer_count(BlockAddr(1)), 1);
    }

    #[test]
    fn exclusive_after_all_sharers_drop() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.drop_copy(BlockAddr(1), NodeId(0));
        r.fill_exclusive(BlockAddr(1), NodeId(2));
        assert_eq!(r.owner(BlockAddr(1)), Some(NodeId(2)));
    }

    #[test]
    fn upgrade_in_place_is_legal() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(3));
        r.fill_exclusive(BlockAddr(1), NodeId(3)); // sole sharer upgrades
        assert_eq!(r.owner(BlockAddr(1)), Some(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn exclusive_while_shared_panics() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.fill_exclusive(BlockAddr(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn shared_while_owned_panics() {
        let mut r = CoherenceRegistry::new();
        r.fill_exclusive(BlockAddr(1), NodeId(0));
        r.fill_shared(BlockAddr(1), NodeId(1));
    }

    #[test]
    fn inv_balance_tracks_outstanding_invalidations() {
        let mut r = CoherenceRegistry::new();
        r.note_inv_sent(BlockAddr(5));
        r.note_inv_sent(BlockAddr(5));
        assert_eq!(r.unbalanced_invs(), vec![(BlockAddr(5), 2)]);
        r.note_inv_ack(BlockAddr(5));
        r.note_inv_ack(BlockAddr(5));
        assert!(r.unbalanced_invs().is_empty());
    }

    #[test]
    #[should_panic(expected = "without a matching invalidation")]
    fn unmatched_ack_panics() {
        let mut r = CoherenceRegistry::new();
        r.note_inv_ack(BlockAddr(5));
    }

    #[test]
    fn violations_accumulate() {
        let mut r = CoherenceRegistry::new();
        assert!(r.violations().is_empty());
        r.report_violation("something odd".to_string());
        assert_eq!(r.violations().len(), 1);
    }

    #[test]
    fn downgrade_keeps_a_shared_copy() {
        let mut r = CoherenceRegistry::new();
        r.fill_exclusive(BlockAddr(1), NodeId(0));
        r.downgrade(BlockAddr(1), NodeId(0));
        assert_eq!(r.owner(BlockAddr(1)), None);
        assert_eq!(r.sharer_count(BlockAddr(1)), 1);
        r.fill_shared(BlockAddr(1), NodeId(4)); // now legal
    }
}
