//! The global coherence-invariant checker.
//!
//! A shadow registry of who holds each block and with what permission.
//! Maintained from the machine's cache mutations, it asserts the two
//! invariants every coherence protocol must preserve:
//!
//! 1. **Single writer**: at most one node holds a block `Dirty`, and
//!    while it does, no other node holds the block at all.
//! 2. **No stale grants**: a shared fill never lands while another
//!    node owns the block exclusively.
//!
//! Violations indicate protocol bugs and panic immediately (this is a
//! verification tool, not production error handling).

use limitless_sim::{BlockAddr, FxHashMap, NodeId};

/// Who currently caches a block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Holders {
    owner: Option<NodeId>,
    sharers: Vec<NodeId>,
}

/// The coherence registry. All methods panic on invariant violations.
#[derive(Clone, Debug, Default)]
pub struct CoherenceRegistry {
    blocks: FxHashMap<BlockAddr, Holders>,
    /// Number of fills/invalidations observed (sanity metric).
    pub events: u64,
}

impl CoherenceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CoherenceRegistry::default()
    }

    fn entry(&mut self, b: BlockAddr) -> &mut Holders {
        self.events += 1;
        self.blocks.entry(b).or_default()
    }

    /// Node `n` installed `b` with read-only permission.
    ///
    /// # Panics
    ///
    /// Panics if another node owns `b` exclusively.
    pub fn fill_shared(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        assert!(
            h.owner.is_none() || h.owner == Some(n),
            "coherence violation: shared fill of {b} at {n} while {:?} owns it",
            h.owner
        );
        h.owner = None;
        if !h.sharers.contains(&n) {
            h.sharers.push(n);
        }
    }

    /// Node `n` installed `b` with exclusive permission.
    ///
    /// # Panics
    ///
    /// Panics if any other node still holds `b`.
    pub fn fill_exclusive(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        let others: Vec<NodeId> = h.sharers.iter().copied().filter(|&s| s != n).collect();
        assert!(
            others.is_empty(),
            "coherence violation: exclusive fill of {b} at {n} while shared by {others:?}"
        );
        assert!(
            h.owner.is_none() || h.owner == Some(n),
            "coherence violation: exclusive fill of {b} at {n} while owned by {:?}",
            h.owner
        );
        h.sharers.clear();
        h.owner = Some(n);
    }

    /// Node `n` dropped or invalidated its copy of `b`.
    pub fn drop_copy(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        if h.owner == Some(n) {
            h.owner = None;
        }
        h.sharers.retain(|&s| s != n);
    }

    /// Node `n` downgraded its exclusive copy to shared.
    pub fn downgrade(&mut self, b: BlockAddr, n: NodeId) {
        let h = self.entry(b);
        if h.owner == Some(n) {
            h.owner = None;
            if !h.sharers.contains(&n) {
                h.sharers.push(n);
            }
        }
    }

    /// Current exclusive owner of `b`, if any.
    pub fn owner(&self, b: BlockAddr) -> Option<NodeId> {
        self.blocks.get(&b).and_then(|h| h.owner)
    }

    /// Number of read-only holders of `b`.
    pub fn sharer_count(&self, b: BlockAddr) -> usize {
        self.blocks.get(&b).map_or(0, |h| h.sharers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_accumulate_and_drop() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.fill_shared(BlockAddr(1), NodeId(1));
        assert_eq!(r.sharer_count(BlockAddr(1)), 2);
        r.drop_copy(BlockAddr(1), NodeId(0));
        assert_eq!(r.sharer_count(BlockAddr(1)), 1);
    }

    #[test]
    fn exclusive_after_all_sharers_drop() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.drop_copy(BlockAddr(1), NodeId(0));
        r.fill_exclusive(BlockAddr(1), NodeId(2));
        assert_eq!(r.owner(BlockAddr(1)), Some(NodeId(2)));
    }

    #[test]
    fn upgrade_in_place_is_legal() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(3));
        r.fill_exclusive(BlockAddr(1), NodeId(3)); // sole sharer upgrades
        assert_eq!(r.owner(BlockAddr(1)), Some(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn exclusive_while_shared_panics() {
        let mut r = CoherenceRegistry::new();
        r.fill_shared(BlockAddr(1), NodeId(0));
        r.fill_exclusive(BlockAddr(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn shared_while_owned_panics() {
        let mut r = CoherenceRegistry::new();
        r.fill_exclusive(BlockAddr(1), NodeId(0));
        r.fill_shared(BlockAddr(1), NodeId(1));
    }

    #[test]
    fn downgrade_keeps_a_shared_copy() {
        let mut r = CoherenceRegistry::new();
        r.fill_exclusive(BlockAddr(1), NodeId(0));
        r.downgrade(BlockAddr(1), NodeId(0));
        assert_eq!(r.owner(BlockAddr(1)), None);
        assert_eq!(r.sharer_count(BlockAddr(1)), 1);
        r.fill_shared(BlockAddr(1), NodeId(4)); // now legal
    }
}
